//! Compilation of a [`Circuit`] into a flat, levelized evaluation schedule.

use crate::error::EngineError;
use scal_netlist::{Circuit, GateKind, NodeId, NodeView};
use std::time::Instant;

/// Wall times of the two compilation stages, for the profiler's `levelize` /
/// `pack` spans.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileSpans {
    /// Microseconds spent ordering gates and building the op schedule.
    pub levelize_micros: u64,
    /// Microseconds spent laying out slots (constants, flip-flops, I/O).
    pub pack_micros: u64,
}

/// Sentinel for "this node has no gate op" in [`CompiledCircuit::op_of_node`].
pub(crate) const NO_OP: u32 = u32::MAX;

/// One gate evaluation in the compiled schedule.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    /// Gate function.
    pub kind: GateKind,
    /// Destination slot.
    pub out: u32,
    /// Start of the fanin slot run in [`CompiledCircuit::fanins`].
    pub fan_start: u32,
    /// Number of fanins.
    pub fan_len: u32,
}

/// A [`Circuit`] compiled for repeated evaluation.
///
/// Node values live in dense *slots* indexed by [`NodeId::index`], with two
/// extra constant slots appended (all-zeros and all-ones words) so that fault
/// injection on a fanin is a single index rewrite. Gate evaluations are
/// recorded as a topologically ordered flat op array; evaluating the circuit
/// is one linear pass over it with no graph traversal, no allocation, and no
/// override searching.
///
/// A `CompiledCircuit` is immutable and shareable across threads; each worker
/// carries its own [`crate::Evaluator`] scratch state.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// Total slot count: one per node plus the two constant slots.
    pub(crate) num_slots: usize,
    /// Slot holding the all-zeros word.
    pub(crate) zero_slot: u32,
    /// Slot holding the all-ones word.
    pub(crate) one_slot: u32,
    /// Gate ops in topological order.
    pub(crate) ops: Vec<Op>,
    /// Flat fanin slot array referenced by [`Op::fan_start`]/[`Op::fan_len`].
    pub(crate) fanins: Vec<u32>,
    /// Slot of each primary input, in circuit input order.
    pub(crate) input_slots: Vec<u32>,
    /// Slot of each flip-flop output, in circuit flip-flop order.
    pub(crate) dff_slots: Vec<u32>,
    /// Slot each flip-flop latches from (its D fanin).
    pub(crate) dff_d_slots: Vec<u32>,
    /// Power-up value of each flip-flop.
    pub(crate) dff_init: Vec<bool>,
    /// Constant-source slots and their values.
    pub(crate) const_slots: Vec<(u32, bool)>,
    /// Slot of each primary output, in declaration order.
    pub(crate) output_slots: Vec<u32>,
    /// Per node: index of its op in `ops`, or [`NO_OP`] for sources.
    pub(crate) op_of_node: Vec<u32>,
    /// Gates per schedule level (level 0 = gates fed only by sources).
    pub(crate) level_gates: Vec<usize>,
}

impl CompiledCircuit {
    /// Compiles a circuit into a flat schedule, panicking on rejection.
    ///
    /// # Panics
    ///
    /// Panics if [`CompiledCircuit::try_compile`] errors (the circuit fails
    /// [`Circuit::validate`] or overflows the engine's `u32` slot indices).
    #[must_use]
    pub fn compile(circuit: &Circuit) -> Self {
        match Self::try_compile(circuit) {
            Ok(cc) => cc,
            Err(e) => panic!("{e}"),
        }
    }

    /// Compiles a circuit into a flat schedule.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidCircuit`] if the circuit fails
    /// [`Circuit::validate`], or [`EngineError::TooLarge`] if the node or
    /// fanin count overflows the engine's `u32` slot indices.
    pub fn try_compile(circuit: &Circuit) -> Result<Self, EngineError> {
        Self::try_compile_timed(circuit).map(|(cc, _)| cc)
    }

    /// [`CompiledCircuit::try_compile`] with per-stage wall times — the
    /// campaign's source for `levelize` / `pack` profiler spans.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledCircuit::try_compile`].
    pub fn try_compile_timed(circuit: &Circuit) -> Result<(Self, CompileSpans), EngineError> {
        circuit.validate()?;
        let n = circuit.len();
        let zero_slot = u32::try_from(n).map_err(|_| EngineError::TooLarge { count: n })?;
        let one_slot = zero_slot + 1;

        // Levelize: topologically order the gates into the flat op schedule
        // and record each gate's level (longest gate-only path from a
        // source) for the per-level evaluation counters.
        let t = Instant::now();
        let mut ops = Vec::new();
        let mut fanins = Vec::new();
        let mut op_of_node = vec![NO_OP; n];
        let mut node_level = vec![0usize; n];
        let mut level_gates = Vec::new();
        for id in circuit.topo_order() {
            if let NodeView::Gate(kind) = circuit.view(id) {
                let fan_start = u32::try_from(fanins.len()).map_err(|_| EngineError::TooLarge {
                    count: fanins.len(),
                })?;
                let mut level = 0;
                for f in circuit.fanins(id) {
                    fanins.push(f.index() as u32);
                    if matches!(circuit.view(*f), NodeView::Gate(_)) {
                        level = level.max(node_level[f.index()] + 1);
                    }
                }
                node_level[id.index()] = level;
                if level_gates.len() <= level {
                    level_gates.resize(level + 1, 0);
                }
                level_gates[level] += 1;
                op_of_node[id.index()] = ops.len() as u32;
                ops.push(Op {
                    kind,
                    out: id.index() as u32,
                    fan_start,
                    fan_len: circuit.fanins(id).len() as u32,
                });
            }
        }
        let levelize_micros = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);

        // Pack: lay out the remaining slot metadata (constants, flip-flops,
        // primary I/O).
        let t = Instant::now();
        let mut const_slots = Vec::new();
        for id in circuit.node_ids() {
            if let NodeView::Const(v) = circuit.view(id) {
                const_slots.push((id.index() as u32, v));
            }
        }
        let mut dff_init = Vec::with_capacity(circuit.dffs().len());
        let mut dff_d_slots = Vec::with_capacity(circuit.dffs().len());
        for &ff in circuit.dffs() {
            match circuit.view(ff) {
                NodeView::Dff { init } => dff_init.push(init),
                _ => unreachable!("dffs() returns flip-flops"),
            }
            dff_d_slots.push(circuit.fanins(ff)[0].index() as u32);
        }

        let cc = CompiledCircuit {
            num_slots: n + 2,
            zero_slot,
            one_slot,
            ops,
            fanins,
            input_slots: circuit.inputs().iter().map(|i| i.index() as u32).collect(),
            dff_slots: circuit.dffs().iter().map(|f| f.index() as u32).collect(),
            dff_d_slots,
            dff_init,
            const_slots,
            output_slots: circuit
                .outputs()
                .iter()
                .map(|o| o.node.index() as u32)
                .collect(),
            op_of_node,
            level_gates,
        };
        let pack_micros = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
        Ok((
            cc,
            CompileSpans {
                levelize_micros,
                pack_micros,
            },
        ))
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.output_slots.len()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_dffs(&self) -> usize {
        self.dff_slots.len()
    }

    /// `true` iff the source circuit was sequential.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        !self.dff_slots.is_empty()
    }

    /// Number of gate ops in the schedule.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Gates per schedule level, level 0 first (gates fed only by sources).
    /// Multiplying each count by the words evaluated gives per-level
    /// gate-evaluation totals.
    #[must_use]
    pub fn level_gates(&self) -> &[usize] {
        &self.level_gates
    }

    /// The constant slot carrying `value`.
    pub(crate) fn const_slot(&self, value: bool) -> u32 {
        if value {
            self.one_slot
        } else {
            self.zero_slot
        }
    }

    /// Position of `node` in the flip-flop list, if it is one.
    pub(crate) fn dff_position(&self, node: NodeId) -> Option<usize> {
        let slot = node.index() as u32;
        self.dff_slots.iter().position(|&s| s == slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::Circuit;

    #[test]
    fn compiles_gates_in_topo_order() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let h = c.or(&[g, a]);
        c.mark_output("f", h);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.num_ops(), 2);
        assert_eq!(cc.num_inputs(), 2);
        assert_eq!(cc.num_outputs(), 1);
        assert!(!cc.is_sequential());
        // g must be scheduled before h.
        let pos_g = cc.ops.iter().position(|o| o.out == g.index() as u32);
        let pos_h = cc.ops.iter().position(|o| o.out == h.index() as u32);
        assert!(pos_g < pos_h);
        // g is fed only by inputs (level 0); h depends on g (level 1).
        assert_eq!(cc.level_gates(), &[1, 1]);
    }

    #[test]
    fn level_counts_follow_gate_depth() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g1 = c.and(&[a, b]);
        let g2 = c.or(&[a, b]);
        let g3 = c.xor(&[g1, g2]);
        let g4 = c.not(g3);
        c.mark_output("f", g4);
        let (cc, spans) = CompiledCircuit::try_compile_timed(&c).unwrap();
        assert_eq!(cc.level_gates(), &[2, 1, 1]);
        assert_eq!(cc.level_gates().iter().sum::<usize>(), cc.num_ops());
        // Stage timings exist (may be zero on a fast machine, never huge).
        assert!(spans.levelize_micros < 10_000_000);
        assert!(spans.pack_micros < 10_000_000);
    }

    #[test]
    fn records_dff_layout() {
        let mut c = Circuit::new();
        let ff = c.dff(true);
        let nq = c.not(ff);
        c.connect_dff(ff, nq);
        c.mark_output("q", ff);
        let cc = CompiledCircuit::compile(&c);
        assert!(cc.is_sequential());
        assert_eq!(cc.dff_init, vec![true]);
        assert_eq!(cc.dff_d_slots, vec![nq.index() as u32]);
        assert_eq!(cc.dff_position(ff), Some(0));
    }

    #[test]
    #[should_panic(expected = "must validate")]
    fn rejects_invalid_circuits() {
        let mut c = Circuit::new();
        let _ = c.dff(false); // never connected
        let _ = CompiledCircuit::compile(&c);
    }

    #[test]
    fn try_compile_reports_invalid_circuits() {
        let mut c = Circuit::new();
        let _ = c.dff(false); // never connected
        match CompiledCircuit::try_compile(&c) {
            Err(EngineError::InvalidCircuit(_)) => {}
            other => panic!("expected InvalidCircuit, got {other:?}"),
        }
    }
}
