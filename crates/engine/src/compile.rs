//! Compilation of a [`Circuit`] into a flat, levelized evaluation schedule,
//! plus the per-fault fanout-cone extraction behind cone-restricted
//! evaluation ([`CompiledCircuit::cone_for`]).

use crate::error::EngineError;
use crate::word::Word;
use scal_netlist::{Circuit, GateKind, NodeId, NodeView, Override, Site};
use std::time::Instant;

/// Wall times of the two compilation stages, for the profiler's `levelize` /
/// `pack` spans.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileSpans {
    /// Microseconds spent ordering gates and building the op schedule.
    pub levelize_micros: u64,
    /// Microseconds spent laying out slots (constants, flip-flops, I/O).
    pub pack_micros: u64,
}

/// Sentinel for "this node has no gate op" in [`CompiledCircuit::op_of_node`].
pub(crate) const NO_OP: u32 = u32::MAX;

/// Sentinel cone ordinal: "no cone op ever reads this value" (last-read
/// tables in [`FaultCone`]).
pub(crate) const CONE_NONE: u32 = u32::MAX;

/// Sentinel cone ordinal: "this value is a cone seed" — the evaluator sets
/// it itself (stem force, faulty flip-flop state), so readers must always
/// take the evaluator's slot, never the golden value, regardless of how far
/// the frontier got. Numerically equal to [`CONE_NONE`]; the two sentinels
/// live in disjoint tables (last-read vs producing-ordinal).
pub(crate) const CONE_SEED: u32 = u32::MAX;

/// One gate evaluation in the compiled schedule.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    /// Gate function.
    pub kind: GateKind,
    /// Destination slot.
    pub out: u32,
    /// Start of the fanin slot run in [`CompiledCircuit::fanins`].
    pub fan_start: u32,
    /// Number of fanins.
    pub fan_len: u32,
}

/// A [`Circuit`] compiled for repeated evaluation.
///
/// Node values live in dense *slots* indexed by [`NodeId::index`], with two
/// extra constant slots appended (all-zeros and all-ones words) so that fault
/// injection on a fanin is a single index rewrite. Gate evaluations are
/// recorded as a topologically ordered flat op array; evaluating the circuit
/// is one linear pass over it with no graph traversal, no allocation, and no
/// override searching.
///
/// A `CompiledCircuit` is immutable and shareable across threads; each worker
/// carries its own [`crate::Evaluator`] scratch state.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// Total slot count: one per node plus the two constant slots.
    pub(crate) num_slots: usize,
    /// Slot holding the all-zeros word.
    pub(crate) zero_slot: u32,
    /// Slot holding the all-ones word.
    pub(crate) one_slot: u32,
    /// Gate ops in topological order.
    pub(crate) ops: Vec<Op>,
    /// Flat fanin slot array referenced by [`Op::fan_start`]/[`Op::fan_len`].
    pub(crate) fanins: Vec<u32>,
    /// Slot of each primary input, in circuit input order.
    pub(crate) input_slots: Vec<u32>,
    /// Slot of each flip-flop output, in circuit flip-flop order.
    pub(crate) dff_slots: Vec<u32>,
    /// Slot each flip-flop latches from (its D fanin).
    pub(crate) dff_d_slots: Vec<u32>,
    /// Power-up value of each flip-flop.
    pub(crate) dff_init: Vec<bool>,
    /// Constant-source slots and their values.
    pub(crate) const_slots: Vec<(u32, bool)>,
    /// Slot of each primary output, in declaration order.
    pub(crate) output_slots: Vec<u32>,
    /// Per node: index of its op in `ops`, or [`NO_OP`] for sources.
    pub(crate) op_of_node: Vec<u32>,
    /// Gates per schedule level (level 0 = gates fed only by sources).
    pub(crate) level_gates: Vec<usize>,
    /// Schedule level of each op (parallel to `ops`).
    pub(crate) op_levels: Vec<u32>,
    /// Fanout CSR row starts: ops reading slot `s` are
    /// `fanout_ops[fanout_start[s]..fanout_start[s + 1]]`.
    pub(crate) fanout_start: Vec<u32>,
    /// Fanout CSR payload: op indices, grouped by the slot they read.
    pub(crate) fanout_ops: Vec<u32>,
}

impl CompiledCircuit {
    /// Compiles a circuit into a flat schedule, panicking on rejection.
    ///
    /// # Panics
    ///
    /// Panics if [`CompiledCircuit::try_compile`] errors (the circuit fails
    /// [`Circuit::validate`] or overflows the engine's `u32` slot indices).
    #[must_use]
    pub fn compile(circuit: &Circuit) -> Self {
        match Self::try_compile(circuit) {
            Ok(cc) => cc,
            Err(e) => panic!("{e}"),
        }
    }

    /// Compiles a circuit into a flat schedule.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidCircuit`] if the circuit fails
    /// [`Circuit::validate`], or [`EngineError::TooLarge`] if the node or
    /// fanin count overflows the engine's `u32` slot indices.
    pub fn try_compile(circuit: &Circuit) -> Result<Self, EngineError> {
        Self::try_compile_timed(circuit).map(|(cc, _)| cc)
    }

    /// [`CompiledCircuit::try_compile`] with per-stage wall times — the
    /// campaign's source for `levelize` / `pack` profiler spans.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledCircuit::try_compile`].
    pub fn try_compile_timed(circuit: &Circuit) -> Result<(Self, CompileSpans), EngineError> {
        circuit.validate()?;
        let n = circuit.len();
        let zero_slot = u32::try_from(n).map_err(|_| EngineError::TooLarge { count: n })?;
        let one_slot = zero_slot + 1;

        // Levelize: topologically order the gates into the flat op schedule
        // and record each gate's level (longest gate-only path from a
        // source) for the per-level evaluation counters.
        let t = Instant::now();
        let mut ops = Vec::new();
        let mut fanins = Vec::new();
        let mut op_of_node = vec![NO_OP; n];
        let mut node_level = vec![0usize; n];
        let mut level_gates = Vec::new();
        let mut op_levels = Vec::new();
        for id in circuit.topo_order() {
            if let NodeView::Gate(kind) = circuit.view(id) {
                let fan_start = u32::try_from(fanins.len()).map_err(|_| EngineError::TooLarge {
                    count: fanins.len(),
                })?;
                let mut level = 0;
                for f in circuit.fanins(id) {
                    fanins.push(f.index() as u32);
                    if matches!(circuit.view(*f), NodeView::Gate(_)) {
                        level = level.max(node_level[f.index()] + 1);
                    }
                }
                node_level[id.index()] = level;
                if level_gates.len() <= level {
                    level_gates.resize(level + 1, 0);
                }
                level_gates[level] += 1;
                op_levels.push(level as u32);
                op_of_node[id.index()] = ops.len() as u32;
                ops.push(Op {
                    kind,
                    out: id.index() as u32,
                    fan_start,
                    fan_len: circuit.fanins(id).len() as u32,
                });
            }
        }
        // Fanout CSR over the *original* fanins: for every slot, which ops
        // read it. This is what cone extraction walks, so it stays put when
        // an evaluator patches its private fanin copy for a branch fault
        // (the patched op is already a cone root in that case).
        let num_slots = n + 2;
        let mut fanout_start = vec![0u32; num_slots + 1];
        for &f in &fanins {
            fanout_start[f as usize + 1] += 1;
        }
        for s in 0..num_slots {
            fanout_start[s + 1] += fanout_start[s];
        }
        let mut fanout_ops = vec![0u32; fanins.len()];
        let mut cursor = fanout_start.clone();
        for (op_idx, op) in ops.iter().enumerate() {
            for i in 0..op.fan_len as usize {
                let f = fanins[op.fan_start as usize + i] as usize;
                fanout_ops[cursor[f] as usize] = op_idx as u32;
                cursor[f] += 1;
            }
        }
        let levelize_micros = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);

        // Pack: lay out the remaining slot metadata (constants, flip-flops,
        // primary I/O).
        let t = Instant::now();
        let mut const_slots = Vec::new();
        for id in circuit.node_ids() {
            if let NodeView::Const(v) = circuit.view(id) {
                const_slots.push((id.index() as u32, v));
            }
        }
        let mut dff_init = Vec::with_capacity(circuit.dffs().len());
        let mut dff_d_slots = Vec::with_capacity(circuit.dffs().len());
        for &ff in circuit.dffs() {
            match circuit.view(ff) {
                NodeView::Dff { init } => dff_init.push(init),
                _ => unreachable!("dffs() returns flip-flops"),
            }
            dff_d_slots.push(circuit.fanins(ff)[0].index() as u32);
        }

        let cc = CompiledCircuit {
            num_slots: n + 2,
            zero_slot,
            one_slot,
            ops,
            fanins,
            input_slots: circuit.inputs().iter().map(|i| i.index() as u32).collect(),
            dff_slots: circuit.dffs().iter().map(|f| f.index() as u32).collect(),
            dff_d_slots,
            dff_init,
            const_slots,
            output_slots: circuit
                .outputs()
                .iter()
                .map(|o| o.node.index() as u32)
                .collect(),
            op_of_node,
            level_gates,
            op_levels,
            fanout_start,
            fanout_ops,
        };
        let pack_micros = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
        Ok((
            cc,
            CompileSpans {
                levelize_micros,
                pack_micros,
            },
        ))
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.output_slots.len()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_dffs(&self) -> usize {
        self.dff_slots.len()
    }

    /// `true` iff the source circuit was sequential.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        !self.dff_slots.is_empty()
    }

    /// Number of gate ops in the schedule.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Gates per schedule level, level 0 first (gates fed only by sources).
    /// Multiplying each count by the words evaluated gives per-level
    /// gate-evaluation totals.
    #[must_use]
    pub fn level_gates(&self) -> &[usize] {
        &self.level_gates
    }

    /// Heap bytes held by the compiled schedule itself (ops, fanin and
    /// fanout CSRs, slot tables) — the compile-phase memory footprint
    /// reported in BENCH rows. Per-evaluation scratch words are not
    /// included; they scale with thread count, not circuit size.
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        use core::mem::size_of;
        let vec_bytes = [
            self.ops.len() * size_of::<Op>(),
            self.fanins.len() * size_of::<u32>(),
            self.input_slots.len() * size_of::<u32>(),
            self.dff_slots.len() * size_of::<u32>(),
            self.dff_d_slots.len() * size_of::<u32>(),
            self.dff_init.len() * size_of::<bool>(),
            self.const_slots.len() * size_of::<(u32, bool)>(),
            self.output_slots.len() * size_of::<u32>(),
            self.op_of_node.len() * size_of::<u32>(),
            self.level_gates.len() * size_of::<usize>(),
            self.op_levels.len() * size_of::<u32>(),
            self.fanout_start.len() * size_of::<u32>(),
            self.fanout_ops.len() * size_of::<u32>(),
        ];
        vec_bytes.iter().map(|&b| b as u64).sum::<u64>() + size_of::<Self>() as u64
    }

    /// The constant slot carrying `value`.
    pub(crate) fn const_slot(&self, value: bool) -> u32 {
        if value {
            self.one_slot
        } else {
            self.zero_slot
        }
    }

    /// Position of `node` in the flip-flop list, if it is one.
    pub(crate) fn dff_position(&self, node: NodeId) -> Option<usize> {
        let slot = node.index() as u32;
        self.dff_slots.iter().position(|&s| s == slot)
    }

    /// Ops reading `slot` (through the original, unpatched fanins).
    fn readers(&self, slot: usize) -> &[u32] {
        &self.fanout_ops[self.fanout_start[slot] as usize..self.fanout_start[slot + 1] as usize]
    }

    /// Extracts the transitive fanout cone of a fault site set — everything
    /// [`crate::Evaluator::eval_cone`] needs to re-evaluate only the ops the
    /// fault can perturb, seeded from cached golden slot values.
    ///
    /// Mirrors [`crate::Evaluator::try_install`] site semantics exactly
    /// (first override per site wins; sites the circuit does not have are
    /// ignored): a stem force seeds the node's slot and dirties its readers;
    /// a branch fault on a gate pin makes that gate a cone root (a
    /// conservative superset — the gate re-evaluates even at patterns where
    /// the stuck pin happens to match); a branch fault on a flip-flop's D
    /// pin marks the flip-flop's next state dirty. For sequential circuits
    /// the cone is widened across the D→Q arc to a fixed point: whenever a
    /// flip-flop's D value can differ from golden, its Q slot becomes a
    /// state seed and the Q fanout joins the cone, until no new flip-flop is
    /// affected.
    #[must_use]
    pub(crate) fn cone_for(&self, overrides: &[Override]) -> FaultCone {
        let n_dffs = self.dff_slots.len();
        let mut in_cone = vec![false; self.ops.len()];
        let mut dirty = vec![false; self.num_slots];
        let mut is_seed = vec![false; self.num_slots];
        let mut seed_slots: Vec<u32> = Vec::new();
        let mut root_ops: Vec<u32> = Vec::new();
        let mut dff_d_patched = vec![false; n_dffs];
        let mut fanin_patched: Vec<usize> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();

        let seed = |slot: usize,
                    dirty: &mut Vec<bool>,
                    is_seed: &mut Vec<bool>,
                    seed_slots: &mut Vec<u32>,
                    queue: &mut Vec<u32>| {
            dirty[slot] = true;
            is_seed[slot] = true;
            seed_slots.push(slot as u32);
            queue.extend_from_slice(self.readers(slot));
        };

        for o in overrides {
            match o.site {
                Site::Stem(node) => {
                    let slot = node.index();
                    if slot >= self.num_slots - 2 || is_seed[slot] {
                        continue;
                    }
                    seed(slot, &mut dirty, &mut is_seed, &mut seed_slots, &mut queue);
                }
                Site::Branch { node, pin } => {
                    if let Some(i) = self.dff_position(node) {
                        if pin == 0 {
                            dff_d_patched[i] = true;
                        }
                        continue;
                    }
                    let op_idx = match self
                        .op_of_node
                        .get(node.index())
                        .copied()
                        .filter(|&i| i != NO_OP)
                    {
                        Some(i) => i as usize,
                        None => continue,
                    };
                    let op = &self.ops[op_idx];
                    if pin >= op.fan_len as usize {
                        continue;
                    }
                    let flat = op.fan_start as usize + pin;
                    if fanin_patched.contains(&flat) {
                        continue;
                    }
                    fanin_patched.push(flat);
                    if !root_ops.contains(&(op_idx as u32)) {
                        root_ops.push(op_idx as u32);
                    }
                    queue.push(op_idx as u32);
                }
            }
        }

        // Transitive fanout propagation, then the D→Q widening to a fixed
        // point (combinational circuits skip the loop body entirely).
        loop {
            while let Some(op_idx) = queue.pop() {
                if in_cone[op_idx as usize] {
                    continue;
                }
                in_cone[op_idx as usize] = true;
                let out = self.ops[op_idx as usize].out as usize;
                if !dirty[out] {
                    dirty[out] = true;
                    queue.extend_from_slice(self.readers(out));
                }
            }
            let mut changed = false;
            for i in 0..n_dffs {
                let q = self.dff_slots[i] as usize;
                if dirty[q] {
                    continue;
                }
                if dff_d_patched[i] || dirty[self.dff_d_slots[i] as usize] {
                    seed(q, &mut dirty, &mut is_seed, &mut seed_slots, &mut queue);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Level-ordered cone schedule plus the ordinal tables the evaluator
        // and the extraction readability rule need.
        let mut cone_ops: Vec<u32> = (0..self.ops.len() as u32)
            .filter(|&i| in_cone[i as usize])
            .collect();
        cone_ops.sort_by_key(|&i| (self.op_levels[i as usize], i));
        let levels: Vec<u32> = cone_ops
            .iter()
            .map(|&i| self.op_levels[i as usize])
            .collect();
        let mut ordinal_of_slot = vec![CONE_NONE; self.num_slots];
        let mut ordinal_of_op = vec![CONE_NONE; self.ops.len()];
        for (j, &i) in cone_ops.iter().enumerate() {
            ordinal_of_slot[self.ops[i as usize].out as usize] = j as u32;
            ordinal_of_op[i as usize] = j as u32;
        }
        let mut roots: Vec<u32> = root_ops
            .iter()
            .map(|&i| ordinal_of_op[i as usize])
            .collect();
        roots.sort_unstable();
        let mut slot_last_read = vec![CONE_NONE; self.num_slots];
        for (j, &i) in cone_ops.iter().enumerate() {
            let op = &self.ops[i as usize];
            for k in 0..op.fan_len as usize {
                // Ascending ordinals, so the final write is the max reader.
                slot_last_read[self.fanins[op.fan_start as usize + k] as usize] = j as u32;
            }
        }
        let op_last_read: Vec<u32> = cone_ops
            .iter()
            .map(|&i| slot_last_read[self.ops[i as usize].out as usize])
            .collect();
        let seeds: Vec<(u32, u32)> = seed_slots
            .iter()
            .map(|&s| (s, slot_last_read[s as usize]))
            .collect();

        let mut support = Vec::new();
        let mut seen = vec![false; self.num_slots];
        for &i in &cone_ops {
            let op = &self.ops[i as usize];
            for k in 0..op.fan_len as usize {
                let f = self.fanins[op.fan_start as usize + k] as usize;
                if !seen[f] {
                    seen[f] = true;
                    if !dirty[f] {
                        support.push(f as u32);
                    }
                }
            }
        }

        let produced_ordinal = |slot: usize| {
            if is_seed[slot] {
                CONE_SEED
            } else {
                ordinal_of_slot[slot]
            }
        };
        let outputs: Vec<(u32, u32)> = self
            .output_slots
            .iter()
            .enumerate()
            .filter(|&(_, &s)| dirty[s as usize])
            .map(|(k, &s)| (k as u32, produced_ordinal(s as usize)))
            .collect();
        let mut dffs = Vec::new();
        for (i, &patched) in dff_d_patched.iter().enumerate().take(n_dffs) {
            let d = self.dff_d_slots[i] as usize;
            if patched {
                // The evaluator's patched D index points at a constant slot,
                // which eval_cone always sets — read the evaluator.
                dffs.push((i as u32, CONE_SEED));
            } else if dirty[d] {
                dffs.push((i as u32, produced_ordinal(d)));
            }
        }

        FaultCone {
            ops: cone_ops,
            levels,
            op_last_read,
            roots,
            seeds,
            support,
            outputs,
            dffs,
        }
    }
}

/// The transitive fanout cone of one fault site set, precomputed so a
/// campaign can evaluate only the ops the fault can perturb.
///
/// Produced by [`CompiledCircuit::cone_for`]; consumed by
/// [`crate::Evaluator::eval_cone`] and the cone-mode campaign/simulator
/// paths. All ordinals index into [`FaultCone::ops`].
#[derive(Debug, Clone)]
pub(crate) struct FaultCone {
    /// Op indices in the cone, sorted by (schedule level, op index).
    pub(crate) ops: Vec<u32>,
    /// Schedule level of each cone op (parallel to `ops`).
    pub(crate) levels: Vec<u32>,
    /// Last cone ordinal reading each cone op's output (original fanins),
    /// or [`CONE_NONE`] — the liveness horizon for the frontier-death exit.
    pub(crate) op_last_read: Vec<u32>,
    /// Cone ordinals of fault-rooted ops (gates with a patched branch pin).
    /// They inject dirtiness at their own ordinal rather than through a
    /// seed, so the evaluator pre-charges their liveness.
    pub(crate) roots: Vec<u32>,
    /// Seed slots the evaluator sets itself (stem forces, faulty flip-flop
    /// state), paired with their last reading cone ordinal or [`CONE_NONE`].
    pub(crate) seeds: Vec<(u32, u32)>,
    /// Distinct slots cone ops read that are neither produced in-cone nor
    /// seeded — loaded from the golden slot values before each cone run.
    pub(crate) support: Vec<u32>,
    /// Reachable primary outputs as `(output index, producing cone ordinal
    /// or CONE_SEED)`; outputs not listed are provably golden.
    pub(crate) outputs: Vec<(u32, u32)>,
    /// Reachable flip-flops as `(dff index, D-producing cone ordinal or
    /// CONE_SEED)`; flip-flops not listed latch their golden next state.
    pub(crate) dffs: Vec<(u32, u32)>,
}

/// One per-lane branch-fault injection of a packed fault batch.
///
/// [`crate::WideEvaluator::eval_packed_w`] materializes auxiliary slot
/// `slot` as `(slots[orig] & !mask) | (value & mask)` immediately before
/// schedule position `op` (the consuming gate), so the faulted lanes read
/// the stuck value while every other lane reads the original source word.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AuxInject<const W: usize> {
    /// Schedule position of the consuming op.
    pub(crate) op: u32,
    /// Auxiliary slot written (at or past the compiled slot range).
    pub(crate) slot: u32,
    /// Original source slot of the faulted pin.
    pub(crate) orig: u32,
    /// Lane mask of the faulting lanes.
    pub(crate) mask: Word<W>,
    /// Forced value word, meaningful under `mask`.
    pub(crate) value: Word<W>,
}

/// Per-lane injection plan for one packed fault batch: how a slice of
/// faults maps onto the fault lanes of a wide evaluator word (lane 0 of
/// every sub-word stays golden).
///
/// Two lane geometries exist:
///
/// - [`LanePlan::build_spread`] *spreads* up to `63 × W` distinct faults
///   across the sub-words — fault `i` occupies bit `1 + (i % 63)` of
///   sub-word `i / 63`. Used by the packed sequential backend, where the
///   flip-flop state is temporal and every sub-word must carry its own
///   faults.
/// - [`LanePlan::build_broadcast`] *broadcasts* up to 63 faults to the same
///   bit lane of **every** sub-word — fault `i` occupies bit `i + 1` in all
///   sub-words. Used by the combinational fault-packed pair path, where
///   each sub-word then carries a different input pattern, evaluating
///   `63 faults × W patterns` per sweep.
///
/// Mirrors [`crate::Evaluator::try_install`] site semantics *per lane*:
/// within one fault the first override for a site wins, and sites the
/// circuit does not have are ignored. Different lanes faulting the same
/// site merge into one masked entry.
#[derive(Debug)]
pub(crate) struct LanePlan<const W: usize> {
    /// Masked stem forces `(slot, lane mask, value word)`.
    pub(crate) stems: Vec<(u32, Word<W>, Word<W>)>,
    /// Masked D-input forces `(dff index, lane mask, value word)`, blended
    /// over the latched word at the end of every period.
    pub(crate) dff_forces: Vec<(u32, Word<W>, Word<W>)>,
    /// Branch injections, sorted by consuming-op schedule position.
    pub(crate) aux: Vec<AuxInject<W>>,
    /// Fanin redirections `(flat index, aux slot)` wiring each faulted pin
    /// to its auxiliary landing pad.
    pub(crate) fanin_patches: Vec<(u32, u32)>,
}

impl<const W: usize> Default for LanePlan<W> {
    fn default() -> Self {
        LanePlan {
            stems: Vec::new(),
            dff_forces: Vec::new(),
            aux: Vec::new(),
            fanin_patches: Vec::new(),
        }
    }
}

impl<const W: usize> LanePlan<W> {
    /// Builds the spread-geometry plan: at most `63 × W` override sets,
    /// fault `i` occupying bit `1 + (i % 63)` of sub-word `i / 63`.
    ///
    /// # Panics
    ///
    /// Panics if more than `63 × W` faults are given.
    pub(crate) fn build_spread(compiled: &CompiledCircuit, faults: &[&[Override]]) -> LanePlan<W> {
        assert!(
            faults.len() <= 63 * W,
            "a spread lane plan packs at most {} faults",
            63 * W
        );
        Self::build_with(compiled, faults, |i| {
            let mut lane = Word::ZERO;
            lane.set_sub(i / 63, 1u64 << (1 + i % 63));
            lane
        })
    }

    /// Builds the broadcast-geometry plan: at most 63 override sets, fault
    /// `i` occupying bit `i + 1` of **every** sub-word (each sub-word then
    /// carries a distinct input pattern).
    ///
    /// # Panics
    ///
    /// Panics if more than 63 faults are given.
    pub(crate) fn build_broadcast(
        compiled: &CompiledCircuit,
        faults: &[&[Override]],
    ) -> LanePlan<W> {
        assert!(
            faults.len() <= 63,
            "a broadcast lane plan packs at most 63 faults"
        );
        Self::build_with(compiled, faults, |i| Word::splat(1u64 << (i + 1)))
    }

    /// The shared plan builder: `lane_of(i)` yields fault `i`'s wide lane
    /// mask (exactly the geometry difference between the constructors).
    fn build_with(
        compiled: &CompiledCircuit,
        faults: &[&[Override]],
        lane_of: impl Fn(usize) -> Word<W>,
    ) -> LanePlan<W> {
        let mut plan = LanePlan::default();
        // flat pin index -> (consuming op, lane mask, value word).
        let mut branches: std::collections::BTreeMap<u32, (u32, Word<W>, Word<W>)> =
            std::collections::BTreeMap::new();
        // dff index -> (lane mask, value word).
        let mut dffs: std::collections::BTreeMap<u32, (Word<W>, Word<W>)> =
            std::collections::BTreeMap::new();
        // Claimed-site scratch, reused across faults: each set is tiny (one
        // entry per override of one fault), so linear scans beat hashing and
        // reusing the buffers keeps the per-fault loop allocation-free.
        let mut stem_claimed: Vec<usize> = Vec::new();
        let mut dff_claimed: Vec<usize> = Vec::new();
        let mut flat_claimed: Vec<usize> = Vec::new();
        for (i, ovs) in faults.iter().enumerate() {
            let lane = lane_of(i);
            stem_claimed.clear();
            dff_claimed.clear();
            flat_claimed.clear();
            for o in ovs.iter() {
                match o.site {
                    Site::Stem(node) => {
                        let slot = node.index();
                        if slot >= compiled.num_slots - 2 || stem_claimed.contains(&slot) {
                            continue; // unknown node, or an earlier override won
                        }
                        stem_claimed.push(slot);
                        plan.stems.push((
                            slot as u32,
                            lane,
                            if o.value { lane } else { Word::ZERO },
                        ));
                    }
                    Site::Branch { node, pin } => {
                        if let Some(d) = compiled.dff_position(node) {
                            if pin == 0 && !dff_claimed.contains(&d) {
                                dff_claimed.push(d);
                                let e = dffs.entry(d as u32).or_insert((Word::ZERO, Word::ZERO));
                                e.0 |= lane;
                                if o.value {
                                    e.1 |= lane;
                                }
                            }
                            continue;
                        }
                        let op_idx = match compiled
                            .op_of_node
                            .get(node.index())
                            .copied()
                            .filter(|&i| i != NO_OP)
                        {
                            Some(i) => i as usize,
                            None => continue,
                        };
                        let op = &compiled.ops[op_idx];
                        if pin >= op.fan_len as usize {
                            continue;
                        }
                        let flat = op.fan_start as usize + pin;
                        if flat_claimed.contains(&flat) {
                            continue;
                        }
                        flat_claimed.push(flat);
                        let e = branches.entry(flat as u32).or_insert((
                            op_idx as u32,
                            Word::ZERO,
                            Word::ZERO,
                        ));
                        e.1 |= lane;
                        if o.value {
                            e.2 |= lane;
                        }
                    }
                }
            }
        }
        // Assign auxiliary slots in consuming-op schedule order so the
        // packed sweep applies each injection with a single forward cursor.
        let mut entries: Vec<(u32, u32, Word<W>, Word<W>)> = branches
            .into_iter()
            .map(|(flat, (op, mask, value))| (op, flat, mask, value))
            .collect();
        entries.sort_unstable_by_key(|&(op, flat, _, _)| (op, flat));
        for (k, (op, flat, mask, value)) in entries.into_iter().enumerate() {
            let slot = (compiled.num_slots + k) as u32;
            plan.aux.push(AuxInject {
                op,
                slot,
                orig: compiled.fanins[flat as usize],
                mask,
                value,
            });
            plan.fanin_patches.push((flat, slot));
        }
        plan.dff_forces = dffs.into_iter().map(|(d, (m, v))| (d, m, v)).collect();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::Circuit;

    #[test]
    fn compiles_gates_in_topo_order() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let h = c.or(&[g, a]);
        c.mark_output("f", h);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.num_ops(), 2);
        assert_eq!(cc.num_inputs(), 2);
        assert_eq!(cc.num_outputs(), 1);
        assert!(!cc.is_sequential());
        // g must be scheduled before h.
        let pos_g = cc.ops.iter().position(|o| o.out == g.index() as u32);
        let pos_h = cc.ops.iter().position(|o| o.out == h.index() as u32);
        assert!(pos_g < pos_h);
        // g is fed only by inputs (level 0); h depends on g (level 1).
        assert_eq!(cc.level_gates(), &[1, 1]);
    }

    #[test]
    fn level_counts_follow_gate_depth() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g1 = c.and(&[a, b]);
        let g2 = c.or(&[a, b]);
        let g3 = c.xor(&[g1, g2]);
        let g4 = c.not(g3);
        c.mark_output("f", g4);
        let (cc, spans) = CompiledCircuit::try_compile_timed(&c).unwrap();
        assert_eq!(cc.level_gates(), &[2, 1, 1]);
        assert_eq!(cc.level_gates().iter().sum::<usize>(), cc.num_ops());
        // Stage timings exist (may be zero on a fast machine, never huge).
        assert!(spans.levelize_micros < 10_000_000);
        assert!(spans.pack_micros < 10_000_000);
    }

    #[test]
    fn records_dff_layout() {
        let mut c = Circuit::new();
        let ff = c.dff(true);
        let nq = c.not(ff);
        c.connect_dff(ff, nq);
        c.mark_output("q", ff);
        let cc = CompiledCircuit::compile(&c);
        assert!(cc.is_sequential());
        assert_eq!(cc.dff_init, vec![true]);
        assert_eq!(cc.dff_d_slots, vec![nq.index() as u32]);
        assert_eq!(cc.dff_position(ff), Some(0));
    }

    #[test]
    #[should_panic(expected = "must validate")]
    fn rejects_invalid_circuits() {
        let mut c = Circuit::new();
        let _ = c.dff(false); // never connected
        let _ = CompiledCircuit::compile(&c);
    }

    #[test]
    fn try_compile_reports_invalid_circuits() {
        let mut c = Circuit::new();
        let _ = c.dff(false); // never connected
        match CompiledCircuit::try_compile(&c) {
            Err(EngineError::InvalidCircuit(_)) => {}
            other => panic!("expected InvalidCircuit, got {other:?}"),
        }
    }
}
