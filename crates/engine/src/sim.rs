//! Sequential stepping over a compiled schedule — the engine counterpart of
//! [`scal_netlist::Sim`] — plus the cone-restricted fault stepper that
//! replays a recorded golden trace instead of re-evaluating the whole
//! schedule per fault.

use crate::compile::{AuxInject, CompiledCircuit, FaultCone, LanePlan, CONE_SEED};
use crate::eval::{Evaluator, WideEvaluator};
use crate::word::Word;
use scal_netlist::Override;

/// A synchronous simulator over a [`CompiledCircuit`].
///
/// Semantics mirror [`scal_netlist::Sim`] exactly — one [`CompiledSim::step`]
/// per clock period, flip-flops latch their (possibly faulted) D values on
/// the edge, overrides persist until cleared — but each step is one linear
/// pass over the compiled op schedule instead of a graph walk, and no
/// allocation happens per step beyond the returned output vector.
#[derive(Debug)]
pub struct CompiledSim<'c> {
    compiled: &'c CompiledCircuit,
    ev: Evaluator,
    /// One word per flip-flop; scalar stepping uses lane 0 only.
    state: Vec<u64>,
    inputs: Vec<u64>,
    steps: u64,
}

impl<'c> CompiledSim<'c> {
    /// Creates a simulator with every flip-flop at its power-up value.
    #[must_use]
    pub fn new(compiled: &'c CompiledCircuit) -> Self {
        let state = compiled
            .dff_init
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        CompiledSim {
            compiled,
            ev: Evaluator::new(compiled),
            state,
            inputs: vec![0; compiled.num_inputs()],
            steps: 0,
        }
    }

    /// Attaches persistent overrides (e.g. a stuck-at fault). The overrides
    /// stay installed until [`CompiledSim::clear_overrides`].
    pub fn attach(&mut self, overrides: &[Override]) {
        self.ev.uninstall();
        self.ev.install(self.compiled, overrides);
    }

    /// Removes all overrides.
    pub fn clear_overrides(&mut self) {
        self.ev.uninstall();
    }

    /// Overwrites the flip-flop state.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the flip-flop count.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state arity mismatch");
        for (w, &b) in self.state.iter_mut().zip(state) {
            *w = if b { u64::MAX } else { 0 };
        }
    }

    /// Current flip-flop state.
    #[must_use]
    pub fn state(&self) -> Vec<bool> {
        self.state.iter().map(|&w| w & 1 == 1).collect()
    }

    /// Clock periods simulated so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulates one clock period: samples the primary outputs, then latches
    /// every flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the input count.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.compiled.num_inputs(),
            "input arity mismatch"
        );
        for (w, &b) in self.inputs.iter_mut().zip(inputs) {
            *w = if b { u64::MAX } else { 0 };
        }
        self.ev.eval(self.compiled, &self.inputs, &self.state);
        let outputs = (0..self.compiled.num_outputs())
            .map(|k| self.ev.output(self.compiled, k) & 1 == 1)
            .collect();
        for i in 0..self.state.len() {
            self.state[i] = self.ev.next_state(self.compiled, i);
        }
        self.steps += 1;
        outputs
    }

    /// Resets flip-flops to power-up values and clears the step counter
    /// (overrides are kept, matching [`scal_netlist::Sim::reset`]).
    pub fn reset(&mut self) {
        for (w, &b) in self.state.iter_mut().zip(&self.compiled.dff_init) {
            *w = if b { u64::MAX } else { 0 };
        }
        self.steps = 0;
    }
}

/// A recorded fault-free run: per clock period, the full slot array, every
/// flip-flop's next-state word, and the primary-output values.
///
/// Captured once from power-up over a fixed input sequence; any number of
/// [`ConeSim`]s can then replay faults against it without re-evaluating the
/// out-of-cone schedule. Memory cost is `num_slots × steps × 8` bytes.
#[derive(Debug, Clone)]
pub struct GoldenTrace {
    num_slots: usize,
    n_dffs: usize,
    n_outputs: usize,
    steps: usize,
    /// `[step][slot]` flattened: slot words right after the step's sweep.
    slots: Vec<u64>,
    /// `[step][dff]` flattened: D words latched at the end of each step.
    next_state: Vec<u64>,
    /// `[step][output]` flattened: lane-0 output values.
    outputs: Vec<bool>,
}

impl GoldenTrace {
    /// Runs `compiled` from power-up over `steps` (one input vector per
    /// clock period) and records everything a cone replay needs.
    ///
    /// # Panics
    ///
    /// Panics if a step's input width mismatches the circuit.
    #[must_use]
    pub fn capture(compiled: &CompiledCircuit, steps: &[Vec<bool>]) -> Self {
        let n_dffs = compiled.num_dffs();
        let n_outputs = compiled.num_outputs();
        let mut trace = GoldenTrace {
            num_slots: compiled.num_slots,
            n_dffs,
            n_outputs,
            steps: steps.len(),
            slots: Vec::with_capacity(steps.len() * compiled.num_slots),
            next_state: Vec::with_capacity(steps.len() * n_dffs),
            outputs: Vec::with_capacity(steps.len() * n_outputs),
        };
        let mut ev = Evaluator::new(compiled);
        let mut state: Vec<u64> = compiled
            .dff_init
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        let mut inputs = vec![0u64; compiled.num_inputs()];
        for step in steps {
            assert_eq!(step.len(), inputs.len(), "input arity mismatch");
            for (w, &b) in inputs.iter_mut().zip(step) {
                *w = if b { u64::MAX } else { 0 };
            }
            ev.eval(compiled, &inputs, &state);
            trace.slots.extend(ev.slots_w().iter().map(|w| w.first()));
            for (i, s) in state.iter_mut().enumerate().take(n_dffs) {
                let w = ev.next_state(compiled, i);
                trace.next_state.push(w);
                *s = w;
            }
            for k in 0..n_outputs {
                trace.outputs.push(ev.output(compiled, k) & 1 == 1);
            }
        }
        trace
    }

    /// Clock periods recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps
    }

    /// `true` iff no periods were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }

    /// Fault-free primary-output values of one period.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    #[must_use]
    pub fn outputs(&self, step: usize) -> &[bool] {
        &self.outputs[step * self.n_outputs..(step + 1) * self.n_outputs]
    }

    fn step_slots(&self, step: usize) -> &[u64] {
        &self.slots[step * self.num_slots..(step + 1) * self.num_slots]
    }

    fn step_next_state(&self, step: usize, i: usize) -> u64 {
        self.next_state[step * self.n_dffs + i]
    }
}

/// Cone-restricted evaluation statistics of a [`ConeSim`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConeSimStats {
    /// Ops in the fault's fanout cone (per sweep).
    pub cone_ops: u64,
    /// Cone ops actually evaluated across all steps so far.
    pub ops_evaluated: u64,
    /// Op evaluations a full-schedule run would have performed but the cone
    /// replay skipped.
    pub ops_skipped: u64,
    /// Shallowest schedule level at which the faulty frontier converged back
    /// to golden (`None` if every step ran the cone to completion).
    pub frontier_died_at_level: Option<u32>,
}

/// A faulty sequential replay against a [`GoldenTrace`]: each step evaluates
/// only the fault's fanout cone — widened across the D→Q arc to a fixed
/// point at construction — seeded from the trace's slot words and the
/// tracked faulty flip-flop state.
///
/// The input sequence is implied by the trace; stepping past its end panics.
/// Semantics match [`CompiledSim`] with the same overrides attached,
/// bit-exactly.
#[derive(Debug)]
pub struct ConeSim<'c> {
    compiled: &'c CompiledCircuit,
    ev: Evaluator,
    cone: FaultCone,
    /// Liveness-expiry scratch for the frontier-death exit.
    expire: Vec<u64>,
    /// Faulty flip-flop state words (lane-replicated).
    state: Vec<u64>,
    /// Reusable `(slot, word)` seed list for the affected flip-flops.
    seed_buf: Vec<(u32, u64)>,
    step: usize,
    ops_evaluated: u64,
    died_min: Option<u32>,
}

impl<'c> ConeSim<'c> {
    /// Creates a faulty replayer with `overrides` installed and every
    /// flip-flop at its power-up value.
    #[must_use]
    pub fn new(compiled: &'c CompiledCircuit, overrides: &[Override]) -> Self {
        let cone = compiled.cone_for(overrides);
        let mut ev = Evaluator::new(compiled);
        ev.install(compiled, overrides);
        let state = compiled
            .dff_init
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        ConeSim {
            compiled,
            expire: vec![0; cone.ops.len()],
            seed_buf: Vec::with_capacity(compiled.num_dffs()),
            cone,
            ev,
            state,
            step: 0,
            ops_evaluated: 0,
            died_min: None,
        }
    }

    /// Simulates one clock period against the trace's next recorded step:
    /// samples the (possibly faulty) primary outputs, then latches every
    /// flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if the trace is exhausted or was captured from a different
    /// circuit.
    pub fn step(&mut self, trace: &GoldenTrace) -> Vec<bool> {
        assert!(self.step < trace.len(), "golden trace exhausted");
        assert_eq!(
            trace.num_slots, self.compiled.num_slots,
            "trace/circuit mismatch"
        );
        let golden = trace.step_slots(self.step);
        // Seed the faulty state only on flip-flops the cone can affect; the
        // rest provably latched golden values, and cone support reloads
        // their Q slots from the trace.
        self.seed_buf.clear();
        for &(s, _) in &self.cone.seeds {
            if let Some(i) = self.compiled.dff_slots.iter().position(|&q| q == s) {
                self.seed_buf.push((s, self.state[i]));
            }
        }
        let evaluated = self.ev.eval_cone(
            self.compiled,
            &self.cone,
            golden,
            &self.seed_buf,
            u64::MAX,
            &mut self.expire,
        );
        self.ops_evaluated += u64::from(evaluated);
        if (evaluated as usize) < self.cone.ops.len() {
            let lvl = self.cone.levels[evaluated as usize];
            self.died_min = Some(self.died_min.map_or(lvl, |d| d.min(lvl)));
        }
        let readable = |ord: u32| ord == CONE_SEED || ord < evaluated;
        let mut out = trace.outputs(self.step).to_vec();
        for &(k, ord) in &self.cone.outputs {
            if readable(ord) {
                out[k as usize] = self.ev.output(self.compiled, k as usize) & 1 == 1;
            }
        }
        for i in 0..self.state.len() {
            self.state[i] = trace.step_next_state(self.step, i);
        }
        for &(i, ord) in &self.cone.dffs {
            if readable(ord) {
                self.state[i as usize] = self.ev.next_state(self.compiled, i as usize);
            }
        }
        self.step += 1;
        out
    }

    /// Clock periods simulated so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.step as u64
    }

    /// Cumulative cone statistics over the steps simulated so far.
    #[must_use]
    pub fn stats(&self) -> ConeSimStats {
        ConeSimStats {
            cone_ops: self.cone.ops.len() as u64,
            ops_evaluated: self.ops_evaluated,
            ops_skipped: self.compiled.num_ops() as u64 * self.step as u64 - self.ops_evaluated,
            frontier_died_at_level: self.died_min,
        }
    }
}

/// The prebuilt per-lane injection plan of one packed fault batch — the
/// compile-phase half of [`WidePackedSeqSim`].
///
/// Building a plan walks every fault's overrides, merges same-site faults
/// into masked entries, and assigns auxiliary branch slots in schedule
/// order; campaigns do that for all batches up front (it is planning, not
/// evaluation) and then spin up each batch's simulator with
/// [`WidePackedSeqSim::from_plan`], keeping the fault-sim phase free of
/// planning work.
#[derive(Debug)]
pub struct WidePackedBatchPlan<const W: usize> {
    plan: LanePlan<W>,
    lanes: usize,
}

/// The scalar (`W = 1`) batch plan: up to 63 faults in one `u64` word.
pub type PackedBatchPlan = WidePackedBatchPlan<1>;

impl<const W: usize> WidePackedBatchPlan<W> {
    /// Plans one batch: `faults[i]`'s overrides are mapped onto bit
    /// `1 + (i % 63)` of sub-word `i / 63` with
    /// [`Evaluator`](crate::Evaluator) install semantics per lane (first
    /// override per site wins, unknown sites ignored).
    ///
    /// # Panics
    ///
    /// Panics if more than [`WidePackedSeqSim::FAULT_LANES`] (`63 × W`)
    /// faults are given.
    #[must_use]
    pub fn build(compiled: &CompiledCircuit, faults: &[&[Override]]) -> Self {
        assert!(
            faults.len() <= WidePackedSeqSim::<W>::FAULT_LANES,
            "a packed batch holds at most {} faults",
            WidePackedSeqSim::<W>::FAULT_LANES
        );
        WidePackedBatchPlan {
            plan: LanePlan::build_spread(compiled, faults),
            lanes: faults.len(),
        }
    }

    /// Fault lanes the plan occupies (the golden lanes not included).
    #[must_use]
    pub fn fault_lanes(&self) -> usize {
        self.lanes
    }
}

/// A fault-per-lane packed sequential simulator over a wide word: lane 0 of
/// every sub-word replays the golden machine, and fault `i` replays on bit
/// `1 + (i % 63)` of sub-word `i / 63` — up to `63 × W` faults per batch,
/// one sweep per clock period serving the whole batch.
///
/// Per-lane injection uses masked stem forces, auxiliary branch slots
/// (planned by the compile-side lane plan), and masked D-latch blends;
/// per-lane flip-flop state is carried across periods inside the same
/// packed words. Each occupied fault lane of every output word after
/// [`WidePackedSeqSim::step`] is bit-exact with a [`CompiledSim`] carrying
/// that fault's overrides, and lane 0 of every sub-word with the fault-free
/// machine.
#[derive(Debug)]
pub struct WidePackedSeqSim<'c, const W: usize> {
    compiled: &'c CompiledCircuit,
    ev: WideEvaluator<W>,
    /// Branch injections, sorted by consuming-op schedule position.
    aux: Vec<AuxInject<W>>,
    /// Per flip-flop `(mask, value)` blend applied to the latched word
    /// (per-lane D-pin branch faults).
    dff_blend: Vec<(Word<W>, Word<W>)>,
    /// One word per flip-flop, all lanes live.
    state: Vec<Word<W>>,
    inputs: Vec<Word<W>>,
    lanes: usize,
    steps: u64,
}

/// The scalar (`W = 1`) packed sequential simulator: 63 fault lanes plus
/// the golden lane in one `u64` word.
pub type PackedSeqSim<'c> = WidePackedSeqSim<'c, 1>;

impl<'c, const W: usize> WidePackedSeqSim<'c, W> {
    /// Maximum faults one batch packs (lane 0 of every sub-word is reserved
    /// for golden).
    pub const FAULT_LANES: usize = 63 * W;

    /// Creates a packed simulator with every flip-flop at its power-up
    /// value; `faults[i]`'s overrides are installed on bit `1 + (i % 63)`
    /// of sub-word `i / 63` with [`Evaluator`](crate::Evaluator) install
    /// semantics per lane (first override per site wins, unknown sites
    /// ignored).
    ///
    /// # Panics
    ///
    /// Panics if more than [`WidePackedSeqSim::FAULT_LANES`] faults are
    /// given.
    #[must_use]
    pub fn new(compiled: &'c CompiledCircuit, faults: &[&[Override]]) -> Self {
        Self::from_plan(compiled, &WidePackedBatchPlan::build(compiled, faults))
    }

    /// Creates a packed simulator from a prebuilt [`WidePackedBatchPlan`] —
    /// the evaluation-phase half of the split: no fault walking or slot
    /// assignment happens here, only evaluator scratch setup.
    #[must_use]
    pub fn from_plan(compiled: &'c CompiledCircuit, plan: &WidePackedBatchPlan<W>) -> Self {
        let lanes = plan.lanes;
        let plan = &plan.plan;
        let mut ev = WideEvaluator::with_aux(compiled, plan.aux.len());
        for &(slot, mask, value) in &plan.stems {
            ev.add_masked_stem(compiled, slot as usize, mask, value);
        }
        for &(flat, slot) in &plan.fanin_patches {
            ev.patch_fanin(flat as usize, slot);
        }
        let mut dff_blend = vec![(Word::ZERO, Word::ZERO); compiled.num_dffs()];
        for &(d, mask, value) in &plan.dff_forces {
            dff_blend[d as usize] = (mask, value);
        }
        let state = compiled
            .dff_init
            .iter()
            .map(|&b| Word::splat_bool(b))
            .collect();
        WidePackedSeqSim {
            compiled,
            ev,
            aux: plan.aux.clone(),
            dff_blend,
            state,
            inputs: vec![Word::ZERO; compiled.num_inputs()],
            lanes,
            steps: 0,
        }
    }

    /// Fault lanes occupied (the golden lanes not included).
    #[must_use]
    pub fn fault_lanes(&self) -> usize {
        self.lanes
    }

    /// Mask covering every occupied fault lane of sub-word `s` (bits
    /// `1..=n` where `n` is the number of faults packed into that
    /// sub-word).
    #[must_use]
    pub fn sub_lane_mask(&self, s: usize) -> u64 {
        let n = self.lanes.saturating_sub(63 * s).min(63);
        if n == 0 {
            0
        } else {
            (u64::MAX >> (63 - n)) & !1
        }
    }

    /// Simulates one clock period for every lane: one packed sweep, then a
    /// per-lane latch of every flip-flop. Outputs are sampled afterwards
    /// with [`WidePackedSeqSim::output_wide`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the input count.
    pub fn step(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.compiled.num_inputs(),
            "input arity mismatch"
        );
        for (w, &b) in self.inputs.iter_mut().zip(inputs) {
            *w = Word::splat_bool(b);
        }
        self.ev
            .eval_packed_w(self.compiled, &self.inputs, &self.state, &self.aux);
        for i in 0..self.state.len() {
            let w = self.ev.next_state_w(self.compiled, i);
            let (m, v) = self.dff_blend[i];
            self.state[i] = w.blend(v, m);
        }
        self.steps += 1;
    }

    /// Packed wide word of primary output `k` after the last step: lane 0
    /// of every sub-word is the golden value, bit `1 + (i % 63)` of
    /// sub-word `i / 63` the value under fault `i`.
    #[must_use]
    pub fn output_wide(&self, k: usize) -> Word<W> {
        self.ev.output_w(self.compiled, k)
    }

    /// Clock periods simulated so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl PackedSeqSim<'_> {
    /// Mask covering every occupied fault lane (bits `1..=fault_lanes`).
    #[must_use]
    pub fn lane_mask(&self) -> u64 {
        self.sub_lane_mask(0)
    }

    /// Packed word of primary output `k` after the last step: lane 0 is the
    /// golden value, lane `l` the value under fault `l - 1`.
    #[must_use]
    pub fn output(&self, k: usize) -> u64 {
        self.output_wide(k).first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{Circuit, Override, Sim, Site};

    fn counter2() -> Circuit {
        let mut c = Circuit::new();
        let q0 = c.dff(false);
        let q1 = c.dff(false);
        let n0 = c.not(q0);
        let t = c.xor(&[q1, q0]);
        c.connect_dff(q0, n0);
        c.connect_dff(q1, t);
        c.mark_output("q0", q0);
        c.mark_output("q1", q1);
        c
    }

    #[test]
    fn counts_like_the_graph_simulator() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let mut fast = CompiledSim::new(&cc);
        let mut slow = Sim::new(&c);
        for _ in 0..10 {
            assert_eq!(fast.step(&[]), slow.step(&[]));
        }
        assert_eq!(fast.steps(), 10);
    }

    #[test]
    fn faults_persist_and_clear() {
        let c = counter2();
        let q0 = c.dffs()[0];
        let cc = CompiledCircuit::compile(&c);
        let mut sim = CompiledSim::new(&cc);
        sim.attach(&[Override {
            site: Site::Stem(q0),
            value: false,
        }]);
        for _ in 0..4 {
            assert_eq!(sim.step(&[]), vec![false, false]);
        }
        sim.clear_overrides();
        sim.reset();
        assert_eq!(sim.steps(), 0);
        let mut slow = Sim::new(&c);
        for _ in 0..4 {
            assert_eq!(sim.step(&[]), slow.step(&[]));
        }
    }

    #[test]
    fn dff_d_branch_fault_corrupts_latched_value() {
        let c = counter2();
        let q0 = c.dffs()[0];
        let cc = CompiledCircuit::compile(&c);
        let ov = [Override {
            site: Site::Branch { node: q0, pin: 0 },
            value: true,
        }];
        let mut fast = CompiledSim::new(&cc);
        fast.attach(&ov);
        let mut slow = Sim::new(&c);
        slow.attach(ov[0]);
        for _ in 0..6 {
            assert_eq!(fast.step(&[]), slow.step(&[]));
        }
    }

    /// Every single stuck-at fault of the 2-bit counter replays identically
    /// through the cone-restricted stepper and the full compiled simulator —
    /// the D→Q widening must carry faulty state across clock edges exactly.
    #[test]
    fn cone_sim_matches_compiled_sim_under_every_fault() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let steps: Vec<Vec<bool>> = (0..12).map(|_| Vec::new()).collect();
        let trace = GoldenTrace::capture(&cc, &steps);
        let mut sites = Vec::new();
        for id in c.node_ids() {
            sites.push(Site::Stem(id));
            for pin in 0..c.fanins(id).len() {
                sites.push(Site::Branch { node: id, pin });
            }
        }
        for site in sites {
            for value in [false, true] {
                let ov = [Override { site, value }];
                let mut full = CompiledSim::new(&cc);
                full.attach(&ov);
                let mut cone = ConeSim::new(&cc, &ov);
                for (t, step) in steps.iter().enumerate() {
                    assert_eq!(
                        cone.step(&trace),
                        full.step(step),
                        "site {site:?} value {value} step {t}"
                    );
                }
                let stats = cone.stats();
                assert_eq!(
                    stats.ops_evaluated + stats.ops_skipped,
                    cc.num_ops() as u64 * steps.len() as u64,
                    "accounting must balance for {site:?}"
                );
            }
        }
    }

    /// A fault-free replay (empty cone) skips every op and returns the
    /// golden outputs verbatim.
    #[test]
    fn cone_sim_with_no_overrides_is_all_skip() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let steps: Vec<Vec<bool>> = (0..5).map(|_| Vec::new()).collect();
        let trace = GoldenTrace::capture(&cc, &steps);
        assert_eq!(trace.len(), 5);
        let mut cone = ConeSim::new(&cc, &[]);
        let mut full = CompiledSim::new(&cc);
        for step in &steps {
            assert_eq!(cone.step(&trace), full.step(step));
        }
        assert_eq!(cone.stats().ops_evaluated, 0);
        assert_eq!(
            cone.stats().ops_skipped,
            cc.num_ops() as u64 * steps.len() as u64
        );
    }

    /// Every stuck-at fault of the 2-bit counter packed into one batch:
    /// each lane must match a dedicated [`CompiledSim`] carrying the same
    /// fault, and lane 0 the fault-free machine, at every step.
    #[test]
    fn packed_lanes_match_per_fault_compiled_sims() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let mut faults: Vec<[Override; 1]> = Vec::new();
        for id in c.node_ids() {
            for value in [false, true] {
                faults.push([Override {
                    site: Site::Stem(id),
                    value,
                }]);
                for pin in 0..c.fanins(id).len() {
                    faults.push([Override {
                        site: Site::Branch { node: id, pin },
                        value,
                    }]);
                }
            }
        }
        faults.truncate(PackedSeqSim::FAULT_LANES);
        let refs: Vec<&[Override]> = faults.iter().map(|f| f.as_slice()).collect();
        let mut packed = PackedSeqSim::new(&cc, &refs);
        assert_eq!(packed.fault_lanes(), faults.len());
        let mut golden = CompiledSim::new(&cc);
        let mut scalars: Vec<CompiledSim<'_>> = faults
            .iter()
            .map(|f| {
                let mut s = CompiledSim::new(&cc);
                s.attach(f);
                s
            })
            .collect();
        for step in 0..12 {
            packed.step(&[]);
            let gold = golden.step(&[]);
            let lanes: Vec<Vec<bool>> = scalars.iter_mut().map(|s| s.step(&[])).collect();
            for k in 0..cc.num_outputs() {
                let w = packed.output(k);
                assert_eq!(w & 1 == 1, gold[k], "golden lane, output {k}, step {step}");
                for (l, lane) in lanes.iter().enumerate() {
                    assert_eq!(
                        (w >> (l + 1)) & 1 == 1,
                        lane[k],
                        "fault {:?}, output {k}, step {step}",
                        faults[l][0]
                    );
                }
            }
        }
        assert_eq!(packed.steps(), 12);
    }

    /// Spread geometry at `W = 4`: more than 63 faults flow into the upper
    /// sub-words, and every occupied lane of every sub-word must match a
    /// dedicated scalar [`CompiledSim`] carrying the same fault.
    #[test]
    fn wide_packed_sub_words_match_per_fault_compiled_sims() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let mut faults: Vec<[Override; 1]> = Vec::new();
        for id in c.node_ids() {
            for value in [false, true] {
                faults.push([Override {
                    site: Site::Stem(id),
                    value,
                }]);
                for pin in 0..c.fanins(id).len() {
                    faults.push([Override {
                        site: Site::Branch { node: id, pin },
                        value,
                    }]);
                }
            }
        }
        // Cycle the fault list past one sub-word's 63 lanes so the spread
        // geometry genuinely exercises sub-words 1 and 2.
        let distinct = faults.len();
        while faults.len() < 150 {
            let f = faults[faults.len() % distinct];
            faults.push(f);
        }
        let refs: Vec<&[Override]> = faults.iter().map(|f| f.as_slice()).collect();
        let mut packed: WidePackedSeqSim<'_, 4> = WidePackedSeqSim::new(&cc, &refs);
        assert_eq!(packed.fault_lanes(), faults.len());
        assert_eq!(WidePackedSeqSim::<4>::FAULT_LANES, 252);
        assert_eq!(packed.sub_lane_mask(3), 0, "sub-word 3 holds no faults");
        let mut golden = CompiledSim::new(&cc);
        let mut scalars: Vec<CompiledSim<'_>> = faults
            .iter()
            .map(|f| {
                let mut s = CompiledSim::new(&cc);
                s.attach(f);
                s
            })
            .collect();
        for step in 0..12 {
            packed.step(&[]);
            let gold = golden.step(&[]);
            let lanes: Vec<Vec<bool>> = scalars.iter_mut().map(|s| s.step(&[])).collect();
            for k in 0..cc.num_outputs() {
                let w = packed.output_wide(k);
                for s in 0..4 {
                    assert_eq!(
                        w.sub(s) & 1 == 1,
                        gold[k],
                        "golden lane, sub {s}, output {k}, step {step}"
                    );
                }
                for (i, lane) in lanes.iter().enumerate() {
                    assert_eq!(
                        (w.sub(i / 63) >> (1 + i % 63)) & 1 == 1,
                        lane[k],
                        "fault {i} ({:?}), output {k}, step {step}",
                        faults[i][0]
                    );
                }
            }
        }
        assert_eq!(packed.steps(), 12);
    }

    #[test]
    fn set_state_jumps() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let mut sim = CompiledSim::new(&cc);
        sim.set_state(&[true, true]);
        assert_eq!(sim.state(), vec![true, true]);
        assert_eq!(sim.step(&[]), vec![true, true]);
        assert_eq!(sim.step(&[]), vec![false, false]);
    }
}
