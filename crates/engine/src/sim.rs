//! Sequential stepping over a compiled schedule — the engine counterpart of
//! [`scal_netlist::Sim`].

use crate::compile::CompiledCircuit;
use crate::eval::Evaluator;
use scal_netlist::Override;

/// A synchronous simulator over a [`CompiledCircuit`].
///
/// Semantics mirror [`scal_netlist::Sim`] exactly — one [`CompiledSim::step`]
/// per clock period, flip-flops latch their (possibly faulted) D values on
/// the edge, overrides persist until cleared — but each step is one linear
/// pass over the compiled op schedule instead of a graph walk, and no
/// allocation happens per step beyond the returned output vector.
#[derive(Debug)]
pub struct CompiledSim<'c> {
    compiled: &'c CompiledCircuit,
    ev: Evaluator,
    /// One word per flip-flop; scalar stepping uses lane 0 only.
    state: Vec<u64>,
    inputs: Vec<u64>,
    steps: u64,
}

impl<'c> CompiledSim<'c> {
    /// Creates a simulator with every flip-flop at its power-up value.
    #[must_use]
    pub fn new(compiled: &'c CompiledCircuit) -> Self {
        let state = compiled
            .dff_init
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        CompiledSim {
            compiled,
            ev: Evaluator::new(compiled),
            state,
            inputs: vec![0; compiled.num_inputs()],
            steps: 0,
        }
    }

    /// Attaches persistent overrides (e.g. a stuck-at fault). The overrides
    /// stay installed until [`CompiledSim::clear_overrides`].
    pub fn attach(&mut self, overrides: &[Override]) {
        self.ev.uninstall();
        self.ev.install(self.compiled, overrides);
    }

    /// Removes all overrides.
    pub fn clear_overrides(&mut self) {
        self.ev.uninstall();
    }

    /// Overwrites the flip-flop state.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the flip-flop count.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state arity mismatch");
        for (w, &b) in self.state.iter_mut().zip(state) {
            *w = if b { u64::MAX } else { 0 };
        }
    }

    /// Current flip-flop state.
    #[must_use]
    pub fn state(&self) -> Vec<bool> {
        self.state.iter().map(|&w| w & 1 == 1).collect()
    }

    /// Clock periods simulated so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulates one clock period: samples the primary outputs, then latches
    /// every flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the input count.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.compiled.num_inputs(),
            "input arity mismatch"
        );
        for (w, &b) in self.inputs.iter_mut().zip(inputs) {
            *w = if b { u64::MAX } else { 0 };
        }
        self.ev.eval(self.compiled, &self.inputs, &self.state);
        let outputs = (0..self.compiled.num_outputs())
            .map(|k| self.ev.output(self.compiled, k) & 1 == 1)
            .collect();
        for i in 0..self.state.len() {
            self.state[i] = self.ev.next_state(self.compiled, i);
        }
        self.steps += 1;
        outputs
    }

    /// Resets flip-flops to power-up values and clears the step counter
    /// (overrides are kept, matching [`scal_netlist::Sim::reset`]).
    pub fn reset(&mut self) {
        for (w, &b) in self.state.iter_mut().zip(&self.compiled.dff_init) {
            *w = if b { u64::MAX } else { 0 };
        }
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{Circuit, Override, Sim, Site};

    fn counter2() -> Circuit {
        let mut c = Circuit::new();
        let q0 = c.dff(false);
        let q1 = c.dff(false);
        let n0 = c.not(q0);
        let t = c.xor(&[q1, q0]);
        c.connect_dff(q0, n0);
        c.connect_dff(q1, t);
        c.mark_output("q0", q0);
        c.mark_output("q1", q1);
        c
    }

    #[test]
    fn counts_like_the_graph_simulator() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let mut fast = CompiledSim::new(&cc);
        let mut slow = Sim::new(&c);
        for _ in 0..10 {
            assert_eq!(fast.step(&[]), slow.step(&[]));
        }
        assert_eq!(fast.steps(), 10);
    }

    #[test]
    fn faults_persist_and_clear() {
        let c = counter2();
        let q0 = c.dffs()[0];
        let cc = CompiledCircuit::compile(&c);
        let mut sim = CompiledSim::new(&cc);
        sim.attach(&[Override {
            site: Site::Stem(q0),
            value: false,
        }]);
        for _ in 0..4 {
            assert_eq!(sim.step(&[]), vec![false, false]);
        }
        sim.clear_overrides();
        sim.reset();
        assert_eq!(sim.steps(), 0);
        let mut slow = Sim::new(&c);
        for _ in 0..4 {
            assert_eq!(sim.step(&[]), slow.step(&[]));
        }
    }

    #[test]
    fn dff_d_branch_fault_corrupts_latched_value() {
        let c = counter2();
        let q0 = c.dffs()[0];
        let cc = CompiledCircuit::compile(&c);
        let ov = [Override {
            site: Site::Branch { node: q0, pin: 0 },
            value: true,
        }];
        let mut fast = CompiledSim::new(&cc);
        fast.attach(&ov);
        let mut slow = Sim::new(&c);
        slow.attach(ov[0]);
        for _ in 0..6 {
            assert_eq!(fast.step(&[]), slow.step(&[]));
        }
    }

    #[test]
    fn set_state_jumps() {
        let c = counter2();
        let cc = CompiledCircuit::compile(&c);
        let mut sim = CompiledSim::new(&cc);
        sim.set_state(&[true, true]);
        assert_eq!(sim.state(), vec![true, true]);
        assert_eq!(sim.step(&[]), vec![true, true]);
        assert_eq!(sim.step(&[]), vec![false, false]);
    }
}
