//! The per-thread evaluator: scratch state plus the packed evaluation loop.
//!
//! The evaluator is generic over the word width `W` ([`Word`]): one sweep
//! evaluates `64 × W` lanes through the schedule. [`Evaluator`] is the
//! scalar (`W = 1`) alias and keeps the original `u64`-based API; wide
//! instantiations are driven by the campaign hot paths through the
//! `*_w`-suffixed generic methods.

use crate::compile::{AuxInject, CompiledCircuit, FaultCone, CONE_NONE, NO_OP};
use crate::error::EngineError;
use crate::word::Word;
use scal_netlist::{GateKind, NodeId, Override, Site};

/// Mutable evaluation state for one [`CompiledCircuit`], generic over the
/// word width `W` — see [`Evaluator`] for the scalar alias.
///
/// Holds the dense slot array, a private copy of the fanin index array (so
/// branch faults are installed by *patching an index* rather than checked per
/// pin per sweep), and the dense stem-force table. One evaluator is created
/// per worker thread and reused across faults; evaluation performs no
/// allocation.
///
/// Overrides are installed with [`WideEvaluator::install`] and removed with
/// [`WideEvaluator::uninstall`]; the old linear-scan semantics are preserved:
/// the first override for a given site wins, and overrides naming sites the
/// circuit does not have (e.g. a branch pin on an input) are ignored.
#[derive(Debug)]
pub struct WideEvaluator<const W: usize> {
    /// One `64 × W`-lane word per slot.
    slots: Vec<Word<W>>,
    /// Patched copy of [`CompiledCircuit::fanins`].
    fanins: Vec<u32>,
    /// Patched copy of [`CompiledCircuit::dff_d_slots`].
    dff_d: Vec<u32>,
    /// Per slot: lane mask of forced lanes (`0` = free). Scalar installs
    /// force all lanes; the packed backends force single lanes so different
    /// faults share one word.
    force_mask: Vec<Word<W>>,
    /// Per slot: forced value word, meaningful under `force_mask`.
    force_value: Vec<Word<W>>,
    /// Installed stem forces `(slot, mask, value)` — the complete list,
    /// applied as `slot_word = (slot_word & !mask) | (value & mask)`. Full
    /// sweeps only need the [`WideEvaluator::source_stems`] subset (gate
    /// slots are re-forced by the force tables inside the op loop), but a
    /// cone pass never runs the forced slot's producing op, so it must write
    /// every stem directly.
    stems: Vec<(u32, Word<W>, Word<W>)>,
    /// The subset of [`WideEvaluator::stems`] on *source* slots (inputs,
    /// flip-flop outputs, constants) — the only ones a full sweep must
    /// re-apply at sweep start, since no op writes them.
    source_stems: Vec<(u32, Word<W>, Word<W>)>,
    /// Installed fanin patches `(flat index, original slot)` for uninstall.
    fanin_patches: Vec<(usize, u32)>,
    /// Installed D-slot patches `(dff index, original slot)` for uninstall.
    dff_patches: Vec<(usize, u32)>,
}

/// The scalar (`W = 1`) evaluator — 64 lanes per sweep, `u64` word API.
pub type Evaluator = WideEvaluator<1>;

impl<const W: usize> WideEvaluator<W> {
    /// Creates scratch state for `compiled`.
    #[must_use]
    pub fn new(compiled: &CompiledCircuit) -> Self {
        Self::with_aux(compiled, 0)
    }

    /// Creates scratch state with `extra` auxiliary slots appended past the
    /// compiled slot range — landing pads for the per-lane branch
    /// injections of [`WideEvaluator::eval_packed_w`].
    pub(crate) fn with_aux(compiled: &CompiledCircuit, extra: usize) -> Self {
        WideEvaluator {
            slots: vec![Word::ZERO; compiled.num_slots + extra],
            fanins: compiled.fanins.clone(),
            dff_d: compiled.dff_d_slots.clone(),
            force_mask: vec![Word::ZERO; compiled.num_slots],
            force_value: vec![Word::ZERO; compiled.num_slots],
            stems: Vec::new(),
            source_stems: Vec::new(),
            fanin_patches: Vec::new(),
            dff_patches: Vec::new(),
        }
    }

    /// Installs overrides (typically one stuck-at fault), panicking on
    /// misuse. Call [`WideEvaluator::uninstall`] before installing the next
    /// set.
    ///
    /// # Panics
    ///
    /// Panics if overrides are already installed.
    pub fn install(&mut self, compiled: &CompiledCircuit, overrides: &[Override]) {
        if let Err(e) = self.try_install(compiled, overrides) {
            panic!("{e}");
        }
    }

    /// Installs overrides (typically one stuck-at fault). Call
    /// [`WideEvaluator::uninstall`] before installing the next set.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::OverridesInstalled`] if overrides are already
    /// installed.
    pub fn try_install(
        &mut self,
        compiled: &CompiledCircuit,
        overrides: &[Override],
    ) -> Result<(), EngineError> {
        if !(self.stems.is_empty() && self.fanin_patches.is_empty() && self.dff_patches.is_empty())
        {
            return Err(EngineError::OverridesInstalled);
        }
        for o in overrides {
            match o.site {
                Site::Stem(node) => {
                    let slot = node.index();
                    if slot >= compiled.num_slots - 2 || !self.force_mask[slot].is_zero() {
                        continue; // unknown node, or an earlier override won
                    }
                    let word = Word::splat_bool(o.value);
                    self.add_masked_stem(compiled, slot, Word::ones(), word);
                }
                Site::Branch { node, pin } => {
                    if let Some(i) = compiled.dff_position(node) {
                        if pin == 0 && !self.dff_patches.iter().any(|&(j, _)| j == i) {
                            self.dff_patches.push((i, self.dff_d[i]));
                            self.dff_d[i] = compiled.const_slot(o.value);
                        }
                        continue;
                    }
                    let op_idx = match compiled
                        .op_of_node
                        .get(node.index())
                        .copied()
                        .filter(|&i| i != NO_OP)
                    {
                        Some(i) => i as usize,
                        None => continue,
                    };
                    let op = &compiled.ops[op_idx];
                    if pin >= op.fan_len as usize {
                        continue;
                    }
                    let flat = op.fan_start as usize + pin;
                    if self.fanin_patches.iter().any(|&(j, _)| j == flat) {
                        continue;
                    }
                    self.fanin_patches.push((flat, self.fanins[flat]));
                    self.fanins[flat] = compiled.const_slot(o.value);
                }
            }
        }
        Ok(())
    }

    /// Removes all installed overrides, restoring fault-free evaluation.
    pub fn uninstall(&mut self) {
        for (slot, _, _) in self.stems.drain(..) {
            self.force_mask[slot as usize] = Word::ZERO;
            self.force_value[slot as usize] = Word::ZERO;
        }
        self.source_stems.clear();
        for (flat, original) in self.fanin_patches.drain(..) {
            self.fanins[flat] = original;
        }
        for (i, original) in self.dff_patches.drain(..) {
            self.dff_d[i] = original;
        }
    }

    /// The shared sweep body: loads sources through the access closures,
    /// applies source stems, then runs the op schedule with the force
    /// tables. Arity is the callers' responsibility.
    #[inline]
    fn eval_impl(
        &mut self,
        compiled: &CompiledCircuit,
        input_at: impl Fn(usize) -> Word<W>,
        state_at: impl Fn(usize) -> Word<W>,
    ) {
        let slots = &mut self.slots;
        slots[compiled.zero_slot as usize] = Word::ZERO;
        slots[compiled.one_slot as usize] = Word::ones();
        for (i, &s) in compiled.input_slots.iter().enumerate() {
            slots[s as usize] = input_at(i);
        }
        for (i, &s) in compiled.dff_slots.iter().enumerate() {
            slots[s as usize] = state_at(i);
        }
        for &(s, v) in &compiled.const_slots {
            slots[s as usize] = Word::splat_bool(v);
        }
        // Stem faults on source slots (inputs, flip-flop outputs, constants);
        // gate-slot stems are re-forced by the op loop below.
        for &(s, m, w) in &self.source_stems {
            let slot = &mut slots[s as usize];
            *slot = slot.blend(w, m);
        }
        for op in &compiled.ops {
            let fan = &self.fanins[op.fan_start as usize..(op.fan_start + op.fan_len) as usize];
            let v = eval_op(slots, fan, op.kind);
            let out = op.out as usize;
            slots[out] = v.blend(self.force_value[out], self.force_mask[out]);
        }
    }

    /// Runs one wide combinational sweep: `64 × W` independent patterns per
    /// call, one [`Word`] per primary input / flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ArityMismatch`] if `inputs` or `state` is
    /// mis-sized for `compiled`.
    pub fn try_eval_w(
        &mut self,
        compiled: &CompiledCircuit,
        inputs: &[Word<W>],
        state: &[Word<W>],
    ) -> Result<(), EngineError> {
        if inputs.len() != compiled.num_inputs() {
            return Err(EngineError::ArityMismatch {
                what: "input",
                expected: compiled.num_inputs(),
                got: inputs.len(),
            });
        }
        if state.len() != compiled.num_dffs() {
            return Err(EngineError::ArityMismatch {
                what: "state",
                expected: compiled.num_dffs(),
                got: state.len(),
            });
        }
        self.eval_impl(compiled, |i| inputs[i], |i| state[i]);
        Ok(())
    }

    /// Runs one cone-restricted wide sweep: only the ops in `cone` are
    /// evaluated, with every out-of-cone value read through `golden_at` (the
    /// cached fault-free slot words for the same input batch, indexed by
    /// slot). Returns the number of cone ops actually evaluated — the
    /// readability horizon: a slot produced at cone ordinal `j` holds the
    /// faulty value iff `j < returned count` (seeds marked
    /// [`crate::compile::CONE_SEED`] are always readable).
    ///
    /// `state_seeds` injects faulty flip-flop state `(slot, word)` on top of
    /// the golden state (sequential cone stepping); pair campaigns pass `&[]`.
    /// `mask` selects the valid lanes for dirtiness checks per sub-word;
    /// `expire` is a caller-owned all-zero scratch of at least
    /// `cone.ops.len()` words, and is returned all-zero.
    ///
    /// The frontier-death exit: cone ops are sorted by (level, index), so
    /// every cone reader of an op sits at a later ordinal. Each dirty value
    /// increments a live counter until its last reading ordinal; when the
    /// counter hits zero every remaining op reads only golden-identical
    /// values, so all downstream slots — outputs and D inputs included —
    /// already hold their golden words and the sweep can stop. A wide word
    /// is dirty while *any* valid sub-word lane differs from golden.
    pub(crate) fn eval_cone_w(
        &mut self,
        compiled: &CompiledCircuit,
        cone: &FaultCone,
        golden_at: impl Fn(usize) -> Word<W>,
        state_seeds: &[(u32, Word<W>)],
        mask: Word<W>,
        expire: &mut [u64],
    ) -> u32 {
        let WideEvaluator {
            slots,
            fanins,
            force_mask,
            force_value,
            stems,
            ..
        } = self;
        slots[compiled.zero_slot as usize] = Word::ZERO;
        slots[compiled.one_slot as usize] = Word::ones();
        for &(s, w) in state_seeds {
            slots[s as usize] = w;
        }
        for &(s, m, w) in stems.iter() {
            let slot = &mut slots[s as usize];
            *slot = slot.blend(w, m);
        }
        let mut live: u64 = 0;
        for &(s, lr) in &cone.seeds {
            if lr != CONE_NONE && !((slots[s as usize] ^ golden_at(s as usize)) & mask).is_zero() {
                live += 1;
                expire[lr as usize] += 1;
            }
        }
        // Fault-rooted ops (patched branch pins) are dirty a priori: keep
        // the loop alive at least until each has run, whatever the seeds do.
        for &j in &cone.roots {
            live += 1;
            expire[j as usize] += 1;
        }
        let mut evaluated = 0u32;
        if live > 0 {
            for &s in &cone.support {
                slots[s as usize] = golden_at(s as usize);
            }
        }
        for (j, &op_idx) in cone.ops.iter().enumerate() {
            if live == 0 {
                break;
            }
            let op = &compiled.ops[op_idx as usize];
            let fan = &fanins[op.fan_start as usize..(op.fan_start + op.fan_len) as usize];
            let v = eval_op(slots, fan, op.kind);
            let out = op.out as usize;
            let w = v.blend(force_value[out], force_mask[out]);
            slots[out] = w;
            evaluated += 1;
            let lr = cone.op_last_read[j];
            if lr != CONE_NONE && !((w ^ golden_at(out)) & mask).is_zero() {
                live += 1;
                expire[lr as usize] += 1;
            }
            live -= expire[j];
            expire[j] = 0;
        }
        evaluated
    }

    /// Installs a masked stem force: the lanes in `mask` read `value` on
    /// `slot` every sweep — the packed backends' per-lane generalization of
    /// the all-lane stem force installed by [`WideEvaluator::try_install`].
    /// Removed by [`WideEvaluator::uninstall`].
    pub(crate) fn add_masked_stem(
        &mut self,
        compiled: &CompiledCircuit,
        slot: usize,
        mask: Word<W>,
        value: Word<W>,
    ) {
        self.force_mask[slot] |= mask;
        self.force_value[slot] = self.force_value[slot].blend(value, mask);
        self.stems.push((slot as u32, mask, value & mask));
        // Gate slots are re-forced by the op loop's force tables; only
        // source slots need the sweep-start pass.
        if compiled.op_of_node.get(slot).copied().unwrap_or(NO_OP) == NO_OP {
            self.source_stems.push((slot as u32, mask, value & mask));
        }
    }

    /// Redirects flat fanin index `flat` to read `slot` — auxiliary landing
    /// pads for per-lane branch injections. Restored by
    /// [`WideEvaluator::uninstall`].
    pub(crate) fn patch_fanin(&mut self, flat: usize, slot: u32) {
        self.fanin_patches.push((flat, self.fanins[flat]));
        self.fanins[flat] = slot;
    }

    /// One packed sweep for the fault-per-lane backends: like
    /// [`WideEvaluator::try_eval_w`] but with mid-sweep auxiliary
    /// injections. Each [`AuxInject`] materializes, immediately before its
    /// consuming op runs, an auxiliary slot holding the faulted lanes' stuck
    /// value blended over the original source word — per-lane branch faults
    /// without disturbing the other lanes sharing the fanin index. `aux`
    /// must be sorted by consuming-op schedule position (as
    /// [`crate::compile::LanePlan`] builds it).
    pub(crate) fn eval_packed_w(
        &mut self,
        compiled: &CompiledCircuit,
        inputs: &[Word<W>],
        state: &[Word<W>],
        aux: &[AuxInject<W>],
    ) {
        debug_assert_eq!(inputs.len(), compiled.num_inputs());
        debug_assert_eq!(state.len(), compiled.num_dffs());
        let slots = &mut self.slots;
        slots[compiled.zero_slot as usize] = Word::ZERO;
        slots[compiled.one_slot as usize] = Word::ones();
        for (i, &s) in compiled.input_slots.iter().enumerate() {
            slots[s as usize] = inputs[i];
        }
        for (i, &s) in compiled.dff_slots.iter().enumerate() {
            slots[s as usize] = state[i];
        }
        for &(s, v) in &compiled.const_slots {
            slots[s as usize] = Word::splat_bool(v);
        }
        for &(s, m, w) in &self.source_stems {
            let slot = &mut slots[s as usize];
            *slot = slot.blend(w, m);
        }
        let mut cursor = 0usize;
        for (j, op) in compiled.ops.iter().enumerate() {
            while let Some(a) = aux.get(cursor).filter(|a| a.op as usize == j) {
                slots[a.slot as usize] = slots[a.orig as usize].blend(a.value, a.mask);
                cursor += 1;
            }
            let fan = &self.fanins[op.fan_start as usize..(op.fan_start + op.fan_len) as usize];
            let v = eval_op(slots, fan, op.kind);
            let out = op.out as usize;
            slots[out] = v.blend(self.force_value[out], self.force_mask[out]);
        }
        debug_assert_eq!(cursor, aux.len(), "aux injections must all be consumed");
    }

    /// The full wide slot array after the last sweep (golden-state caching).
    pub(crate) fn slots_w(&self) -> &[Word<W>] {
        &self.slots
    }

    /// Wide word of primary output `k` after the last sweep.
    #[must_use]
    pub fn output_w(&self, compiled: &CompiledCircuit, k: usize) -> Word<W> {
        self.slots[compiled.output_slots[k] as usize]
    }

    /// Wide next-state word of flip-flop `i` (its possibly-faulted D value)
    /// after the last sweep.
    #[must_use]
    pub fn next_state_w(&self, compiled: &CompiledCircuit, i: usize) -> Word<W> {
        let _ = compiled;
        self.slots[self.dff_d[i] as usize]
    }
}

/// The scalar-width API: `u64` words, one 64-lane sub-word per slot. These
/// are the historical entry points; everything below delegates to the
/// generic wide implementations with `W = 1`.
impl Evaluator {
    /// Runs one combinational sweep, panicking on arity mismatch.
    ///
    /// # Panics
    ///
    /// Panics if [`Evaluator::try_eval`] errors.
    pub fn eval(&mut self, compiled: &CompiledCircuit, inputs: &[u64], state: &[u64]) {
        if let Err(e) = self.try_eval(compiled, inputs, state) {
            panic!("{e}");
        }
    }

    /// Runs one combinational sweep: 64 independent patterns per call.
    ///
    /// `inputs` carries one word per primary input, `state` one word per
    /// flip-flop (empty for combinational circuits). Results are read back
    /// with [`Evaluator::output`], [`Evaluator::next_state`], or
    /// [`Evaluator::slot`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ArityMismatch`] if `inputs` or `state` is
    /// mis-sized for `compiled`.
    pub fn try_eval(
        &mut self,
        compiled: &CompiledCircuit,
        inputs: &[u64],
        state: &[u64],
    ) -> Result<(), EngineError> {
        if inputs.len() != compiled.num_inputs() {
            return Err(EngineError::ArityMismatch {
                what: "input",
                expected: compiled.num_inputs(),
                got: inputs.len(),
            });
        }
        if state.len() != compiled.num_dffs() {
            return Err(EngineError::ArityMismatch {
                what: "state",
                expected: compiled.num_dffs(),
                got: state.len(),
            });
        }
        self.eval_impl(
            compiled,
            |i| Word::from_u64(inputs[i]),
            |i| Word::from_u64(state[i]),
        );
        Ok(())
    }

    /// Scalar cone-restricted sweep over a `&[u64]` golden slot array — see
    /// [`WideEvaluator::eval_cone_w`] for the semantics.
    pub(crate) fn eval_cone(
        &mut self,
        compiled: &CompiledCircuit,
        cone: &FaultCone,
        golden: &[u64],
        state_seeds: &[(u32, u64)],
        mask: u64,
        expire: &mut [u64],
    ) -> u32 {
        // Seed lists are tiny (affected flip-flops only); the conversion
        // stays outside the op loop.
        let seeds: Vec<(u32, Word<1>)> = state_seeds
            .iter()
            .map(|&(s, w)| (s, Word::from_u64(w)))
            .collect();
        self.eval_cone_w(
            compiled,
            cone,
            |s| Word::from_u64(golden[s]),
            &seeds,
            Word::from_u64(mask),
            expire,
        )
    }

    /// Word of primary output `k` after the last [`Evaluator::eval`].
    #[must_use]
    pub fn output(&self, compiled: &CompiledCircuit, k: usize) -> u64 {
        self.output_w(compiled, k).first()
    }

    /// Next-state word of flip-flop `i` (its possibly-faulted D value) after
    /// the last [`Evaluator::eval`].
    #[must_use]
    pub fn next_state(&self, compiled: &CompiledCircuit, i: usize) -> u64 {
        self.next_state_w(compiled, i).first()
    }

    /// Value word of an arbitrary node after the last [`Evaluator::eval`].
    #[must_use]
    pub fn slot(&self, node: NodeId) -> u64 {
        self.slots[node.index()].first()
    }

    /// Current word of a raw slot index (node slots only; callers must stay
    /// below the constant slots).
    pub(crate) fn raw_slot(&self, idx: usize) -> u64 {
        self.slots[idx].first()
    }
}

/// One packed gate evaluation over the given fanin slots.
#[inline]
fn eval_op<const W: usize>(slots: &[Word<W>], fan: &[u32], kind: GateKind) -> Word<W> {
    match kind {
        GateKind::Buf => slots[fan[0] as usize],
        GateKind::Not => !slots[fan[0] as usize],
        GateKind::And => fan.iter().fold(Word::ones(), |a, &f| a & slots[f as usize]),
        GateKind::Nand => !fan.iter().fold(Word::ones(), |a, &f| a & slots[f as usize]),
        GateKind::Or => fan.iter().fold(Word::ZERO, |a, &f| a | slots[f as usize]),
        GateKind::Nor => !fan.iter().fold(Word::ZERO, |a, &f| a | slots[f as usize]),
        GateKind::Xor => fan.iter().fold(Word::ZERO, |a, &f| a ^ slots[f as usize]),
        GateKind::Xnor => !fan.iter().fold(Word::ZERO, |a, &f| a ^ slots[f as usize]),
        GateKind::Minority | GateKind::Majority => {
            threshold64(slots, fan, kind == GateKind::Majority)
        }
        // GateKind is #[non_exhaustive]; compile() only emits ops for kinds
        // that exist today.
        _ => unreachable!("unknown gate kind in compiled schedule"),
    }
}

/// Per-lane majority/minority over `fan` slots, sub-word by sub-word.
fn threshold64<const W: usize>(slots: &[Word<W>], fan: &[u32], majority: bool) -> Word<W> {
    let n = fan.len();
    Word::from_fn(|s| {
        let mut out = 0u64;
        for lane in 0..64 {
            let ones = fan
                .iter()
                .filter(|&&f| (slots[f as usize].sub(s) >> lane) & 1 == 1)
                .count();
            let v = if majority { ones * 2 > n } else { ones * 2 < n };
            if v {
                out |= 1 << lane;
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{Circuit, GateKind};

    fn full_adder() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let ci = c.input("ci");
        let s = c.xor(&[a, b, ci]);
        let maj = c.gate(GateKind::Majority, &[a, b, ci]);
        c.mark_output("s", s);
        c.mark_output("co", maj);
        c
    }

    /// Packs minterms `0..n_lanes` into per-input words.
    fn minterm_words(n_inputs: usize, n_lanes: usize) -> Vec<u64> {
        (0..n_inputs)
            .map(|i| {
                let mut w = 0u64;
                for lane in 0..n_lanes {
                    if (lane >> i) & 1 == 1 {
                        w |= 1 << lane;
                    }
                }
                w
            })
            .collect()
    }

    #[test]
    fn matches_graph_evaluator_fault_free() {
        let c = full_adder();
        let cc = CompiledCircuit::compile(&c);
        let mut ev = Evaluator::new(&cc);
        let words = minterm_words(3, 8);
        ev.eval(&cc, &words, &[]);
        let reference = c.eval64(&words);
        for (k, &r) in reference.iter().enumerate() {
            assert_eq!(ev.output(&cc, k) & 0xFF, r & 0xFF);
        }
    }

    /// A wide evaluator with every sub-word carrying the same patterns must
    /// reproduce the scalar result in every sub-word, fault-free and under
    /// installed overrides.
    #[test]
    fn wide_sub_words_match_scalar_evaluator() {
        let c = full_adder();
        let cc = CompiledCircuit::compile(&c);
        let words = minterm_words(3, 8);
        let mut scalar = Evaluator::new(&cc);
        let mut wide4 = WideEvaluator::<4>::new(&cc);
        let mut wide8 = WideEvaluator::<8>::new(&cc);
        let wide_in4: Vec<Word<4>> = words.iter().map(|&w| Word::splat(w)).collect();
        let wide_in8: Vec<Word<8>> = words.iter().map(|&w| Word::splat(w)).collect();
        let ov = [Override {
            site: Site::Stem(c.inputs()[1]),
            value: true,
        }];
        for install in [false, true] {
            if install {
                scalar.install(&cc, &ov);
                wide4.install(&cc, &ov);
                wide8.install(&cc, &ov);
            }
            scalar.eval(&cc, &words, &[]);
            wide4.try_eval_w(&cc, &wide_in4, &[]).unwrap();
            wide8.try_eval_w(&cc, &wide_in8, &[]).unwrap();
            for k in 0..cc.num_outputs() {
                let want = scalar.output(&cc, k);
                let got4 = wide4.output_w(&cc, k);
                let got8 = wide8.output_w(&cc, k);
                for s in 0..4 {
                    assert_eq!(got4.sub(s), want, "W=4 sub {s} output {k}");
                }
                for s in 0..8 {
                    assert_eq!(got8.sub(s), want, "W=8 sub {s} output {k}");
                }
            }
        }
        scalar.uninstall();
        wide4.uninstall();
        wide8.uninstall();
    }

    #[test]
    fn matches_graph_evaluator_under_every_single_override() {
        let c = full_adder();
        let cc = CompiledCircuit::compile(&c);
        let mut ev = Evaluator::new(&cc);
        let words = minterm_words(3, 8);
        let mut sites = Vec::new();
        for id in c.node_ids() {
            sites.push(Site::Stem(id));
            for pin in 0..c.fanins(id).len() {
                sites.push(Site::Branch { node: id, pin });
            }
        }
        for site in sites {
            for value in [false, true] {
                let ov = [Override { site, value }];
                let reference = c.eval_nodes64(&words, &[], &ov);
                ev.install(&cc, &ov);
                ev.eval(&cc, &words, &[]);
                for id in c.node_ids() {
                    assert_eq!(
                        ev.slot(id) & 0xFF,
                        reference[id.index()] & 0xFF,
                        "site {site:?} value {value} node {id}"
                    );
                }
                ev.uninstall();
            }
        }
    }

    #[test]
    fn install_first_override_wins() {
        let c = full_adder();
        let cc = CompiledCircuit::compile(&c);
        let mut ev = Evaluator::new(&cc);
        let s = c.outputs()[0].node;
        let ovs = [
            Override {
                site: Site::Stem(s),
                value: true,
            },
            Override {
                site: Site::Stem(s),
                value: false,
            },
        ];
        ev.install(&cc, &ovs);
        ev.eval(&cc, &[0, 0, 0], &[]);
        assert_eq!(ev.output(&cc, 0), u64::MAX);
        ev.uninstall();
        ev.eval(&cc, &[0, 0, 0], &[]);
        assert_eq!(ev.output(&cc, 0), 0);
    }

    #[test]
    fn try_paths_report_misuse_as_errors() {
        let c = full_adder();
        let cc = CompiledCircuit::compile(&c);
        let mut ev = Evaluator::new(&cc);
        assert_eq!(
            ev.try_eval(&cc, &[0, 0], &[]),
            Err(EngineError::ArityMismatch {
                what: "input",
                expected: 3,
                got: 2,
            })
        );
        assert_eq!(
            ev.try_eval(&cc, &[0, 0, 0], &[1]),
            Err(EngineError::ArityMismatch {
                what: "state",
                expected: 0,
                got: 1,
            })
        );
        let ov = [Override {
            site: Site::Stem(c.inputs()[0]),
            value: true,
        }];
        ev.try_install(&cc, &ov).expect("first install");
        assert_eq!(
            ev.try_install(&cc, &ov),
            Err(EngineError::OverridesInstalled)
        );
        ev.uninstall();
        ev.try_install(&cc, &ov).expect("reinstall after uninstall");
        ev.uninstall();
    }

    #[test]
    fn overrides_on_missing_sites_are_ignored() {
        let c = full_adder();
        let cc = CompiledCircuit::compile(&c);
        let mut ev = Evaluator::new(&cc);
        let a = c.inputs()[0];
        // Inputs have no fanin pins; the scalar path ignored this too.
        ev.install(
            &cc,
            &[Override {
                site: Site::Branch { node: a, pin: 0 },
                value: true,
            }],
        );
        ev.eval(&cc, &[0, 0, 0], &[]);
        assert_eq!(ev.output(&cc, 0), 0);
        ev.uninstall();
    }
}
