//! The packed alternating-pair fault campaign.
//!
//! One evaluation sweep carries 64 alternating pairs: period-1 words encode
//! 64 canonical minterms, the period-2 words are their bitwise complements,
//! and pair classification is computed with word-wide XOR/AND masks —
//! per-output `nonalt = !(f1 ^ f2)` marks non-alternating lanes,
//! `(f1 ^ f2) & (f1 ^ g1)` marks wrong-but-alternating lanes, and the
//! multiple-output code of the paper's Definition 3.3 (one non-alternating
//! output detects the word even if another alternates incorrectly) falls out
//! of OR-ing those masks across outputs before extracting lanes.
//!
//! # Observability and cancellation
//!
//! [`try_run_pair_campaign`] drives a [`CampaignObserver`] through the whole
//! run: phase spans for compile / golden / fault-sim / merge, live
//! [`CampaignEvent::Progress`] ticks from whichever worker finishes a fault,
//! and per-fault `FaultStart` / `BatchDone` / `FaultDropped` / `FaultFinish`
//! events. The per-fault events are *buffered* by the worker that simulated
//! the fault and replayed by the coordinator in fault order during the merge
//! phase, so a trace is deterministic for a fixed config regardless of the
//! worker fan-out (only the live `Progress` ticks are emission-order
//! dependent). A [`CancelToken`] is checked at every 64-pair batch boundary;
//! on cancellation the campaign returns the longest contiguous fault-ordered
//! prefix of completed reports, bit-identical to the same prefix of an
//! uncancelled run.

use crate::compile::{CompiledCircuit, FaultCone, CONE_SEED};
use crate::error::EngineError;
use crate::eval::Evaluator;
use crate::pool::effective_threads;
use scal_netlist::{Circuit, Override};
use scal_obs::{CampaignEvent, CampaignObserver, CancelToken, NullObserver, Phase};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Hard ceiling on explicitly requested worker threads — far above any
/// sensible fan-out; requests beyond it are configuration mistakes.
pub const MAX_THREADS: usize = 1024;

/// Default budget for the golden slot cache in cone mode: 256 MiB. Beyond it
/// the campaign falls back to streaming golden re-evaluation per batch.
const DEFAULT_GOLDEN_CACHE_BYTES: usize = 256 << 20;

/// How faulty sweeps are evaluated.
///
/// Both modes produce bit-identical reports, statistics (except timing),
/// coverage maps, and fault-ordered trace prefixes; `Full` is kept as the
/// differential oracle for the cone path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalMode {
    /// Re-evaluate the whole levelized schedule for every fault and batch.
    Full,
    /// Evaluate only each fault's transitive fanout cone, seeded from cached
    /// golden slot values, with a frontier-death early exit when the faulty
    /// values converge back to golden mid-schedule.
    #[default]
    Cone,
}

impl EvalMode {
    /// Stable lowercase name, as emitted in traces and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::Full => "full",
            EvalMode::Cone => "cone",
        }
    }
}

impl std::fmt::Display for EvalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EvalMode {
    type Err = EngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(EvalMode::Full),
            "cone" => Ok(EvalMode::Cone),
            other => Err(EngineError::InvalidConfig {
                reason: format!("eval mode must be \"full\" or \"cone\", got {other:?}"),
            }),
        }
    }
}

/// Knobs for [`run_pair_campaign`].
///
/// Construct directly (the fields are public and `Default` is valid) or via
/// the validating [`EngineConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker-thread count; `0` = auto (machine parallelism, clamped to the
    /// workload).
    pub threads: usize,
    /// When `true`, a fault's sweep stops at the end of the first 64-pair
    /// batch in which it was detected (classic fault dropping). The report
    /// still answers *tested?* correctly and `detected_pairs` /
    /// `violation_pairs` are exact up to that batch, but later pairs are
    /// never simulated, so the full accounting (and `observable` for
    /// faults only visible later) may be truncated. The default `false`
    /// keeps exact parity with the scalar reference implementation.
    pub drop_after_detection: bool,
    /// How faulty sweeps are evaluated; defaults to [`EvalMode::Cone`].
    pub eval_mode: EvalMode,
    /// Byte budget for the cone-mode golden slot cache
    /// (`num_slots × batches × 2 × 8` bytes when it fits); `0` = the 256 MiB
    /// default. When the cache would exceed the budget, cone workers stream
    /// golden re-evaluations per batch instead — still bit-identical, but
    /// slower than [`EvalMode::Full`]. Ignored in full mode.
    pub golden_cache_bytes: usize,
}

impl EngineConfig {
    /// A validating builder for campaign configuration.
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Builder for [`EngineConfig`] that validates each knob at
/// [`EngineConfigBuilder::build`] time instead of letting a bad value panic
/// deep inside a campaign.
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    threads: usize,
    drop_after_detection: bool,
    eval_mode: EvalMode,
    golden_cache_bytes: usize,
}

impl EngineConfigBuilder {
    /// Worker-thread count; `0` = auto.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables classic fault dropping (see
    /// [`EngineConfig::drop_after_detection`]).
    #[must_use]
    pub fn drop_after_detection(mut self, on: bool) -> Self {
        self.drop_after_detection = on;
        self
    }

    /// Selects the faulty-sweep evaluation strategy (see [`EvalMode`]).
    #[must_use]
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Byte budget for the cone-mode golden slot cache; `0` = default (see
    /// [`EngineConfig::golden_cache_bytes`]).
    #[must_use]
    pub fn golden_cache_bytes(mut self, bytes: usize) -> Self {
        self.golden_cache_bytes = bytes;
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] if `threads` exceeds
    /// [`MAX_THREADS`].
    pub fn build(self) -> Result<EngineConfig, EngineError> {
        if self.threads > MAX_THREADS {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "threads must be 0 (auto) or at most {MAX_THREADS}, got {}",
                    self.threads
                ),
            });
        }
        Ok(EngineConfig {
            threads: self.threads,
            drop_after_detection: self.drop_after_detection,
            eval_mode: self.eval_mode,
            golden_cache_bytes: self.golden_cache_bytes,
        })
    }
}

/// Per-fault result of [`run_pair_campaign`], in the engine's vocabulary
/// (pair minterms only — `scal-faults` zips these back with its `Fault`
/// bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairReport {
    /// Canonical first-period minterms `X` (with `X < X̄` numerically) at
    /// which the fault produced a detectable non-code word, ascending.
    pub detected_pairs: Vec<u32>,
    /// Canonical minterms at which the fault produced an undetected wrong
    /// code word, ascending.
    pub violation_pairs: Vec<u32>,
    /// `true` iff the fault changed some output at some simulated pair.
    pub observable: bool,
    /// `true` iff fault dropping cut this fault's sweep short.
    pub dropped: bool,
}

/// Aggregate counters and per-phase wall times for one campaign run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Faults whose reports were returned (equals the requested fault count
    /// unless the run was cancelled).
    pub faults: usize,
    /// Faults whose sweep was cut short by
    /// [`EngineConfig::drop_after_detection`].
    pub faults_dropped: usize,
    /// Alternating pairs evaluated across all returned faults (golden
    /// excluded). Dropped faults contribute every pair of every batch they
    /// actually swept, including the batch that triggered the drop, so this
    /// counter and [`EngineStats::words_evaluated`] stay consistent.
    pub pairs_evaluated: u64,
    /// 64-lane evaluation sweeps executed, golden included (each sweep
    /// evaluates one word of up to 64 patterns through the whole schedule).
    pub words_evaluated: u64,
    /// Wall time spent compiling the circuit.
    pub compile_time: Duration,
    /// Wall time spent on the fault-free sweep and alternation check.
    pub golden_time: Duration,
    /// Wall time spent simulating faults (all workers, wall clock).
    pub fault_sim_time: Duration,
    /// Time spent *inside* per-fault evaluation sweeps, summed across
    /// workers — the eval-phase denominator for throughput. Unlike
    /// [`EngineStats::fault_sim_time`] it excludes worker spawn/join and
    /// observer overhead, and on a multi-threaded run it sums worker time,
    /// so throughput derived from it compares backends per-core,
    /// apples-to-apples.
    pub eval_time: Duration,
}

impl EngineStats {
    /// Test patterns per second of fault evaluation (each pair is two
    /// patterns), measured over [`EngineStats::eval_time`] — the profiler's
    /// eval-phase time, not wall time that would fold in compile, golden and
    /// merge overhead. Falls back to [`EngineStats::fault_sim_time`] when no
    /// eval time was recorded. Returns `0.0` — never `NaN` or `inf` — when
    /// no time was measured or no pairs were evaluated.
    #[must_use]
    pub fn patterns_per_sec(&self) -> f64 {
        let secs = if self.eval_time > Duration::ZERO {
            self.eval_time.as_secs_f64()
        } else {
            self.fault_sim_time.as_secs_f64()
        };
        let patterns = (self.pairs_evaluated * 2) as f64;
        if secs > 0.0 && patterns > 0.0 {
            patterns / secs
        } else {
            0.0
        }
    }

    /// Test patterns per second over the fault-sim phase *wall clock* —
    /// scales with the worker fan-out, so it measures parallel speedup
    /// rather than per-core backend efficiency. Same zero-guard as
    /// [`EngineStats::patterns_per_sec`].
    #[must_use]
    pub fn patterns_per_sec_wall(&self) -> f64 {
        let secs = self.fault_sim_time.as_secs_f64();
        let patterns = (self.pairs_evaluated * 2) as f64;
        if secs > 0.0 && patterns > 0.0 {
            patterns / secs
        } else {
            0.0
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} faults ({} dropped), {} pairs, {} words | compile {:?}, golden {:?}, sim {:?}, eval {:?} | {:.3e} patterns/s",
            self.faults,
            self.faults_dropped,
            self.pairs_evaluated,
            self.words_evaluated,
            self.compile_time,
            self.golden_time,
            self.fault_sim_time,
            self.eval_time,
            self.patterns_per_sec(),
        )
    }
}

/// Result of [`try_run_pair_campaign`]: fault-ordered reports plus run
/// statistics and the cancellation outcome.
#[derive(Debug, Clone)]
pub struct PairCampaign {
    /// Per-fault reports; a contiguous prefix of the requested fault list
    /// when [`PairCampaign::cancelled`], otherwise one per fault.
    pub reports: Vec<PairReport>,
    /// Aggregate counters and wall times over the returned reports.
    pub stats: EngineStats,
    /// `true` iff a [`CancelToken`] stopped the run before every fault
    /// completed. The reports are then the longest contiguous fault-ordered
    /// prefix, bit-identical to the same prefix of an uncancelled run.
    pub cancelled: bool,
}

/// The precomputed pair sweep: input words for every 64-pair batch plus the
/// golden (fault-free) output words.
struct Sweep {
    n_inputs: usize,
    n_outputs: usize,
    /// Batch base minterms, ascending.
    bases: Vec<u32>,
    /// Valid-lane masks per batch.
    masks: Vec<u64>,
    /// Period-1 input words, `[batch][input]` flattened.
    words1: Vec<u64>,
    /// Period-2 input words (`!words1`), same layout.
    words2: Vec<u64>,
    /// Golden output words, `[batch][output][period]` flattened.
    golden: Vec<u64>,
    /// Slot count of the compiled circuit (slot-cache row width).
    num_slots: usize,
    /// Every golden slot word, `[batch][period][slot]` flattened — the seed
    /// store for cone-restricted evaluation. Empty in full mode or when the
    /// cache would blow the configured byte budget (cone workers then stream
    /// golden re-evaluations per batch).
    slot_cache: Vec<u64>,
}

impl Sweep {
    fn try_build(
        compiled: &CompiledCircuit,
        ev: &mut Evaluator,
        cache_bytes: Option<usize>,
    ) -> Result<(Self, u64), EngineError> {
        let n = compiled.num_inputs();
        let n_out = compiled.num_outputs();
        let total_pairs = 1u32 << (n - 1);
        let batches = (total_pairs as usize).div_ceil(64);
        let cache = cache_bytes.is_some_and(|cap| batches * 2 * compiled.num_slots * 8 <= cap);
        let mut sweep = Sweep {
            n_inputs: n,
            n_outputs: n_out,
            bases: Vec::with_capacity(batches),
            masks: Vec::with_capacity(batches),
            words1: Vec::with_capacity(batches * n),
            words2: Vec::with_capacity(batches * n),
            golden: Vec::with_capacity(batches * n_out * 2),
            num_slots: compiled.num_slots,
            slot_cache: Vec::with_capacity(if cache {
                batches * 2 * compiled.num_slots
            } else {
                0
            }),
        };
        let mut base = 0u32;
        while base < total_pairs {
            let lanes = (total_pairs - base).min(64);
            sweep.bases.push(base);
            sweep.masks.push(lane_mask(lanes));
            for i in 0..n {
                let mut w = 0u64;
                for lane in 0..lanes {
                    if ((base + lane) >> i) & 1 == 1 {
                        w |= 1 << lane;
                    }
                }
                sweep.words1.push(w);
                sweep.words2.push(!w);
            }
            base += lanes;
        }
        // Golden responses and the alternation sanity check.
        let mut words = 0u64;
        for b in 0..sweep.bases.len() {
            let mask = sweep.masks[b];
            ev.eval(compiled, sweep.batch_words1(b), &[]);
            words += 1;
            if cache {
                sweep.slot_cache.extend_from_slice(ev.slots());
            }
            for k in 0..n_out {
                sweep.golden.push(ev.output(compiled, k));
            }
            ev.eval(compiled, sweep.batch_words2(b), &[]);
            words += 1;
            if cache {
                sweep.slot_cache.extend_from_slice(ev.slots());
            }
            for k in 0..n_out {
                sweep.golden.push(ev.output(compiled, k));
            }
            for k in 0..n_out {
                let g1 = sweep.golden[b * n_out * 2 + k];
                let g2 = sweep.golden[b * n_out * 2 + n_out + k];
                let stuck = !(g1 ^ g2) & mask;
                if stuck != 0 {
                    return Err(EngineError::NotAlternating {
                        output: k,
                        pair: sweep.bases[b] + stuck.trailing_zeros(),
                    });
                }
            }
        }
        Ok((sweep, words))
    }

    fn batch_words1(&self, b: usize) -> &[u64] {
        &self.words1[b * self.n_inputs..(b + 1) * self.n_inputs]
    }

    fn batch_words2(&self, b: usize) -> &[u64] {
        &self.words2[b * self.n_inputs..(b + 1) * self.n_inputs]
    }

    fn batch_golden(&self, b: usize, period: usize, k: usize) -> u64 {
        self.golden[b * self.n_outputs * 2 + period * self.n_outputs + k]
    }

    fn has_slot_cache(&self) -> bool {
        !self.slot_cache.is_empty()
    }

    /// Cached golden slot words for one batch period.
    fn batch_slots(&self, b: usize, period: usize) -> &[u64] {
        let start = (b * 2 + period) * self.num_slots;
        &self.slot_cache[start..start + self.num_slots]
    }
}

fn lane_mask(lanes: u32) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Per-worker reusable output buffers.
struct Scratch {
    out1: Vec<u64>,
    out2: Vec<u64>,
}

impl Scratch {
    fn new(n_outputs: usize) -> Self {
        Scratch {
            out1: vec![0; n_outputs],
            out2: vec![0; n_outputs],
        }
    }
}

/// Extra per-worker state for cone-restricted evaluation.
struct ConeWorker {
    /// Liveness-expiry scratch for [`Evaluator::eval_cone`], sized for the
    /// whole schedule (every cone is a subset); kept all-zero between calls.
    expire: Vec<u64>,
    /// Streaming golden evaluator, present only when the slot cache did not
    /// fit its byte budget: re-runs the fault-free sweep per batch so cone
    /// seeds still have golden words to read.
    stream: Option<Evaluator>,
}

/// Everything one worker thread owns across faults.
struct WorkerState {
    ev: Evaluator,
    scratch: Scratch,
    cone: Option<ConeWorker>,
}

impl WorkerState {
    fn new(compiled: &CompiledCircuit, sweep: &Sweep, config: &EngineConfig) -> Self {
        WorkerState::with_evaluator(Evaluator::new(compiled), compiled, sweep, config)
    }

    fn with_evaluator(
        ev: Evaluator,
        compiled: &CompiledCircuit,
        sweep: &Sweep,
        config: &EngineConfig,
    ) -> Self {
        let cone = (config.eval_mode == EvalMode::Cone).then(|| ConeWorker {
            expire: vec![0; compiled.num_ops()],
            stream: (!sweep.has_slot_cache()).then(|| Evaluator::new(compiled)),
        });
        WorkerState {
            ev,
            scratch: Scratch::new(sweep.n_outputs),
            cone,
        }
    }
}

/// Everything one fault simulation produced: the report, its work counters,
/// and (when tracing) the per-fault events buffered for the deterministic
/// merge replay.
struct SimOutcome {
    report: PairReport,
    pairs: u64,
    words: u64,
    /// Wall time this worker spent inside the fault's sweep.
    eval_micros: u64,
    events: Vec<CampaignEvent>,
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Tracks the minimum schedule level at which a cone frontier died across a
/// fault's batches (for the `ConeStats` event).
fn note_death(died_min: &mut Option<u32>, cone: &FaultCone, evaluated: u32) {
    if (evaluated as usize) < cone.ops.len() {
        let lvl = cone.levels[evaluated as usize];
        *died_min = Some(died_min.map_or(lvl, |d| d.min(lvl)));
    }
}

/// Simulates one fault against the whole pair sweep. Returns `None` if the
/// token cancelled the sweep at a batch boundary (the fault's partial work is
/// discarded); the evaluator is left clean either way.
#[allow(clippy::too_many_arguments)]
fn sim_fault(
    compiled: &CompiledCircuit,
    sweep: &Sweep,
    config: &EngineConfig,
    ws: &mut WorkerState,
    fault: Override,
    index: usize,
    worker: usize,
    record: bool,
    cancel: Option<&CancelToken>,
) -> Option<SimOutcome> {
    let sweep_t = Instant::now();
    let mut detected = Vec::new();
    let mut violations = Vec::new();
    let mut observable = false;
    let mut dropped = false;
    let mut pairs = 0u64;
    let mut words = 0u64;
    let mut events = Vec::new();
    if record {
        events.push(CampaignEvent::FaultStart {
            fault: index,
            worker,
        });
    }
    let WorkerState { ev, scratch, cone } = ws;
    let fault_cone = cone
        .as_ref()
        .map(|_| compiled.cone_for(std::slice::from_ref(&fault)));
    let mut ops_evaluated = 0u64;
    let mut died_min: Option<u32> = None;
    ev.install(compiled, std::slice::from_ref(&fault));
    for b in 0..sweep.bases.len() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            ev.uninstall();
            return None;
        }
        let mask = sweep.masks[b];
        let mut det = 0u64;
        let mut wrong = 0u64;
        let mut diff = 0u64;
        if let (Some(fc), Some(cw)) = (&fault_cone, cone.as_mut()) {
            // Cone path: evaluate only the fault's fanout cone, seeded from
            // golden slot words, and classify only the reachable outputs —
            // every other output provably equals golden, contributing
            // nothing to det/wrong/diff on the masked lanes.
            let g1: &[u64] = if sweep.has_slot_cache() {
                sweep.batch_slots(b, 0)
            } else {
                let stream = cw.stream.as_mut().expect("streaming golden evaluator");
                stream.eval(compiled, sweep.batch_words1(b), &[]);
                stream.slots()
            };
            let e1 = ev.eval_cone(compiled, fc, g1, &[], mask, &mut cw.expire);
            for &(k, ord) in &fc.outputs {
                let k = k as usize;
                scratch.out1[k] = if ord == CONE_SEED || ord < e1 {
                    ev.output(compiled, k)
                } else {
                    sweep.batch_golden(b, 0, k)
                };
            }
            let g2: &[u64] = if sweep.has_slot_cache() {
                sweep.batch_slots(b, 1)
            } else {
                let stream = cw.stream.as_mut().expect("streaming golden evaluator");
                stream.eval(compiled, sweep.batch_words2(b), &[]);
                stream.slots()
            };
            let e2 = ev.eval_cone(compiled, fc, g2, &[], mask, &mut cw.expire);
            ops_evaluated += u64::from(e1) + u64::from(e2);
            note_death(&mut died_min, fc, e1);
            note_death(&mut died_min, fc, e2);
            for &(k, ord) in &fc.outputs {
                let k = k as usize;
                let f1 = scratch.out1[k];
                let f2 = if ord == CONE_SEED || ord < e2 {
                    ev.output(compiled, k)
                } else {
                    sweep.batch_golden(b, 1, k)
                };
                let gg1 = sweep.batch_golden(b, 0, k);
                let gg2 = sweep.batch_golden(b, 1, k);
                let alt = f1 ^ f2;
                det |= !alt;
                wrong |= alt & (f1 ^ gg1);
                diff |= (f1 ^ gg1) | (f2 ^ gg2);
            }
        } else {
            ev.eval(compiled, sweep.batch_words1(b), &[]);
            for k in 0..sweep.n_outputs {
                scratch.out1[k] = ev.output(compiled, k);
            }
            ev.eval(compiled, sweep.batch_words2(b), &[]);
            for k in 0..sweep.n_outputs {
                scratch.out2[k] = ev.output(compiled, k);
            }
            for k in 0..sweep.n_outputs {
                let f1 = scratch.out1[k];
                let f2 = scratch.out2[k];
                let g1 = sweep.batch_golden(b, 0, k);
                let g2 = sweep.batch_golden(b, 1, k);
                let alt = f1 ^ f2;
                det |= !alt;
                wrong |= alt & (f1 ^ g1);
                diff |= (f1 ^ g1) | (f2 ^ g2);
            }
        }
        words += 2;
        let batch_pairs = u64::from(mask.count_ones());
        pairs += batch_pairs;
        det &= mask;
        let viol = wrong & !det & mask;
        if diff & mask != 0 {
            observable = true;
        }
        let base = sweep.bases[b];
        let mut bits = det;
        while bits != 0 {
            detected.push(base + bits.trailing_zeros());
            bits &= bits - 1;
        }
        bits = viol;
        while bits != 0 {
            violations.push(base + bits.trailing_zeros());
            bits &= bits - 1;
        }
        if record {
            events.push(CampaignEvent::BatchDone {
                fault: index,
                worker,
                batch: b,
                pairs: batch_pairs,
            });
        }
        if config.drop_after_detection && det != 0 && b + 1 < sweep.bases.len() {
            dropped = true;
            if record {
                events.push(CampaignEvent::FaultDropped {
                    fault: index,
                    worker,
                    batch: b,
                });
            }
            break;
        }
    }
    ev.uninstall();
    let eval_micros = duration_micros(sweep_t.elapsed());
    if record {
        // One aggregated span per fault: its whole sweep, in batches.
        events.push(CampaignEvent::Span {
            name: "eval_batch",
            parent: "fault_sim",
            micros: eval_micros,
            count: words / 2,
            items: pairs,
        });
        if let Some(fc) = &fault_cone {
            events.push(CampaignEvent::ConeStats {
                fault: index,
                worker,
                cone_ops: fc.ops.len() as u64,
                ops_evaluated,
                ops_skipped: compiled.num_ops() as u64 * words - ops_evaluated,
                frontier_died_at_level: died_min,
            });
        }
        events.push(CampaignEvent::FaultFinish {
            fault: index,
            worker,
            detected: detected.len(),
            violations: violations.len(),
            observable,
            dropped,
            pairs,
            // Batches sweep ascending minterms, so the smallest detected
            // minterm is the first detecting pair in sweep order.
            first_detected: detected.first().copied(),
        });
    }
    Some(SimOutcome {
        report: PairReport {
            detected_pairs: detected,
            violation_pairs: violations,
            observable,
            dropped,
        },
        pairs,
        words,
        eval_micros,
        events,
    })
}

/// Runs the packed alternating-pair campaign: every override in `faults`
/// (one stuck line each) is simulated against every canonical alternating
/// input pair `(X, X̄)` of the combinational `circuit`.
///
/// Reports come back in `faults` order regardless of the worker fan-out.
/// This is the panicking convenience wrapper around
/// [`try_run_pair_campaign`] with no observer and no cancellation.
///
/// # Panics
///
/// Panics if the circuit is sequential, has fewer than 1 or more than 24
/// inputs, fails validation, or is not an alternating network (some
/// fault-free output fails to alternate on some pair).
#[must_use]
pub fn run_pair_campaign(
    circuit: &Circuit,
    faults: &[Override],
    config: &EngineConfig,
) -> (Vec<PairReport>, EngineStats) {
    match try_run_pair_campaign(circuit, faults, config, &NullObserver, None) {
        Ok(c) => (c.reports, c.stats),
        Err(e) => panic!("{e}"),
    }
}

/// Runs the packed alternating-pair campaign with full observability and
/// cooperative cancellation.
///
/// Every event of the run flows through `observer` (pass
/// [`NullObserver`] to opt out — its `enabled() == false` fast path skips
/// all event construction). If `cancel` is provided it is checked at every
/// 64-pair batch boundary; once cancelled, in-flight faults are abandoned
/// and the campaign returns the longest contiguous fault-ordered prefix of
/// completed reports with [`PairCampaign::cancelled`] set. That prefix — and
/// its [`EngineStats`] counters — is bit-identical to the same prefix of an
/// uncancelled run.
///
/// # Errors
///
/// [`EngineError::Sequential`] for sequential circuits,
/// [`EngineError::UnsupportedInputs`] outside `1..=24` inputs, compile
/// errors from [`CompiledCircuit::try_compile`], and
/// [`EngineError::NotAlternating`] if a fault-free output fails to
/// alternate.
pub fn try_run_pair_campaign(
    circuit: &Circuit,
    faults: &[Override],
    config: &EngineConfig,
    observer: &dyn CampaignObserver,
    cancel: Option<&CancelToken>,
) -> Result<PairCampaign, EngineError> {
    if circuit.is_sequential() {
        return Err(EngineError::Sequential);
    }
    let n = circuit.inputs().len();
    if !(1..=24).contains(&n) {
        return Err(EngineError::UnsupportedInputs { inputs: n });
    }

    let total_t = Instant::now();
    let threads = effective_threads(config.threads, faults.len());
    let obs = observer.enabled();
    if obs {
        observer.on_event(&CampaignEvent::CampaignStart {
            campaign: "pair",
            faults: faults.len(),
            inputs: n,
            outputs: circuit.outputs().len(),
            threads,
        });
        observer.on_event(&CampaignEvent::EvalMode {
            mode: config.eval_mode.name(),
        });
    }

    let mut stats = EngineStats::default();

    let t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Compile,
        });
    }
    let (compiled, cspans) = CompiledCircuit::try_compile_timed(circuit)?;
    stats.compile_time = t.elapsed();
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Compile,
            micros: duration_micros(stats.compile_time),
        });
        observer.on_event(&CampaignEvent::Span {
            name: "levelize",
            parent: "compile",
            micros: cspans.levelize_micros,
            count: 1,
            items: compiled.num_ops() as u64,
        });
        observer.on_event(&CampaignEvent::Span {
            name: "pack",
            parent: "compile",
            micros: cspans.pack_micros,
            count: 1,
            items: (compiled.num_inputs() + compiled.num_outputs()) as u64,
        });
        // Memory accounting rides the span channel: `items` carries the
        // compiled schedule's heap footprint in bytes.
        observer.on_event(&CampaignEvent::Span {
            name: "compile_mem",
            parent: "compile",
            micros: 0,
            count: 1,
            items: compiled.memory_bytes(),
        });
        for (level, &gates) in compiled.level_gates().iter().enumerate() {
            observer.on_event(&CampaignEvent::LevelGates { level, gates });
        }
    }

    let t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Golden,
        });
    }
    let cache_bytes = match config.eval_mode {
        EvalMode::Full => None,
        EvalMode::Cone => Some(if config.golden_cache_bytes == 0 {
            DEFAULT_GOLDEN_CACHE_BYTES
        } else {
            config.golden_cache_bytes
        }),
    };
    let mut golden_ev = Evaluator::new(&compiled);
    let (sweep, golden_words) = Sweep::try_build(&compiled, &mut golden_ev, cache_bytes)?;
    stats.golden_time = t.elapsed();
    stats.words_evaluated = golden_words;
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Golden,
            micros: duration_micros(stats.golden_time),
        });
    }

    let t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::FaultSim,
        });
    }
    let mut slots: Vec<Option<SimOutcome>> = Vec::with_capacity(faults.len());
    slots.resize_with(faults.len(), || None);
    if threads <= 1 {
        // Reuse the warm golden evaluator's scratch.
        let mut ws = WorkerState::with_evaluator(golden_ev, &compiled, &sweep, config);
        for (i, &fault) in faults.iter().enumerate() {
            let Some(outcome) =
                sim_fault(&compiled, &sweep, config, &mut ws, fault, i, 0, obs, cancel)
            else {
                break;
            };
            slots[i] = Some(outcome);
            if obs {
                observer.on_event(&CampaignEvent::Progress {
                    done: i + 1,
                    total: faults.len(),
                });
            }
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let (compiled, sweep, config) = (&compiled, &sweep, config);
                    let (cursor, done) = (&cursor, &done);
                    scope.spawn(move || {
                        let mut ws = WorkerState::new(compiled, sweep, config);
                        let mut local = Vec::new();
                        loop {
                            if cancel.is_some_and(CancelToken::is_cancelled) {
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= faults.len() {
                                break;
                            }
                            let Some(outcome) = sim_fault(
                                compiled, sweep, config, &mut ws, faults[i], i, worker, obs, cancel,
                            ) else {
                                break;
                            };
                            local.push((i, outcome));
                            if obs {
                                observer.on_event(&CampaignEvent::Progress {
                                    done: done.fetch_add(1, Ordering::Relaxed) + 1,
                                    total: faults.len(),
                                });
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, outcome) in h.join().expect("campaign worker panicked") {
                    slots[i] = Some(outcome);
                }
            }
        });
    }
    stats.fault_sim_time = t.elapsed();
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::FaultSim,
            micros: duration_micros(stats.fault_sim_time),
        });
    }

    // Merge: keep the longest contiguous fault-ordered prefix (the whole run
    // unless cancelled) and replay each kept fault's buffered events in
    // order, so traces are deterministic regardless of worker scheduling.
    let merge_t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Merge,
        });
    }
    let completed = slots.iter().take_while(|s| s.is_some()).count();
    let cancelled = completed < faults.len();
    let mut reports = Vec::with_capacity(completed);
    for slot in slots.into_iter().take(completed) {
        let outcome = slot.expect("prefix is complete");
        stats.pairs_evaluated += outcome.pairs;
        stats.words_evaluated += outcome.words;
        stats.eval_time += Duration::from_micros(outcome.eval_micros);
        if outcome.report.dropped {
            stats.faults_dropped += 1;
        }
        if obs {
            for e in &outcome.events {
                observer.on_event(e);
            }
        }
        reports.push(outcome.report);
    }
    stats.faults = completed;
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Merge,
            micros: duration_micros(merge_t.elapsed()),
        });
        if cancelled {
            observer.on_event(&CampaignEvent::Cancelled { completed });
        }
        observer.on_event(&CampaignEvent::CampaignEnd {
            faults: completed,
            dropped: stats.faults_dropped,
            pairs: stats.pairs_evaluated,
            words: stats.words_evaluated,
            micros: duration_micros(total_t.elapsed()),
            cancelled,
        });
    }
    Ok(PairCampaign {
        reports,
        stats,
        cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{GateKind, Site};
    use scal_obs::CollectObserver;

    fn xor3() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        c
    }

    fn all_single_faults(c: &Circuit) -> Vec<Override> {
        let mut out = Vec::new();
        for id in c.node_ids() {
            for value in [false, true] {
                out.push(Override {
                    site: Site::Stem(id),
                    value,
                });
            }
        }
        out
    }

    #[test]
    fn xor3_every_stem_fault_detected_everywhere() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let (reports, stats) = run_pair_campaign(&c, &faults, &EngineConfig::default());
        assert_eq!(reports.len(), faults.len());
        assert_eq!(stats.faults, faults.len());
        assert_eq!(stats.faults_dropped, 0);
        for r in &reports {
            // A stuck line in a pure XOR cone kills alternation at every pair.
            assert_eq!(r.detected_pairs, vec![0, 1, 2, 3]);
            assert!(r.violation_pairs.is_empty());
            assert!(r.observable);
            assert!(!r.dropped);
        }
    }

    #[test]
    fn drop_mode_flags_and_counts() {
        // 9 inputs (odd, so XOR is self-dual) -> 256 canonical pairs = four
        // batches; XOR cone faults detect in batch 0, so drop mode skips the
        // rest.
        let mut c = Circuit::new();
        let ins: Vec<_> = (0..9).map(|i| c.input(format!("x{i}"))).collect();
        let x = c.xor(&ins);
        c.mark_output("p", x);
        let faults = vec![Override {
            site: Site::Stem(x),
            value: false,
        }];
        let exact = run_pair_campaign(&c, &faults, &EngineConfig::default());
        let dropped = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                drop_after_detection: true,
                ..EngineConfig::default()
            },
        );
        assert_eq!(exact.0[0].detected_pairs.len(), 256);
        assert_eq!(dropped.0[0].detected_pairs.len(), 64); // first batch only
        assert!(dropped.0[0].dropped);
        assert_eq!(dropped.1.faults_dropped, 1);
        assert!(dropped.1.pairs_evaluated < exact.1.pairs_evaluated);
    }

    #[test]
    #[should_panic(expected = "does not alternate")]
    fn rejects_non_alternating_networks() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]); // AND is not self-dual
        c.mark_output("f", g);
        let _ = run_pair_campaign(&c, &[], &EngineConfig::default());
    }

    #[test]
    fn try_run_reports_misuse_as_errors() {
        let mut seq = Circuit::new();
        let ff = seq.dff(false);
        let nq = seq.not(ff);
        seq.connect_dff(ff, nq);
        seq.mark_output("q", ff);
        match try_run_pair_campaign(&seq, &[], &EngineConfig::default(), &NullObserver, None) {
            Err(EngineError::Sequential) => {}
            other => panic!("expected Sequential, got {other:?}"),
        }
        let mut none = Circuit::new();
        let k = none.constant(true);
        none.mark_output("f", k);
        match try_run_pair_campaign(&none, &[], &EngineConfig::default(), &NullObserver, None) {
            Err(EngineError::UnsupportedInputs { inputs: 0 }) => {}
            other => panic!("expected UnsupportedInputs, got {other:?}"),
        }
    }

    /// All single stuck-at faults, stems and branch pins alike.
    fn all_faults(c: &Circuit) -> Vec<Override> {
        let mut out = Vec::new();
        for id in c.node_ids() {
            for value in [false, true] {
                out.push(Override {
                    site: Site::Stem(id),
                    value,
                });
                for pin in 0..c.fanins(id).len() {
                    out.push(Override {
                        site: Site::Branch { node: id, pin },
                        value,
                    });
                }
            }
        }
        out
    }

    /// A self-dual multi-output circuit with reconvergent fanout: a full
    /// adder (3-input XOR sum, majority carry).
    fn full_adder() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let ci = c.input("ci");
        let s = c.xor(&[a, b, ci]);
        let maj = c.gate(GateKind::Majority, &[a, b, ci]);
        c.mark_output("s", s);
        c.mark_output("co", maj);
        c
    }

    #[test]
    fn eval_mode_parses_and_displays() {
        assert_eq!("full".parse::<EvalMode>().unwrap(), EvalMode::Full);
        assert_eq!("cone".parse::<EvalMode>().unwrap(), EvalMode::Cone);
        assert_eq!(EvalMode::Cone.to_string(), "cone");
        assert_eq!(EvalMode::default(), EvalMode::Cone);
        match "both".parse::<EvalMode>() {
            Err(EngineError::InvalidConfig { reason }) => assert!(reason.contains("both")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    /// Cone-restricted evaluation — cached and streaming alike — must be
    /// bit-identical to the full-schedule oracle on every report field and
    /// every work counter, with and without fault dropping.
    #[test]
    fn cone_matches_full_on_every_fault() {
        for circuit in [xor3(), full_adder()] {
            let faults = all_faults(&circuit);
            for drop_after_detection in [false, true] {
                let full = run_pair_campaign(
                    &circuit,
                    &faults,
                    &EngineConfig {
                        drop_after_detection,
                        eval_mode: EvalMode::Full,
                        ..EngineConfig::default()
                    },
                );
                // golden_cache_bytes: 1 cannot hold any batch, forcing the
                // streaming fallback.
                for golden_cache_bytes in [0, 1] {
                    let cone = run_pair_campaign(
                        &circuit,
                        &faults,
                        &EngineConfig {
                            drop_after_detection,
                            eval_mode: EvalMode::Cone,
                            golden_cache_bytes,
                            ..EngineConfig::default()
                        },
                    );
                    assert_eq!(full.0, cone.0, "cache budget {golden_cache_bytes}");
                    assert_eq!(full.1.pairs_evaluated, cone.1.pairs_evaluated);
                    assert_eq!(full.1.words_evaluated, cone.1.words_evaluated);
                    assert_eq!(full.1.faults_dropped, cone.1.faults_dropped);
                }
            }
        }
    }

    #[test]
    fn cone_mode_emits_mode_and_stats_events() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        let events = collect.events();
        assert!(
            matches!(
                events.get(1),
                Some(CampaignEvent::EvalMode { mode: "cone" })
            ),
            "eval_mode must follow campaign_start"
        );
        let stats: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::ConeStats {
                    fault,
                    cone_ops,
                    ops_evaluated,
                    ops_skipped,
                    ..
                } => Some((*fault, *cone_ops, *ops_evaluated, *ops_skipped)),
                _ => None,
            })
            .collect();
        assert_eq!(stats.len(), faults.len(), "one cone_stats per fault");
        assert_eq!(
            stats.iter().map(|s| s.0).collect::<Vec<_>>(),
            (0..faults.len()).collect::<Vec<_>>(),
            "cone_stats replayed in fault order"
        );
        // xor3 is a one-gate schedule: every cone is at most that gate, and
        // total accounting must balance against the full-schedule cost.
        for &(_, cone_ops, ops_evaluated, ops_skipped) in &stats {
            assert!(cone_ops <= 1);
            assert!(ops_evaluated + ops_skipped >= ops_evaluated);
        }
        let full_collect = CollectObserver::default();
        let full_cfg = EngineConfig {
            threads: 1,
            eval_mode: EvalMode::Full,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &full_cfg, &full_collect, None).unwrap();
        let full_events = full_collect.events();
        assert!(
            matches!(
                full_events.get(1),
                Some(CampaignEvent::EvalMode { mode: "full" })
            ),
            "full mode still announces itself"
        );
        assert!(
            !full_events
                .iter()
                .any(|e| matches!(e, CampaignEvent::ConeStats { .. })),
            "full mode emits no cone stats"
        );
    }

    #[test]
    fn config_builder_validates() {
        let cfg = EngineConfig::builder()
            .threads(2)
            .drop_after_detection(true)
            .eval_mode(EvalMode::Full)
            .golden_cache_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 2);
        assert!(cfg.drop_after_detection);
        assert_eq!(cfg.eval_mode, EvalMode::Full);
        assert_eq!(cfg.golden_cache_bytes, 1 << 20);
        match EngineConfig::builder().threads(MAX_THREADS + 1).build() {
            Err(EngineError::InvalidConfig { reason }) => {
                assert!(reason.contains("threads"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn stats_summary_mentions_throughput() {
        let c = xor3();
        let (_, stats) = run_pair_campaign(&c, &all_single_faults(&c), &EngineConfig::default());
        assert!(stats.summary().contains("patterns/s"));
        assert!(stats.pairs_evaluated > 0);
        assert!(stats.words_evaluated > 0);
    }

    #[test]
    fn patterns_per_sec_never_divides_by_zero() {
        let zeroed = EngineStats::default();
        assert_eq!(zeroed.patterns_per_sec(), 0.0);
        assert_eq!(zeroed.patterns_per_sec_wall(), 0.0);
        let timeless = EngineStats {
            pairs_evaluated: 1000,
            ..EngineStats::default()
        };
        assert_eq!(timeless.patterns_per_sec(), 0.0);
        let real = EngineStats {
            pairs_evaluated: 1000,
            fault_sim_time: Duration::from_millis(10),
            ..EngineStats::default()
        };
        assert!(real.patterns_per_sec().is_finite());
        assert!(real.patterns_per_sec() > 0.0);
    }

    #[test]
    fn patterns_per_sec_uses_eval_time_not_phase_wall() {
        // 10 ms of wall clock but only 2 ms inside the sweeps: throughput
        // must be computed over the eval time, so it is 5x the wall figure.
        let stats = EngineStats {
            pairs_evaluated: 1000,
            fault_sim_time: Duration::from_millis(10),
            eval_time: Duration::from_millis(2),
            ..EngineStats::default()
        };
        let eval_rate = stats.patterns_per_sec();
        let wall_rate = stats.patterns_per_sec_wall();
        assert!((eval_rate - 1_000_000.0).abs() < 1e-6);
        assert!((wall_rate - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn campaign_records_eval_time() {
        let c = xor3();
        let (_, stats) = run_pair_campaign(&c, &all_single_faults(&c), &EngineConfig::default());
        assert!(stats.eval_time > Duration::ZERO || stats.pairs_evaluated < 100);
        // Eval time is contained within the phase it happens in (single
        // thread), modulo the sub-microsecond truncation per fault.
        assert!(stats.eval_time <= stats.fault_sim_time + Duration::from_millis(1));
    }

    #[test]
    fn observer_sees_spans_levels_and_first_detected() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        let events = collect.events();
        for span in ["levelize", "pack", "compile_mem", "eval_batch"] {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, CampaignEvent::Span { name, .. } if *name == span)),
                "missing span {span}"
            );
        }
        // xor3 is a single-gate schedule: one level of one gate.
        assert!(events
            .iter()
            .any(|e| matches!(e, CampaignEvent::LevelGates { level: 0, gates: 1 })));
        // Every fault in the XOR cone detects at the very first pair.
        for e in &events {
            if let CampaignEvent::FaultFinish { first_detected, .. } = e {
                assert_eq!(*first_detected, Some(0));
            }
        }
    }

    #[test]
    fn forced_multithreading_matches_inline() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let inline = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        );
        // Clamping normally keeps this inline; drive the worker path by
        // giving it enough faults per thread.
        let many: Vec<Override> = faults
            .iter()
            .cycle()
            .take(faults.len() * 8)
            .copied()
            .collect();
        let (multi, _) = run_pair_campaign(
            &c,
            &many,
            &EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        for (i, r) in multi.iter().enumerate() {
            assert_eq!(r, &inline.0[i % faults.len()]);
        }
    }

    #[test]
    fn observer_sees_deterministic_fault_ordered_events() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        };
        let run = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        assert!(!run.cancelled);
        let events = collect.events();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::CampaignStart {
                campaign: "pair",
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(CampaignEvent::CampaignEnd {
                cancelled: false,
                ..
            })
        ));
        // Per-fault events arrive in fault order during the merge replay.
        let finish_order: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::FaultFinish { fault, .. } => Some(*fault),
                _ => None,
            })
            .collect();
        assert_eq!(finish_order, (0..faults.len()).collect::<Vec<_>>());
        // All four phases opened and closed.
        for phase in [Phase::Compile, Phase::Golden, Phase::FaultSim, Phase::Merge] {
            assert!(events
                .iter()
                .any(|e| matches!(e, CampaignEvent::PhaseStart { phase: p } if *p == phase)));
            assert!(events
                .iter()
                .any(|e| matches!(e, CampaignEvent::PhaseEnd { phase: p, .. } if *p == phase)));
        }
    }

    #[test]
    fn pre_cancelled_run_returns_empty_prefix() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let token = CancelToken::new();
        token.cancel();
        let run = try_run_pair_campaign(
            &c,
            &faults,
            &EngineConfig::default(),
            &NullObserver,
            Some(&token),
        )
        .unwrap();
        assert!(run.cancelled);
        assert!(run.reports.is_empty());
        assert_eq!(run.stats.faults, 0);
        assert_eq!(run.stats.pairs_evaluated, 0);
    }

    #[test]
    fn cancelled_prefix_is_bit_identical_to_uncancelled_run() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let (full, _) = run_pair_campaign(&c, &faults, &EngineConfig::default());
        // Cancel from an observer after the third fault completes: the
        // returned prefix must match the uncancelled run exactly.
        struct CancelAfter {
            token: CancelToken,
            after: usize,
        }
        impl CampaignObserver for CancelAfter {
            fn on_event(&self, event: &CampaignEvent) {
                if let CampaignEvent::Progress { done, .. } = event {
                    if *done >= self.after {
                        self.token.cancel();
                    }
                }
            }
        }
        let token = CancelToken::new();
        let obs = CancelAfter {
            token: token.clone(),
            after: 3,
        };
        let cfg = EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        };
        let run = try_run_pair_campaign(&c, &faults, &cfg, &obs, Some(&token)).unwrap();
        assert!(run.cancelled);
        assert_eq!(run.reports.len(), 3);
        assert_eq!(run.stats.faults, 3);
        assert_eq!(&run.reports[..], &full[..3]);
    }
}
