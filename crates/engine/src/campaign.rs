//! The packed alternating-pair fault campaign.
//!
//! One evaluation sweep carries 64 alternating pairs: period-1 words encode
//! 64 canonical minterms, the period-2 words are their bitwise complements,
//! and pair classification is computed with word-wide XOR/AND masks —
//! per-output `nonalt = !(f1 ^ f2)` marks non-alternating lanes,
//! `(f1 ^ f2) & (f1 ^ g1)` marks wrong-but-alternating lanes, and the
//! multiple-output code of the paper's Definition 3.3 (one non-alternating
//! output detects the word even if another alternates incorrectly) falls out
//! of OR-ing those masks across outputs before extracting lanes.

use crate::compile::CompiledCircuit;
use crate::eval::Evaluator;
use crate::pool::effective_threads;
use scal_netlist::{Circuit, Override};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Knobs for [`run_pair_campaign`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker-thread count; `0` = auto (machine parallelism, clamped to the
    /// workload).
    pub threads: usize,
    /// When `true`, a fault's sweep stops at the end of the first 64-pair
    /// batch in which it was detected (classic fault dropping). The report
    /// still answers *tested?* correctly and `detected_pairs` /
    /// `violation_pairs` are exact up to that batch, but later pairs are
    /// never simulated, so the full accounting (and `observable` for
    /// faults only visible later) may be truncated. The default `false`
    /// keeps exact parity with the scalar reference implementation.
    pub drop_after_detection: bool,
}

/// Per-fault result of [`run_pair_campaign`], in the engine's vocabulary
/// (pair minterms only — `scal-faults` zips these back with its `Fault`
/// bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairReport {
    /// Canonical first-period minterms `X` (with `X < X̄` numerically) at
    /// which the fault produced a detectable non-code word, ascending.
    pub detected_pairs: Vec<u32>,
    /// Canonical minterms at which the fault produced an undetected wrong
    /// code word, ascending.
    pub violation_pairs: Vec<u32>,
    /// `true` iff the fault changed some output at some simulated pair.
    pub observable: bool,
    /// `true` iff fault dropping cut this fault's sweep short.
    pub dropped: bool,
}

/// Aggregate counters and per-phase wall times for one campaign run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Faults simulated.
    pub faults: usize,
    /// Faults whose sweep was cut short by
    /// [`EngineConfig::drop_after_detection`].
    pub faults_dropped: usize,
    /// Alternating pairs evaluated across all faults (golden excluded).
    pub pairs_evaluated: u64,
    /// 64-lane evaluation sweeps executed, golden included (each sweep
    /// evaluates one word of up to 64 patterns through the whole schedule).
    pub words_evaluated: u64,
    /// Wall time spent compiling the circuit.
    pub compile_time: Duration,
    /// Wall time spent on the fault-free sweep and alternation check.
    pub golden_time: Duration,
    /// Wall time spent simulating faults (all workers, wall clock).
    pub fault_sim_time: Duration,
}

impl EngineStats {
    /// Test patterns per second of fault simulation (each pair is two
    /// patterns).
    #[must_use]
    pub fn patterns_per_sec(&self) -> f64 {
        let secs = self.fault_sim_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.pairs_evaluated * 2) as f64 / secs
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} faults ({} dropped), {} pairs, {} words | compile {:?}, golden {:?}, sim {:?} | {:.3e} patterns/s",
            self.faults,
            self.faults_dropped,
            self.pairs_evaluated,
            self.words_evaluated,
            self.compile_time,
            self.golden_time,
            self.fault_sim_time,
            self.patterns_per_sec(),
        )
    }
}

/// The precomputed pair sweep: input words for every 64-pair batch plus the
/// golden (fault-free) output words.
struct Sweep {
    n_inputs: usize,
    n_outputs: usize,
    /// Batch base minterms, ascending.
    bases: Vec<u32>,
    /// Valid-lane masks per batch.
    masks: Vec<u64>,
    /// Period-1 input words, `[batch][input]` flattened.
    words1: Vec<u64>,
    /// Period-2 input words (`!words1`), same layout.
    words2: Vec<u64>,
    /// Golden output words, `[batch][output][period]` flattened.
    golden: Vec<u64>,
}

impl Sweep {
    fn build(compiled: &CompiledCircuit, ev: &mut Evaluator) -> (Self, u64) {
        let n = compiled.num_inputs();
        let n_out = compiled.num_outputs();
        let total_pairs = 1u32 << (n - 1);
        let batches = (total_pairs as usize).div_ceil(64);
        let mut sweep = Sweep {
            n_inputs: n,
            n_outputs: n_out,
            bases: Vec::with_capacity(batches),
            masks: Vec::with_capacity(batches),
            words1: Vec::with_capacity(batches * n),
            words2: Vec::with_capacity(batches * n),
            golden: Vec::with_capacity(batches * n_out * 2),
        };
        let mut base = 0u32;
        while base < total_pairs {
            let lanes = (total_pairs - base).min(64);
            sweep.bases.push(base);
            sweep.masks.push(lane_mask(lanes));
            for i in 0..n {
                let mut w = 0u64;
                for lane in 0..lanes {
                    if ((base + lane) >> i) & 1 == 1 {
                        w |= 1 << lane;
                    }
                }
                sweep.words1.push(w);
                sweep.words2.push(!w);
            }
            base += lanes;
        }
        // Golden responses and the alternation sanity check.
        let mut words = 0u64;
        for b in 0..sweep.bases.len() {
            let mask = sweep.masks[b];
            ev.eval(compiled, sweep.batch_words1(b), &[]);
            words += 1;
            for k in 0..n_out {
                sweep.golden.push(ev.output(compiled, k));
            }
            ev.eval(compiled, sweep.batch_words2(b), &[]);
            words += 1;
            for k in 0..n_out {
                sweep.golden.push(ev.output(compiled, k));
            }
            for k in 0..n_out {
                let g1 = sweep.golden[b * n_out * 2 + k];
                let g2 = sweep.golden[b * n_out * 2 + n_out + k];
                let stuck = !(g1 ^ g2) & mask;
                assert!(
                    stuck == 0,
                    "output {k} does not alternate at pair ({m:b}); not an alternating network",
                    m = sweep.bases[b] + stuck.trailing_zeros()
                );
            }
        }
        (sweep, words)
    }

    fn batch_words1(&self, b: usize) -> &[u64] {
        &self.words1[b * self.n_inputs..(b + 1) * self.n_inputs]
    }

    fn batch_words2(&self, b: usize) -> &[u64] {
        &self.words2[b * self.n_inputs..(b + 1) * self.n_inputs]
    }

    fn batch_golden(&self, b: usize, period: usize, k: usize) -> u64 {
        self.golden[b * self.n_outputs * 2 + period * self.n_outputs + k]
    }
}

fn lane_mask(lanes: u32) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Per-worker reusable output buffers.
struct Scratch {
    out1: Vec<u64>,
    out2: Vec<u64>,
}

impl Scratch {
    fn new(n_outputs: usize) -> Self {
        Scratch {
            out1: vec![0; n_outputs],
            out2: vec![0; n_outputs],
        }
    }
}

/// Simulates one fault against the whole pair sweep. Returns the report plus
/// `(pairs, words)` evaluated.
fn sim_fault(
    compiled: &CompiledCircuit,
    sweep: &Sweep,
    config: &EngineConfig,
    ev: &mut Evaluator,
    scratch: &mut Scratch,
    fault: Override,
) -> (PairReport, u64, u64) {
    let mut detected = Vec::new();
    let mut violations = Vec::new();
    let mut observable = false;
    let mut dropped = false;
    let mut pairs = 0u64;
    let mut words = 0u64;
    ev.install(compiled, std::slice::from_ref(&fault));
    for b in 0..sweep.bases.len() {
        let mask = sweep.masks[b];
        ev.eval(compiled, sweep.batch_words1(b), &[]);
        for k in 0..sweep.n_outputs {
            scratch.out1[k] = ev.output(compiled, k);
        }
        ev.eval(compiled, sweep.batch_words2(b), &[]);
        for k in 0..sweep.n_outputs {
            scratch.out2[k] = ev.output(compiled, k);
        }
        words += 2;
        pairs += u64::from(mask.count_ones());

        let mut det = 0u64;
        let mut wrong = 0u64;
        let mut diff = 0u64;
        for k in 0..sweep.n_outputs {
            let f1 = scratch.out1[k];
            let f2 = scratch.out2[k];
            let g1 = sweep.batch_golden(b, 0, k);
            let g2 = sweep.batch_golden(b, 1, k);
            let alt = f1 ^ f2;
            det |= !alt;
            wrong |= alt & (f1 ^ g1);
            diff |= (f1 ^ g1) | (f2 ^ g2);
        }
        det &= mask;
        let viol = wrong & !det & mask;
        if diff & mask != 0 {
            observable = true;
        }
        let base = sweep.bases[b];
        let mut bits = det;
        while bits != 0 {
            detected.push(base + bits.trailing_zeros());
            bits &= bits - 1;
        }
        bits = viol;
        while bits != 0 {
            violations.push(base + bits.trailing_zeros());
            bits &= bits - 1;
        }
        if config.drop_after_detection && det != 0 && b + 1 < sweep.bases.len() {
            dropped = true;
            break;
        }
    }
    ev.uninstall();
    (
        PairReport {
            detected_pairs: detected,
            violation_pairs: violations,
            observable,
            dropped,
        },
        pairs,
        words,
    )
}

/// Runs the packed alternating-pair campaign: every override in `faults`
/// (one stuck line each) is simulated against every canonical alternating
/// input pair `(X, X̄)` of the combinational `circuit`.
///
/// Reports come back in `faults` order regardless of the worker fan-out.
///
/// # Panics
///
/// Panics if the circuit is sequential, has fewer than 1 or more than 24
/// inputs, fails validation, or is not an alternating network (some
/// fault-free output fails to alternate on some pair).
#[must_use]
pub fn run_pair_campaign(
    circuit: &Circuit,
    faults: &[Override],
    config: &EngineConfig,
) -> (Vec<PairReport>, EngineStats) {
    assert!(!circuit.is_sequential(), "campaigns are combinational-only");
    let n = circuit.inputs().len();
    assert!((1..=24).contains(&n), "campaign supports 1..=24 inputs");

    let mut stats = EngineStats {
        faults: faults.len(),
        ..EngineStats::default()
    };

    let t = Instant::now();
    let compiled = CompiledCircuit::compile(circuit);
    stats.compile_time = t.elapsed();

    let t = Instant::now();
    let mut golden_ev = Evaluator::new(&compiled);
    let (sweep, golden_words) = Sweep::build(&compiled, &mut golden_ev);
    stats.golden_time = t.elapsed();
    stats.words_evaluated = golden_words;

    let threads = effective_threads(config.threads, faults.len());
    let pairs_ctr = AtomicU64::new(0);
    let words_ctr = AtomicU64::new(0);
    let t = Instant::now();
    let reports: Vec<PairReport> = if threads <= 1 {
        let mut ev = golden_ev; // reuse the warm scratch
        let mut scratch = Scratch::new(sweep.n_outputs);
        faults
            .iter()
            .map(|&fault| {
                let (r, p, w) = sim_fault(&compiled, &sweep, config, &mut ev, &mut scratch, fault);
                pairs_ctr.fetch_add(p, Ordering::Relaxed);
                words_ctr.fetch_add(w, Ordering::Relaxed);
                r
            })
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<PairReport>> = Vec::with_capacity(faults.len());
        slots.resize_with(faults.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (compiled, sweep, config) = (&compiled, &sweep, config);
                    let (cursor, pairs_ctr, words_ctr) = (&cursor, &pairs_ctr, &words_ctr);
                    scope.spawn(move || {
                        let mut ev = Evaluator::new(compiled);
                        let mut scratch = Scratch::new(sweep.n_outputs);
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= faults.len() {
                                break;
                            }
                            let (r, p, w) = sim_fault(
                                compiled,
                                sweep,
                                config,
                                &mut ev,
                                &mut scratch,
                                faults[i],
                            );
                            pairs_ctr.fetch_add(p, Ordering::Relaxed);
                            words_ctr.fetch_add(w, Ordering::Relaxed);
                            local.push((i, r));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("campaign worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every fault simulated"))
            .collect()
    };
    stats.fault_sim_time = t.elapsed();
    stats.pairs_evaluated = pairs_ctr.load(Ordering::Relaxed);
    stats.words_evaluated += words_ctr.load(Ordering::Relaxed);
    stats.faults_dropped = reports.iter().filter(|r| r.dropped).count();
    (reports, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{GateKind, Site};

    fn xor3() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        c
    }

    fn all_single_faults(c: &Circuit) -> Vec<Override> {
        let mut out = Vec::new();
        for id in c.node_ids() {
            for value in [false, true] {
                out.push(Override {
                    site: Site::Stem(id),
                    value,
                });
            }
        }
        out
    }

    #[test]
    fn xor3_every_stem_fault_detected_everywhere() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let (reports, stats) = run_pair_campaign(&c, &faults, &EngineConfig::default());
        assert_eq!(reports.len(), faults.len());
        assert_eq!(stats.faults, faults.len());
        assert_eq!(stats.faults_dropped, 0);
        for r in &reports {
            // A stuck line in a pure XOR cone kills alternation at every pair.
            assert_eq!(r.detected_pairs, vec![0, 1, 2, 3]);
            assert!(r.violation_pairs.is_empty());
            assert!(r.observable);
            assert!(!r.dropped);
        }
    }

    #[test]
    fn drop_mode_flags_and_counts() {
        // 9 inputs (odd, so XOR is self-dual) -> 256 canonical pairs = four
        // batches; XOR cone faults detect in batch 0, so drop mode skips the
        // rest.
        let mut c = Circuit::new();
        let ins: Vec<_> = (0..9).map(|i| c.input(format!("x{i}"))).collect();
        let x = c.xor(&ins);
        c.mark_output("p", x);
        let faults = vec![Override {
            site: Site::Stem(x),
            value: false,
        }];
        let exact = run_pair_campaign(&c, &faults, &EngineConfig::default());
        let dropped = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                drop_after_detection: true,
                ..EngineConfig::default()
            },
        );
        assert_eq!(exact.0[0].detected_pairs.len(), 256);
        assert_eq!(dropped.0[0].detected_pairs.len(), 64); // first batch only
        assert!(dropped.0[0].dropped);
        assert_eq!(dropped.1.faults_dropped, 1);
        assert!(dropped.1.pairs_evaluated < exact.1.pairs_evaluated);
    }

    #[test]
    #[should_panic(expected = "does not alternate")]
    fn rejects_non_alternating_networks() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]); // AND is not self-dual
        c.mark_output("f", g);
        let _ = run_pair_campaign(&c, &[], &EngineConfig::default());
    }

    #[test]
    fn stats_summary_mentions_throughput() {
        let c = xor3();
        let (_, stats) = run_pair_campaign(&c, &all_single_faults(&c), &EngineConfig::default());
        assert!(stats.summary().contains("patterns/s"));
        assert!(stats.pairs_evaluated > 0);
        assert!(stats.words_evaluated > 0);
    }

    #[test]
    fn forced_multithreading_matches_inline() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let inline = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        );
        // Clamping normally keeps this inline; drive the worker path by
        // giving it enough faults per thread.
        let many: Vec<Override> = faults
            .iter()
            .cycle()
            .take(faults.len() * 8)
            .copied()
            .collect();
        let (multi, _) = run_pair_campaign(
            &c,
            &many,
            &EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        for (i, r) in multi.iter().enumerate() {
            assert_eq!(r, &inline.0[i % faults.len()]);
        }
    }
}
