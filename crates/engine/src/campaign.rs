//! The packed alternating-pair fault campaign.
//!
//! One evaluation sweep carries 64 alternating pairs: period-1 words encode
//! 64 canonical minterms, the period-2 words are their bitwise complements,
//! and pair classification is computed with word-wide XOR/AND masks —
//! per-output `nonalt = !(f1 ^ f2)` marks non-alternating lanes,
//! `(f1 ^ f2) & (f1 ^ g1)` marks wrong-but-alternating lanes, and the
//! multiple-output code of the paper's Definition 3.3 (one non-alternating
//! output detects the word even if another alternates incorrectly) falls out
//! of OR-ing those masks across outputs before extracting lanes.
//!
//! # Wide words and 2-D packing
//!
//! The sweep is generic over the word width `W` ([`crate::Word`]): one
//! evaluation word carries `W` 64-lane sub-words, so a pattern-major sweep
//! evaluates up to `64 × W` pairs per pass over the schedule. Classification
//! still happens per 64-pair sub-batch in scalar batch order, so reports,
//! buffered events and work counters are bit-identical at every width —
//! width only changes throughput. [`EngineConfig::word_width`] selects `W`
//! (`0` = auto-detected from CPU features, overridable via the
//! `SCAL_WORD_WIDTH` environment variable).
//!
//! [`EngineConfig::fault_packing`] turns the sweep two-dimensional: up to 63
//! faults are broadcast into the bit lanes of every sub-word (lane 0 stays
//! golden) while each sub-word carries a distinct input pattern, so one
//! sweep evaluates `63 faults × W patterns` simultaneously. Detection then
//! compares against the in-word golden lane; per-fault accounting — pairs,
//! drop truncation, report contents — stays bit-identical to the unpacked
//! path, and retired (dropped) lanes stop counting even though the datapath
//! keeps carrying them until their whole chunk retires.
//!
//! # Observability and cancellation
//!
//! [`try_run_pair_campaign`] drives a [`CampaignObserver`] through the whole
//! run: phase spans for compile / golden / fault-sim / merge, live
//! [`CampaignEvent::Progress`] ticks from whichever worker finishes a fault,
//! and per-fault `FaultStart` / `BatchDone` / `FaultDropped` / `FaultFinish`
//! events. The per-fault events are *buffered* by the worker that simulated
//! the fault and replayed by the coordinator in fault order during the merge
//! phase, so a trace is deterministic for a fixed config regardless of the
//! worker fan-out (only the live `Progress` ticks are emission-order
//! dependent). A [`CancelToken`] is checked at every 64-pair batch boundary;
//! on cancellation the campaign returns the longest contiguous fault-ordered
//! prefix of completed reports, bit-identical to the same prefix of an
//! uncancelled run.

use crate::collapse::{collapse_overrides, resolve_fault_collapse};
use crate::compile::{CompiledCircuit, FaultCone, LanePlan, CONE_SEED};
use crate::error::EngineError;
use crate::eval::WideEvaluator;
use crate::pool::effective_threads;
use crate::word::{resolve_word_width, Word, WORD_WIDTHS};
use scal_netlist::{Circuit, Override};
use scal_obs::{CampaignEvent, CampaignObserver, CancelToken, NullObserver, Phase};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Hard ceiling on explicitly requested worker threads — far above any
/// sensible fan-out; requests beyond it are configuration mistakes.
pub const MAX_THREADS: usize = 1024;

/// Default budget for the golden slot cache in cone mode: 256 MiB. Beyond it
/// the campaign falls back to streaming golden re-evaluation per batch.
const DEFAULT_GOLDEN_CACHE_BYTES: usize = 256 << 20;

/// How faulty sweeps are evaluated.
///
/// Both modes produce bit-identical reports, statistics (except timing),
/// coverage maps, and fault-ordered trace prefixes; `Full` is kept as the
/// differential oracle for the cone path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalMode {
    /// Re-evaluate the whole levelized schedule for every fault and batch.
    Full,
    /// Evaluate only each fault's transitive fanout cone, seeded from cached
    /// golden slot values, with a frontier-death early exit when the faulty
    /// values converge back to golden mid-schedule.
    #[default]
    Cone,
}

impl EvalMode {
    /// Stable lowercase name, as emitted in traces and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::Full => "full",
            EvalMode::Cone => "cone",
        }
    }
}

impl std::fmt::Display for EvalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EvalMode {
    type Err = EngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(EvalMode::Full),
            "cone" => Ok(EvalMode::Cone),
            other => Err(EngineError::InvalidConfig {
                reason: format!("eval mode must be \"full\" or \"cone\", got {other:?}"),
            }),
        }
    }
}

/// A three-state switch for features the engine can decide on its own.
///
/// `Auto` lets the campaign pick (packing: the lane-geometry heuristic;
/// collapsing: on unless the `SCAL_FAULT_COLLAPSE` environment variable says
/// otherwise); `On` / `Off` force the choice. `From<bool>` maps the forcing
/// states so the builders keep their plain-`bool` signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Toggle {
    /// Let the engine decide.
    #[default]
    Auto,
    /// Force the feature on.
    On,
    /// Force the feature off.
    Off,
}

impl From<bool> for Toggle {
    fn from(on: bool) -> Self {
        if on {
            Toggle::On
        } else {
            Toggle::Off
        }
    }
}

/// Knobs for [`run_pair_campaign`].
///
/// Construct directly (the fields are public and `Default` is valid) or via
/// the validating [`EngineConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker-thread count; `0` = auto (machine parallelism, clamped to the
    /// workload).
    pub threads: usize,
    /// When `true`, a fault's sweep stops at the end of the first 64-pair
    /// batch in which it was detected (classic fault dropping). The report
    /// still answers *tested?* correctly and `detected_pairs` /
    /// `violation_pairs` are exact up to that batch, but later pairs are
    /// never simulated, so the full accounting (and `observable` for
    /// faults only visible later) may be truncated. The default `false`
    /// keeps exact parity with the scalar reference implementation.
    pub drop_after_detection: bool,
    /// How faulty sweeps are evaluated; defaults to [`EvalMode::Cone`].
    pub eval_mode: EvalMode,
    /// Byte budget for the cone-mode golden slot cache
    /// (`num_slots × batches × 2 × 8` bytes when it fits); `0` = the 256 MiB
    /// default. When the cache would exceed the budget, cone workers stream
    /// golden re-evaluations per batch instead — still bit-identical, but
    /// slower than [`EvalMode::Full`]. Ignored in full mode.
    pub golden_cache_bytes: usize,
    /// Wide-word width `W`: 64-lane sub-words per evaluation word. Valid
    /// values are `1`, `4`, `8`, or `0` = auto (the `SCAL_WORD_WIDTH`
    /// environment variable if set, else the widest width the detected CPU
    /// features profit from — see [`crate::resolve_word_width`]). Every
    /// width produces bit-identical reports, events and counters; only
    /// throughput changes.
    pub word_width: usize,
    /// Whether up to 63 faults are packed into the bit lanes of every
    /// pattern sub-word (lane 0 golden), evaluating `63 × W` fault-pattern
    /// cells per sweep instead of one fault across `64 × W` patterns.
    /// Implies full-schedule evaluation (cone restriction does not apply);
    /// reports and per-fault accounting stay bit-identical to the unpacked
    /// path. Pays off on small-pattern circuits where the per-fault sweep
    /// is too short to fill the machine. [`Toggle::Auto`] (the default)
    /// packs exactly when the packed sweep count beats the pattern-major
    /// sweep count: `⌈F/63⌉ · P < F · ⌈P/64⌉` over `F` *simulated*
    /// (post-collapse) faults and `P` canonical pairs.
    pub fault_packing: Toggle,
    /// Whether structurally equivalent faults are collapsed at compile time
    /// so only one representative per equivalence class is simulated (see
    /// [`crate::collapse_overrides`]). Verdicts are expanded back over every
    /// class at merge time, so reports, coverage maps and per-fault trace
    /// events are bit-identical to an uncollapsed run — collapsing only
    /// changes how much work the fault-sim phase does. [`Toggle::Auto`]
    /// (the default) means *on*, unless the `SCAL_FAULT_COLLAPSE`
    /// environment variable (`0`/`off`/`false`) vetoes it.
    pub fault_collapse: Toggle,
}

impl EngineConfig {
    /// A validating builder for campaign configuration.
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Builder for [`EngineConfig`] that validates each knob at
/// [`EngineConfigBuilder::build`] time instead of letting a bad value panic
/// deep inside a campaign.
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    threads: usize,
    drop_after_detection: bool,
    eval_mode: EvalMode,
    golden_cache_bytes: usize,
    word_width: usize,
    fault_packing: Toggle,
    fault_collapse: Toggle,
}

impl EngineConfigBuilder {
    /// Worker-thread count; `0` = auto.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables classic fault dropping (see
    /// [`EngineConfig::drop_after_detection`]).
    #[must_use]
    pub fn drop_after_detection(mut self, on: bool) -> Self {
        self.drop_after_detection = on;
        self
    }

    /// Selects the faulty-sweep evaluation strategy (see [`EvalMode`]).
    #[must_use]
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Byte budget for the cone-mode golden slot cache; `0` = default (see
    /// [`EngineConfig::golden_cache_bytes`]).
    #[must_use]
    pub fn golden_cache_bytes(mut self, bytes: usize) -> Self {
        self.golden_cache_bytes = bytes;
        self
    }

    /// Wide-word width; `0` = auto (see [`EngineConfig::word_width`]).
    #[must_use]
    pub fn word_width(mut self, width: usize) -> Self {
        self.word_width = width;
        self
    }

    /// Forces 2-D fault × pattern lane packing on or off (see
    /// [`EngineConfig::fault_packing`]; the unset default is
    /// [`Toggle::Auto`]).
    #[must_use]
    pub fn fault_packing(mut self, on: bool) -> Self {
        self.fault_packing = on.into();
        self
    }

    /// Forces compile-time fault collapsing on or off (see
    /// [`EngineConfig::fault_collapse`]; the unset default is
    /// [`Toggle::Auto`] = on unless `SCAL_FAULT_COLLAPSE` vetoes).
    #[must_use]
    pub fn fault_collapse(mut self, on: bool) -> Self {
        self.fault_collapse = on.into();
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] if `threads` exceeds
    /// [`MAX_THREADS`] or `word_width` is not `0` (auto) or one of the
    /// supported widths ([`crate::WORD_WIDTHS`]).
    pub fn build(self) -> Result<EngineConfig, EngineError> {
        if self.threads > MAX_THREADS {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "threads must be 0 (auto) or at most {MAX_THREADS}, got {}",
                    self.threads
                ),
            });
        }
        if self.word_width != 0 && !WORD_WIDTHS.contains(&self.word_width) {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "word width must be 0 (auto) or one of {WORD_WIDTHS:?}, got {}",
                    self.word_width
                ),
            });
        }
        Ok(EngineConfig {
            threads: self.threads,
            drop_after_detection: self.drop_after_detection,
            eval_mode: self.eval_mode,
            golden_cache_bytes: self.golden_cache_bytes,
            word_width: self.word_width,
            fault_packing: self.fault_packing,
            fault_collapse: self.fault_collapse,
        })
    }
}

/// Per-fault result of [`run_pair_campaign`], in the engine's vocabulary
/// (pair minterms only — `scal-faults` zips these back with its `Fault`
/// bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairReport {
    /// Canonical first-period minterms `X` (with `X < X̄` numerically) at
    /// which the fault produced a detectable non-code word, ascending.
    pub detected_pairs: Vec<u32>,
    /// Canonical minterms at which the fault produced an undetected wrong
    /// code word, ascending.
    pub violation_pairs: Vec<u32>,
    /// `true` iff the fault changed some output at some simulated pair.
    pub observable: bool,
    /// `true` iff fault dropping cut this fault's sweep short.
    pub dropped: bool,
}

/// Aggregate counters and per-phase wall times for one campaign run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Faults whose reports were returned (equals the requested fault count
    /// unless the run was cancelled).
    pub faults: usize,
    /// Faults whose sweep was cut short by
    /// [`EngineConfig::drop_after_detection`].
    pub faults_dropped: usize,
    /// Alternating pairs evaluated across all returned faults (golden
    /// excluded). Dropped faults contribute every pair of every batch they
    /// actually swept, including the batch that triggered the drop, so this
    /// counter and [`EngineStats::words_evaluated`] stay consistent. Under
    /// fault packing each (fault, pair) cell still counts exactly once — a
    /// retired lane stops counting at the end of its detecting batch even
    /// though the datapath keeps carrying it — so the counter is identical
    /// to the unpacked run's at every width.
    pub pairs_evaluated: u64,
    /// 64-lane sub-word sweeps executed, golden included (each counts one
    /// 64-pattern sub-word pushed through the whole schedule; a wide sweep
    /// contributes one per *real*, non-padding sub-word). On the
    /// pattern-major path this is width-invariant; under fault packing the
    /// same pattern sub-word serves 63 fault lanes at once, which is
    /// exactly the work reduction the mode exists for.
    pub words_evaluated: u64,
    /// Wall time spent compiling the circuit.
    pub compile_time: Duration,
    /// Wall time spent on the fault-free sweep and alternation check.
    pub golden_time: Duration,
    /// Wall time spent simulating faults (all workers, wall clock).
    pub fault_sim_time: Duration,
    /// Time spent *inside* per-fault evaluation sweeps, summed across
    /// workers — the eval-phase denominator for throughput. Unlike
    /// [`EngineStats::fault_sim_time`] it excludes worker spawn/join and
    /// observer overhead, and on a multi-threaded run it sums worker time,
    /// so throughput derived from it compares backends per-core,
    /// apples-to-apples.
    pub eval_time: Duration,
}

impl EngineStats {
    /// Test patterns per second of fault evaluation (each pair is two
    /// patterns), measured over [`EngineStats::eval_time`] — the profiler's
    /// eval-phase time, not wall time that would fold in compile, golden and
    /// merge overhead. Falls back to [`EngineStats::fault_sim_time`] when no
    /// eval time was recorded. Returns `0.0` — never `NaN` or `inf` — when
    /// no time was measured or no pairs were evaluated.
    #[must_use]
    pub fn patterns_per_sec(&self) -> f64 {
        let secs = if self.eval_time > Duration::ZERO {
            self.eval_time.as_secs_f64()
        } else {
            self.fault_sim_time.as_secs_f64()
        };
        let patterns = (self.pairs_evaluated * 2) as f64;
        if secs > 0.0 && patterns > 0.0 {
            patterns / secs
        } else {
            0.0
        }
    }

    /// Test patterns per second over the fault-sim phase *wall clock* —
    /// scales with the worker fan-out, so it measures parallel speedup
    /// rather than per-core backend efficiency. Same zero-guard as
    /// [`EngineStats::patterns_per_sec`].
    #[must_use]
    pub fn patterns_per_sec_wall(&self) -> f64 {
        let secs = self.fault_sim_time.as_secs_f64();
        let patterns = (self.pairs_evaluated * 2) as f64;
        if secs > 0.0 && patterns > 0.0 {
            patterns / secs
        } else {
            0.0
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} faults ({} dropped), {} pairs, {} words | compile {:?}, golden {:?}, sim {:?}, eval {:?} | {:.3e} patterns/s",
            self.faults,
            self.faults_dropped,
            self.pairs_evaluated,
            self.words_evaluated,
            self.compile_time,
            self.golden_time,
            self.fault_sim_time,
            self.eval_time,
            self.patterns_per_sec(),
        )
    }
}

/// Result of [`try_run_pair_campaign`]: fault-ordered reports plus run
/// statistics and the cancellation outcome.
#[derive(Debug, Clone)]
pub struct PairCampaign {
    /// Per-fault reports; a contiguous prefix of the requested fault list
    /// when [`PairCampaign::cancelled`], otherwise one per fault.
    pub reports: Vec<PairReport>,
    /// Aggregate counters and wall times over the returned reports.
    pub stats: EngineStats,
    /// `true` iff a [`CancelToken`] stopped the run before every fault
    /// completed. The reports are then the longest contiguous fault-ordered
    /// prefix, bit-identical to the same prefix of an uncancelled run.
    pub cancelled: bool,
}

/// The precomputed pair sweep: wide input words for every *group* of `W`
/// consecutive 64-pair batches plus the scalar golden (fault-free) output
/// words.
///
/// Batches keep their scalar identity — group `g` carries batches
/// `g·W .. min((g+1)·W, B)`, batch `b` in sub-word `b % W` — so
/// classification, events and accounting stay per 64-pair batch and
/// bit-identical at every width. Padding sub-words of the last group hold
/// all-zero inputs and a zero lane mask.
struct Sweep<const W: usize> {
    n_inputs: usize,
    n_outputs: usize,
    /// Batch base minterms, ascending (scalar, one per batch).
    bases: Vec<u32>,
    /// Valid-lane masks per batch (scalar, one per batch).
    masks: Vec<u64>,
    /// Period-1 input words, `[group][input]` flattened; batch `b` occupies
    /// sub-word `b % W` of group `b / W`.
    words1: Vec<Word<W>>,
    /// Period-2 input words (`!words1` on real sub-words), same layout.
    words2: Vec<Word<W>>,
    /// Golden output words, `[batch][period][output]` flattened (scalar).
    golden: Vec<u64>,
    /// Slot count of the compiled circuit (slot-cache row width).
    num_slots: usize,
    /// Every golden slot word, `[group][period][slot]` flattened — the seed
    /// store for cone-restricted evaluation. Empty in full mode or when the
    /// cache would blow the configured byte budget (cone workers then stream
    /// golden re-evaluations per group).
    slot_cache: Vec<Word<W>>,
}

impl<const W: usize> Sweep<W> {
    fn try_build(
        compiled: &CompiledCircuit,
        ev: &mut WideEvaluator<W>,
        cache_bytes: Option<usize>,
    ) -> Result<(Self, u64), EngineError> {
        let n = compiled.num_inputs();
        let n_out = compiled.num_outputs();
        let total_pairs = 1u32 << (n - 1);
        let batches = (total_pairs as usize).div_ceil(64);
        let groups = batches.div_ceil(W);
        let cache = cache_bytes.is_some_and(|cap| groups * 2 * compiled.num_slots * 8 * W <= cap);
        let mut sweep = Sweep {
            n_inputs: n,
            n_outputs: n_out,
            bases: Vec::with_capacity(batches),
            masks: Vec::with_capacity(batches),
            words1: vec![Word::ZERO; groups * n],
            words2: vec![Word::ZERO; groups * n],
            golden: Vec::with_capacity(batches * n_out * 2),
            num_slots: compiled.num_slots,
            slot_cache: Vec::with_capacity(if cache {
                groups * 2 * compiled.num_slots
            } else {
                0
            }),
        };
        let mut base = 0u32;
        while base < total_pairs {
            let lanes = (total_pairs - base).min(64);
            let b = sweep.bases.len();
            sweep.bases.push(base);
            sweep.masks.push(lane_mask(lanes));
            let (g, s) = (b / W, b % W);
            for i in 0..n {
                let mut w = 0u64;
                for lane in 0..lanes {
                    if ((base + lane) >> i) & 1 == 1 {
                        w |= 1 << lane;
                    }
                }
                sweep.words1[g * n + i].set_sub(s, w);
                sweep.words2[g * n + i].set_sub(s, !w);
            }
            base += lanes;
        }
        // Golden responses and the alternation sanity check, W batches per
        // sweep. `words` counts real 64-lane sub-word sweeps (2 per batch),
        // so the counter matches the scalar path at every width.
        let mut words = 0u64;
        let mut out1 = vec![Word::<W>::ZERO; n_out];
        let mut out2 = vec![Word::<W>::ZERO; n_out];
        for g in 0..sweep.groups() {
            let real = sweep.group_real(g);
            ev.try_eval_w(compiled, sweep.group_words1(g), &[])?;
            words += real as u64;
            if cache {
                sweep.slot_cache.extend_from_slice(ev.slots_w());
            }
            for (k, o) in out1.iter_mut().enumerate() {
                *o = ev.output_w(compiled, k);
            }
            ev.try_eval_w(compiled, sweep.group_words2(g), &[])?;
            words += real as u64;
            if cache {
                sweep.slot_cache.extend_from_slice(ev.slots_w());
            }
            for (k, o) in out2.iter_mut().enumerate() {
                *o = ev.output_w(compiled, k);
            }
            for s in 0..real {
                let b = g * W + s;
                let mask = sweep.masks[b];
                for o in out1.iter().take(n_out) {
                    sweep.golden.push(o.sub(s));
                }
                for o in out2.iter().take(n_out) {
                    sweep.golden.push(o.sub(s));
                }
                for k in 0..n_out {
                    let g1 = out1[k].sub(s);
                    let g2 = out2[k].sub(s);
                    let stuck = !(g1 ^ g2) & mask;
                    if stuck != 0 {
                        return Err(EngineError::NotAlternating {
                            output: k,
                            pair: sweep.bases[b] + stuck.trailing_zeros(),
                        });
                    }
                }
            }
        }
        Ok((sweep, words))
    }

    fn groups(&self) -> usize {
        self.bases.len().div_ceil(W)
    }

    /// Real (non-padding) batches in group `g`.
    fn group_real(&self, g: usize) -> usize {
        (self.bases.len() - g * W).min(W)
    }

    fn group_words1(&self, g: usize) -> &[Word<W>] {
        &self.words1[g * self.n_inputs..(g + 1) * self.n_inputs]
    }

    fn group_words2(&self, g: usize) -> &[Word<W>] {
        &self.words2[g * self.n_inputs..(g + 1) * self.n_inputs]
    }

    fn batch_golden(&self, b: usize, period: usize, k: usize) -> u64 {
        self.golden[b * self.n_outputs * 2 + period * self.n_outputs + k]
    }

    /// Golden output `k` of every batch in group `g` as one wide word
    /// (padding sub-words zero).
    fn golden_wide(&self, g: usize, period: usize, k: usize) -> Word<W> {
        let real = self.group_real(g);
        Word::from_fn(|s| {
            if s < real {
                self.batch_golden(g * W + s, period, k)
            } else {
                0
            }
        })
    }

    /// Valid-lane masks of every batch in group `g` as one wide word
    /// (padding sub-words zero).
    fn group_mask(&self, g: usize) -> Word<W> {
        let real = self.group_real(g);
        Word::from_fn(|s| if s < real { self.masks[g * W + s] } else { 0 })
    }

    fn has_slot_cache(&self) -> bool {
        !self.slot_cache.is_empty()
    }

    /// Cached golden slot words for one group period.
    fn group_slots(&self, g: usize, period: usize) -> &[Word<W>] {
        let start = (g * 2 + period) * self.num_slots;
        &self.slot_cache[start..start + self.num_slots]
    }
}

fn lane_mask(lanes: u32) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Per-worker reusable wide output buffers.
struct Scratch<const W: usize> {
    out1: Vec<Word<W>>,
    out2: Vec<Word<W>>,
}

impl<const W: usize> Scratch<W> {
    fn new(n_outputs: usize) -> Self {
        Scratch {
            out1: vec![Word::ZERO; n_outputs],
            out2: vec![Word::ZERO; n_outputs],
        }
    }
}

/// Extra per-worker state for cone-restricted evaluation.
struct ConeWorker<const W: usize> {
    /// Liveness-expiry scratch for [`WideEvaluator::eval_cone_w`], sized for
    /// the whole schedule (every cone is a subset); kept all-zero between
    /// calls.
    expire: Vec<u64>,
    /// Streaming golden evaluator, present only when the slot cache did not
    /// fit its byte budget: re-runs the fault-free sweep per group so cone
    /// seeds still have golden words to read.
    stream: Option<WideEvaluator<W>>,
}

/// Everything one worker thread owns across faults.
struct WorkerState<const W: usize> {
    ev: WideEvaluator<W>,
    scratch: Scratch<W>,
    cone: Option<ConeWorker<W>>,
}

impl<const W: usize> WorkerState<W> {
    fn new(compiled: &CompiledCircuit, sweep: &Sweep<W>, config: &EngineConfig) -> Self {
        WorkerState::with_evaluator(WideEvaluator::new(compiled), compiled, sweep, config)
    }

    fn with_evaluator(
        ev: WideEvaluator<W>,
        compiled: &CompiledCircuit,
        sweep: &Sweep<W>,
        config: &EngineConfig,
    ) -> Self {
        let cone = (config.eval_mode == EvalMode::Cone).then(|| ConeWorker {
            expire: vec![0; compiled.num_ops()],
            stream: (!sweep.has_slot_cache()).then(|| WideEvaluator::new(compiled)),
        });
        WorkerState {
            ev,
            scratch: Scratch::new(sweep.n_outputs),
            cone,
        }
    }
}

/// Everything one unit of fault simulation produced: the reports (one per
/// fault — a single fault on the pattern-major path, a whole chunk under
/// fault packing), work counters, and (when tracing) the events buffered
/// for the deterministic merge replay.
struct SimOutcome {
    reports: Vec<PairReport>,
    pairs: u64,
    words: u64,
    /// Wall time this worker spent inside the unit's sweeps.
    eval_micros: u64,
    events: Vec<CampaignEvent>,
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Rewrites the fault index carried by a buffered per-fault event. Merge
/// expansion replays representative events under each original fault's
/// index; events without a fault field pass through unchanged.
fn remap_fault(event: &CampaignEvent, fault: usize) -> CampaignEvent {
    let mut e = event.clone();
    match &mut e {
        CampaignEvent::FaultStart { fault: f, .. }
        | CampaignEvent::BatchDone { fault: f, .. }
        | CampaignEvent::FaultDropped { fault: f, .. }
        | CampaignEvent::ConeStats { fault: f, .. }
        | CampaignEvent::FaultFinish { fault: f, .. }
        | CampaignEvent::FaultClass { fault: f, .. } => *f = fault,
        _ => {}
    }
    e
}

/// Tracks the minimum schedule level at which a cone frontier died across a
/// fault's batches (for the `ConeStats` event).
fn note_death(died_min: &mut Option<u32>, cone: &FaultCone, evaluated: u32) {
    if (evaluated as usize) < cone.ops.len() {
        let lvl = cone.levels[evaluated as usize];
        *died_min = Some(died_min.map_or(lvl, |d| d.min(lvl)));
    }
}

/// Simulates one fault against the whole pair sweep, `W` batches per pass.
/// Classification stays per 64-pair sub-batch in scalar batch order, so the
/// report, buffered events and counters are bit-identical at every width.
/// Returns `None` if the token cancelled the sweep at a group boundary (the
/// fault's partial work is discarded); the evaluator is left clean either
/// way.
#[allow(clippy::too_many_arguments)]
fn sim_fault<const W: usize>(
    compiled: &CompiledCircuit,
    sweep: &Sweep<W>,
    config: &EngineConfig,
    ws: &mut WorkerState<W>,
    fault: Override,
    index: usize,
    worker: usize,
    record: bool,
    cancel: Option<&CancelToken>,
) -> Option<SimOutcome> {
    let sweep_t = Instant::now();
    let mut detected = Vec::new();
    let mut violations = Vec::new();
    let mut observable = false;
    let mut dropped = false;
    let mut pairs = 0u64;
    let mut words = 0u64;
    let mut events = Vec::new();
    if record {
        events.push(CampaignEvent::FaultStart {
            fault: index,
            worker,
        });
    }
    let WorkerState { ev, scratch, cone } = ws;
    let fault_cone = cone
        .as_ref()
        .map(|_| compiled.cone_for(std::slice::from_ref(&fault)));
    let mut ops_evaluated = 0u64;
    let mut died_min: Option<u32> = None;
    ev.install(compiled, std::slice::from_ref(&fault));
    let batches = sweep.bases.len();
    'groups: for g in 0..sweep.groups() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            ev.uninstall();
            return None;
        }
        let real = sweep.group_real(g);
        let wide_mask = sweep.group_mask(g);
        if let (Some(fc), Some(cw)) = (&fault_cone, cone.as_mut()) {
            // Cone path: evaluate only the fault's fanout cone, seeded from
            // golden slot words, and classify only the reachable outputs —
            // every other output provably equals golden, contributing
            // nothing to det/wrong/diff on the masked lanes. Padding
            // sub-words are masked out of the frontier-death dirtiness
            // check, so they can neither keep a cone alive nor kill it
            // early.
            let e1 = if sweep.has_slot_cache() {
                let cached = sweep.group_slots(g, 0);
                ev.eval_cone_w(compiled, fc, |s| cached[s], &[], wide_mask, &mut cw.expire)
            } else {
                let stream = cw.stream.as_mut().expect("streaming golden evaluator");
                stream
                    .try_eval_w(compiled, sweep.group_words1(g), &[])
                    .expect("golden sweep arity");
                let slots = stream.slots_w();
                ev.eval_cone_w(compiled, fc, |s| slots[s], &[], wide_mask, &mut cw.expire)
            };
            for &(k, ord) in &fc.outputs {
                let k = k as usize;
                scratch.out1[k] = if ord == CONE_SEED || ord < e1 {
                    ev.output_w(compiled, k)
                } else {
                    sweep.golden_wide(g, 0, k)
                };
            }
            let e2 = if sweep.has_slot_cache() {
                let cached = sweep.group_slots(g, 1);
                ev.eval_cone_w(compiled, fc, |s| cached[s], &[], wide_mask, &mut cw.expire)
            } else {
                let stream = cw.stream.as_mut().expect("streaming golden evaluator");
                stream
                    .try_eval_w(compiled, sweep.group_words2(g), &[])
                    .expect("golden sweep arity");
                let slots = stream.slots_w();
                ev.eval_cone_w(compiled, fc, |s| slots[s], &[], wide_mask, &mut cw.expire)
            };
            ops_evaluated += u64::from(e1) + u64::from(e2);
            note_death(&mut died_min, fc, e1);
            note_death(&mut died_min, fc, e2);
            for &(k, ord) in &fc.outputs {
                let k = k as usize;
                scratch.out2[k] = if ord == CONE_SEED || ord < e2 {
                    ev.output_w(compiled, k)
                } else {
                    sweep.golden_wide(g, 1, k)
                };
            }
        } else {
            ev.try_eval_w(compiled, sweep.group_words1(g), &[])
                .expect("sweep arity");
            for k in 0..sweep.n_outputs {
                scratch.out1[k] = ev.output_w(compiled, k);
            }
            ev.try_eval_w(compiled, sweep.group_words2(g), &[])
                .expect("sweep arity");
            for k in 0..sweep.n_outputs {
                scratch.out2[k] = ev.output_w(compiled, k);
            }
        }
        // Classify per 64-pair sub-batch in scalar batch order: reports,
        // events and counters are width-invariant.
        for s in 0..real {
            let b = g * W + s;
            let mask = sweep.masks[b];
            let mut det = 0u64;
            let mut wrong = 0u64;
            let mut diff = 0u64;
            if let Some(fc) = &fault_cone {
                for &(k, _) in &fc.outputs {
                    let k = k as usize;
                    let f1 = scratch.out1[k].sub(s);
                    let f2 = scratch.out2[k].sub(s);
                    let g1 = sweep.batch_golden(b, 0, k);
                    let g2 = sweep.batch_golden(b, 1, k);
                    let alt = f1 ^ f2;
                    det |= !alt;
                    wrong |= alt & (f1 ^ g1);
                    diff |= (f1 ^ g1) | (f2 ^ g2);
                }
            } else {
                for k in 0..sweep.n_outputs {
                    let f1 = scratch.out1[k].sub(s);
                    let f2 = scratch.out2[k].sub(s);
                    let g1 = sweep.batch_golden(b, 0, k);
                    let g2 = sweep.batch_golden(b, 1, k);
                    let alt = f1 ^ f2;
                    det |= !alt;
                    wrong |= alt & (f1 ^ g1);
                    diff |= (f1 ^ g1) | (f2 ^ g2);
                }
            }
            words += 2;
            let batch_pairs = u64::from(mask.count_ones());
            pairs += batch_pairs;
            det &= mask;
            let viol = wrong & !det & mask;
            if diff & mask != 0 {
                observable = true;
            }
            let base = sweep.bases[b];
            let mut bits = det;
            while bits != 0 {
                detected.push(base + bits.trailing_zeros());
                bits &= bits - 1;
            }
            bits = viol;
            while bits != 0 {
                violations.push(base + bits.trailing_zeros());
                bits &= bits - 1;
            }
            if record {
                events.push(CampaignEvent::BatchDone {
                    fault: index,
                    worker,
                    batch: b,
                    pairs: batch_pairs,
                });
            }
            if config.drop_after_detection && det != 0 && b + 1 < batches {
                dropped = true;
                if record {
                    events.push(CampaignEvent::FaultDropped {
                        fault: index,
                        worker,
                        batch: b,
                    });
                }
                break 'groups;
            }
        }
    }
    ev.uninstall();
    let eval_micros = duration_micros(sweep_t.elapsed());
    if record {
        // One aggregated span per fault: its whole sweep, in batches.
        events.push(CampaignEvent::Span {
            name: "eval_batch",
            parent: "fault_sim",
            micros: eval_micros,
            count: words / 2,
            items: pairs,
        });
        if let Some(fc) = &fault_cone {
            events.push(CampaignEvent::ConeStats {
                fault: index,
                worker,
                cone_ops: fc.ops.len() as u64,
                ops_evaluated,
                // Saturating: a drop mid-group can leave evaluated-but-
                // unclassified sub-batches out of `words`.
                ops_skipped: (compiled.num_ops() as u64 * words).saturating_sub(ops_evaluated),
                frontier_died_at_level: died_min,
            });
        }
        events.push(CampaignEvent::FaultFinish {
            fault: index,
            worker,
            detected: detected.len(),
            violations: violations.len(),
            observable,
            dropped,
            pairs,
            // Batches sweep ascending minterms, so the smallest detected
            // minterm is the first detecting pair in sweep order.
            first_detected: detected.first().copied(),
        });
    }
    Some(SimOutcome {
        reports: vec![PairReport {
            detected_pairs: detected,
            violation_pairs: violations,
            observable,
            dropped,
        }],
        pairs,
        words,
        eval_micros,
        events,
    })
}

/// Simulates one fault-packed chunk: up to 63 faults broadcast into the bit
/// lanes of every pattern sub-word (lane 0 golden), swept across every
/// canonical pair — `63 faults × W patterns` cells per wide sweep over the
/// full schedule.
///
/// Classification compares each fault lane against the in-word golden lane
/// (`sg = -(out & 1)`, the golden bit splatted across the word). Per-fault
/// accounting matches the unpacked sweep bit for bit: pairs count per
/// (fault, pair) cell; under fault dropping a fault stops counting at the
/// end of its first detecting 64-pair batch (its lane retires from the live
/// mask at the next batch boundary), and the sweep exits early once every
/// lane has retired. Returns `None` if the token cancelled mid-chunk (the
/// chunk's partial work is discarded).
#[allow(clippy::too_many_arguments)]
fn sim_fault_chunk<const W: usize>(
    compiled: &CompiledCircuit,
    sweep: &Sweep<W>,
    config: &EngineConfig,
    faults: &[Override],
    first: usize,
    worker: usize,
    record: bool,
    cancel: Option<&CancelToken>,
) -> Option<SimOutcome> {
    let sweep_t = Instant::now();
    let nf = faults.len();
    debug_assert!((1..=63).contains(&nf));
    let total_pairs = 1u32 << (sweep.n_inputs - 1);
    let refs: Vec<&[Override]> = faults.iter().map(std::slice::from_ref).collect();
    let plan: LanePlan<W> = LanePlan::build_broadcast(compiled, &refs);
    let mut ev = WideEvaluator::<W>::with_aux(compiled, plan.aux.len());
    for &(slot, mask, value) in &plan.stems {
        ev.add_masked_stem(compiled, slot as usize, mask, value);
    }
    for &(flat, slot) in &plan.fanin_patches {
        ev.patch_fanin(flat as usize, slot);
    }
    // Fault `i` lives on bit `i + 1`; bit 0 is the golden lane.
    let all_lanes: u64 = (u64::MAX >> (63 - nf)) & !1;
    let mut detected: Vec<Vec<u32>> = vec![Vec::new(); nf];
    let mut violations: Vec<Vec<u32>> = vec![Vec::new(); nf];
    let mut observable = vec![false; nf];
    // First pattern index *not* counted for fault `i` under dropping: the
    // end of its first detecting 64-pair batch. `u32::MAX` = never detected.
    let mut limit = vec![u32::MAX; nf];
    let mut live = all_lanes;
    let mut events = Vec::new();
    if record {
        for i in 0..nf {
            events.push(CampaignEvent::FaultStart {
                fault: first + i,
                worker,
            });
        }
    }
    let mut inputs1 = vec![Word::<W>::ZERO; sweep.n_inputs];
    let mut inputs2 = vec![Word::<W>::ZERO; sweep.n_inputs];
    let mut out1 = vec![Word::<W>::ZERO; sweep.n_outputs];
    let mut words = 0u64;
    let mut p0 = 0u32;
    'sweep: while p0 < total_pairs {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return None;
        }
        let real = ((total_pairs - p0) as usize).min(W);
        // Sub-word s carries canonical pattern p0 + s, splatted across its
        // 64 lanes (padding sub-words repeat the last real pattern).
        for i in 0..sweep.n_inputs {
            let w = Word::from_fn(|s| {
                let p = p0 + s.min(real - 1) as u32;
                0u64.wrapping_sub(u64::from((p >> i) & 1))
            });
            inputs1[i] = w;
            inputs2[i] = !w;
        }
        ev.eval_packed_w(compiled, &inputs1, &[], &plan.aux);
        for (k, o) in out1.iter_mut().enumerate() {
            *o = ev.output_w(compiled, k);
        }
        ev.eval_packed_w(compiled, &inputs2, &[], &plan.aux);
        words += 2 * real as u64;
        for s in 0..real {
            let p = p0 + s as u32;
            if config.drop_after_detection && p % 64 == 0 {
                // Batch boundary: retire every lane whose fault finished its
                // detecting batch; exit once the whole chunk has retired.
                for (i, &l) in limit.iter().enumerate() {
                    if l <= p {
                        live &= !(1u64 << (i + 1));
                    }
                }
                if live == 0 {
                    break 'sweep;
                }
            }
            let mut det = 0u64;
            let mut wrong = 0u64;
            let mut diff = 0u64;
            for (k, o1w) in out1.iter().enumerate() {
                let o1 = o1w.sub(s);
                let o2 = ev.output_w(compiled, k).sub(s);
                let sg1 = 0u64.wrapping_sub(o1 & 1);
                let sg2 = 0u64.wrapping_sub(o2 & 1);
                let alt = o1 ^ o2;
                det |= !alt;
                wrong |= alt & (o1 ^ sg1);
                diff |= (o1 ^ sg1) | (o2 ^ sg2);
            }
            det &= live;
            let viol = wrong & !det & live;
            diff &= live;
            let mut bits = det;
            while bits != 0 {
                let f = bits.trailing_zeros() as usize - 1;
                detected[f].push(p);
                if limit[f] == u32::MAX {
                    limit[f] = (p / 64 + 1) * 64;
                }
                bits &= bits - 1;
            }
            bits = viol;
            while bits != 0 {
                violations[bits.trailing_zeros() as usize - 1].push(p);
                bits &= bits - 1;
            }
            bits = diff;
            while bits != 0 {
                observable[bits.trailing_zeros() as usize - 1] = true;
                bits &= bits - 1;
            }
        }
        p0 += real as u32;
    }
    let eval_micros = duration_micros(sweep_t.elapsed());
    if record {
        events.push(CampaignEvent::LaneBatch {
            batch: first / 63,
            worker,
            lanes: nf,
            words,
            retired: limit.iter().filter(|&&l| l != u32::MAX).count(),
        });
    }
    let mut reports = Vec::with_capacity(nf);
    let mut pairs = 0u64;
    for (f, ((det_pairs, viol_pairs), obs_f)) in detected
        .into_iter()
        .zip(violations)
        .zip(observable)
        .enumerate()
    {
        let fault_dropped = config.drop_after_detection && limit[f] < total_pairs;
        let fault_pairs = if fault_dropped {
            u64::from(limit[f])
        } else {
            u64::from(total_pairs)
        };
        pairs += fault_pairs;
        if record {
            if fault_dropped {
                events.push(CampaignEvent::FaultDropped {
                    fault: first + f,
                    worker,
                    batch: (limit[f] / 64 - 1) as usize,
                });
            }
            events.push(CampaignEvent::FaultFinish {
                fault: first + f,
                worker,
                detected: det_pairs.len(),
                violations: viol_pairs.len(),
                observable: obs_f,
                dropped: fault_dropped,
                pairs: fault_pairs,
                first_detected: det_pairs.first().copied(),
            });
        }
        reports.push(PairReport {
            detected_pairs: det_pairs,
            violation_pairs: viol_pairs,
            observable: obs_f,
            dropped: fault_dropped,
        });
    }
    if record {
        // One aggregated span per chunk: its whole 2-D sweep.
        events.push(CampaignEvent::Span {
            name: "eval_batch",
            parent: "fault_sim",
            micros: eval_micros,
            count: words / 2,
            items: pairs,
        });
    }
    Some(SimOutcome {
        reports,
        pairs,
        words,
        eval_micros,
        events,
    })
}

/// Runs the packed alternating-pair campaign: every override in `faults`
/// (one stuck line each) is simulated against every canonical alternating
/// input pair `(X, X̄)` of the combinational `circuit`.
///
/// Reports come back in `faults` order regardless of the worker fan-out.
/// This is the panicking convenience wrapper around
/// [`try_run_pair_campaign`] with no observer and no cancellation.
///
/// # Panics
///
/// Panics if the circuit is sequential, has fewer than 1 or more than 24
/// inputs, fails validation, or is not an alternating network (some
/// fault-free output fails to alternate on some pair).
#[must_use]
pub fn run_pair_campaign(
    circuit: &Circuit,
    faults: &[Override],
    config: &EngineConfig,
) -> (Vec<PairReport>, EngineStats) {
    match try_run_pair_campaign(circuit, faults, config, &NullObserver, None) {
        Ok(c) => (c.reports, c.stats),
        Err(e) => panic!("{e}"),
    }
}

/// Runs the packed alternating-pair campaign with full observability and
/// cooperative cancellation.
///
/// Every event of the run flows through `observer` (pass
/// [`NullObserver`] to opt out — its `enabled() == false` fast path skips
/// all event construction). If `cancel` is provided it is checked at every
/// 64-pair batch boundary; once cancelled, in-flight faults are abandoned
/// and the campaign returns the longest contiguous fault-ordered prefix of
/// completed reports with [`PairCampaign::cancelled`] set. That prefix — and
/// its [`EngineStats`] counters — is bit-identical to the same prefix of an
/// uncancelled run.
///
/// # Errors
///
/// [`EngineError::Sequential`] for sequential circuits,
/// [`EngineError::UnsupportedInputs`] outside `1..=24` inputs,
/// [`EngineError::InvalidConfig`] for an unusable word width (including an
/// unparsable `SCAL_WORD_WIDTH` environment override), compile errors from
/// [`CompiledCircuit::try_compile`], and [`EngineError::NotAlternating`] if
/// a fault-free output fails to alternate.
pub fn try_run_pair_campaign(
    circuit: &Circuit,
    faults: &[Override],
    config: &EngineConfig,
    observer: &dyn CampaignObserver,
    cancel: Option<&CancelToken>,
) -> Result<PairCampaign, EngineError> {
    match resolve_word_width(config.word_width)? {
        1 => run_campaign::<1>(circuit, faults, config, observer, cancel),
        4 => run_campaign::<4>(circuit, faults, config, observer, cancel),
        8 => run_campaign::<8>(circuit, faults, config, observer, cancel),
        other => Err(EngineError::InvalidConfig {
            reason: format!("unsupported word width {other}"),
        }),
    }
}

/// The width-monomorphized campaign body behind [`try_run_pair_campaign`].
fn run_campaign<const W: usize>(
    circuit: &Circuit,
    faults: &[Override],
    config: &EngineConfig,
    observer: &dyn CampaignObserver,
    cancel: Option<&CancelToken>,
) -> Result<PairCampaign, EngineError> {
    if circuit.is_sequential() {
        return Err(EngineError::Sequential);
    }
    let n = circuit.inputs().len();
    if !(1..=24).contains(&n) {
        return Err(EngineError::UnsupportedInputs { inputs: n });
    }

    let total_t = Instant::now();
    let obs = observer.enabled();
    let mut stats = EngineStats::default();

    // Compile — and collapse — before the event preamble: the lane-geometry
    // decision under `Toggle::Auto` needs the *simulated* (post-collapse)
    // fault count, but `campaign_start` / `eval_mode` / `lane_geometry`
    // precede the compile-phase events in the trace contract. The phase is
    // timed here and its events are emitted below.
    let t = Instant::now();
    let (compiled, cspans) = CompiledCircuit::try_compile_timed(circuit)?;
    let collapse_on = resolve_fault_collapse(config.fault_collapse)?;
    let collapsed = if collapse_on {
        Some(collapse_overrides(&compiled, faults))
    } else {
        None
    };
    stats.compile_time = t.elapsed();
    // The fault list the sweeps actually run: class representatives under
    // collapsing, the caller's list verbatim otherwise.
    let sim_faults: Vec<Override> = match &collapsed {
        Some(cl) => cl.reps.iter().map(|&r| faults[r as usize]).collect(),
        None => faults.to_vec(),
    };

    // Lane-geometry decision: forced by the config, else pack exactly when
    // the packed whole-schedule sweep count beats the pattern-major one —
    // packed runs `⌈F/63⌉` chunk sweeps of `P` patterns each, pattern-major
    // runs `F` faults of `⌈P/64⌉` batches each.
    let packing = match config.fault_packing {
        Toggle::On => true,
        Toggle::Off => false,
        Toggle::Auto => {
            let f = sim_faults.len() as u64;
            let p = 1u64 << (n - 1);
            f > 0 && f.div_ceil(63) * p < f * p.div_ceil(64)
        }
    };

    // Work units: one fault on the pattern-major path, one ≤63-fault chunk
    // under fault packing.
    let units = if packing {
        sim_faults.len().div_ceil(63)
    } else {
        sim_faults.len()
    };
    let threads = effective_threads(config.threads, units);
    if obs {
        observer.on_event(&CampaignEvent::CampaignStart {
            campaign: "pair",
            faults: faults.len(),
            inputs: n,
            outputs: circuit.outputs().len(),
            threads,
        });
        observer.on_event(&CampaignEvent::EvalMode {
            // Fault packing forces full-schedule evaluation: cone
            // restriction does not compose with 63 distinct fanout cones
            // per word.
            mode: if packing {
                EvalMode::Full.name()
            } else {
                config.eval_mode.name()
            },
        });
        let (fault_lanes, pattern_lanes, geometry) = if packing {
            (63, W, "fault")
        } else {
            (0, 64 * W, "pattern")
        };
        observer.on_event(&CampaignEvent::LaneGeometry {
            width: W,
            fault_lanes,
            pattern_lanes,
            packing: geometry,
        });

        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Compile,
        });
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Compile,
            micros: duration_micros(stats.compile_time),
        });
        observer.on_event(&CampaignEvent::Span {
            name: "levelize",
            parent: "compile",
            micros: cspans.levelize_micros,
            count: 1,
            items: compiled.num_ops() as u64,
        });
        observer.on_event(&CampaignEvent::Span {
            name: "pack",
            parent: "compile",
            micros: cspans.pack_micros,
            count: 1,
            items: (compiled.num_inputs() + compiled.num_outputs()) as u64,
        });
        // Memory accounting rides the span channel: `items` carries the
        // compiled schedule's heap footprint in bytes.
        observer.on_event(&CampaignEvent::Span {
            name: "compile_mem",
            parent: "compile",
            micros: 0,
            count: 1,
            items: compiled.memory_bytes(),
        });
        if let Some(cl) = &collapsed {
            observer.on_event(&CampaignEvent::Span {
                name: "collapse",
                parent: "compile",
                micros: cl.micros,
                count: 1,
                items: cl.num_faults() as u64,
            });
            observer.on_event(&CampaignEvent::FaultCollapse {
                faults: cl.num_faults(),
                representatives: cl.num_reps(),
                dominance_edges: cl.dominance_edges,
                micros: cl.micros,
            });
        }
        for (level, &gates) in compiled.level_gates().iter().enumerate() {
            observer.on_event(&CampaignEvent::LevelGates { level, gates });
        }
    }

    let t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Golden,
        });
    }
    let cache_bytes = if packing {
        None
    } else {
        match config.eval_mode {
            EvalMode::Full => None,
            EvalMode::Cone => Some(if config.golden_cache_bytes == 0 {
                DEFAULT_GOLDEN_CACHE_BYTES
            } else {
                config.golden_cache_bytes
            }),
        }
    };
    let mut golden_ev = WideEvaluator::<W>::new(&compiled);
    let (sweep, golden_words) = Sweep::<W>::try_build(&compiled, &mut golden_ev, cache_bytes)?;
    stats.golden_time = t.elapsed();
    stats.words_evaluated = golden_words;
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Golden,
            micros: duration_micros(stats.golden_time),
        });
    }

    let t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::FaultSim,
        });
    }
    let mut slots: Vec<Option<SimOutcome>> = Vec::with_capacity(units);
    slots.resize_with(units, || None);
    if packing {
        if threads <= 1 {
            for (c, slot) in slots.iter_mut().enumerate() {
                let (lo, hi) = (c * 63, ((c + 1) * 63).min(sim_faults.len()));
                let Some(outcome) = sim_fault_chunk::<W>(
                    &compiled,
                    &sweep,
                    config,
                    &sim_faults[lo..hi],
                    lo,
                    0,
                    obs,
                    cancel,
                ) else {
                    break;
                };
                *slot = Some(outcome);
                if obs {
                    observer.on_event(&CampaignEvent::Progress {
                        done: hi,
                        total: sim_faults.len(),
                    });
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        let (compiled, sweep, config) = (&compiled, &sweep, config);
                        let (sim_faults, cursor, done) = (&sim_faults, &cursor, &done);
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                if cancel.is_some_and(CancelToken::is_cancelled) {
                                    break;
                                }
                                let c = cursor.fetch_add(1, Ordering::Relaxed);
                                if c >= units {
                                    break;
                                }
                                let (lo, hi) = (c * 63, ((c + 1) * 63).min(sim_faults.len()));
                                let Some(outcome) = sim_fault_chunk::<W>(
                                    compiled,
                                    sweep,
                                    config,
                                    &sim_faults[lo..hi],
                                    lo,
                                    worker,
                                    obs,
                                    cancel,
                                ) else {
                                    break;
                                };
                                local.push((c, outcome));
                                if obs {
                                    observer.on_event(&CampaignEvent::Progress {
                                        done: done.fetch_add(hi - lo, Ordering::Relaxed)
                                            + (hi - lo),
                                        total: sim_faults.len(),
                                    });
                                }
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    for (c, outcome) in h.join().expect("campaign worker panicked") {
                        slots[c] = Some(outcome);
                    }
                }
            });
        }
    } else if threads <= 1 {
        // Reuse the warm golden evaluator's scratch.
        let mut ws = WorkerState::with_evaluator(golden_ev, &compiled, &sweep, config);
        for (i, &fault) in sim_faults.iter().enumerate() {
            let Some(outcome) =
                sim_fault(&compiled, &sweep, config, &mut ws, fault, i, 0, obs, cancel)
            else {
                break;
            };
            slots[i] = Some(outcome);
            if obs {
                observer.on_event(&CampaignEvent::Progress {
                    done: i + 1,
                    total: sim_faults.len(),
                });
            }
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let (compiled, sweep, config) = (&compiled, &sweep, config);
                    let (sim_faults, cursor, done) = (&sim_faults, &cursor, &done);
                    scope.spawn(move || {
                        let mut ws = WorkerState::new(compiled, sweep, config);
                        let mut local = Vec::new();
                        loop {
                            if cancel.is_some_and(CancelToken::is_cancelled) {
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= sim_faults.len() {
                                break;
                            }
                            let Some(outcome) = sim_fault(
                                compiled,
                                sweep,
                                config,
                                &mut ws,
                                sim_faults[i],
                                i,
                                worker,
                                obs,
                                cancel,
                            ) else {
                                break;
                            };
                            local.push((i, outcome));
                            if obs {
                                observer.on_event(&CampaignEvent::Progress {
                                    done: done.fetch_add(1, Ordering::Relaxed) + 1,
                                    total: sim_faults.len(),
                                });
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, outcome) in h.join().expect("campaign worker panicked") {
                    slots[i] = Some(outcome);
                }
            }
        });
    }
    stats.fault_sim_time = t.elapsed();
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::FaultSim,
            micros: duration_micros(stats.fault_sim_time),
        });
    }

    // Merge: keep the longest contiguous fault-ordered prefix (the whole run
    // unless cancelled) and replay each kept fault's buffered events in
    // order, so traces are deterministic regardless of worker scheduling.
    let merge_t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Merge,
        });
    }
    let completed_units = slots.iter().take_while(|s| s.is_some()).count();
    let outcomes: Vec<SimOutcome> = slots
        .into_iter()
        .take(completed_units)
        .map(|s| s.expect("prefix is complete"))
        .collect();
    // Work counters (pairs, words, eval time) measure representative work —
    // the point of collapsing — while fault counts and reports below are
    // expanded over original faults.
    for outcome in &outcomes {
        stats.pairs_evaluated += outcome.pairs;
        stats.words_evaluated += outcome.words;
        stats.eval_time += Duration::from_micros(outcome.eval_micros);
    }
    let mut reports = Vec::with_capacity(faults.len());
    match &collapsed {
        None => {
            for outcome in outcomes {
                stats.faults_dropped += outcome.reports.iter().filter(|r| r.dropped).count();
                if obs {
                    for e in &outcome.events {
                        observer.on_event(e);
                    }
                }
                reports.extend(outcome.reports);
            }
        }
        Some(cl) => {
            // Expansion: every completed original fault gets a clone of its
            // representative's verdict. Buffered event indices carry
            // *representative* positions; they are remapped so the replayed
            // trace speaks in original-fault indices, in original-fault
            // order — bit-identical to the uncollapsed replay when every
            // class is a singleton.
            let completed_reps = if packing {
                (completed_units * 63).min(cl.num_reps())
            } else {
                completed_units
            };
            let completed_originals = cl.completed_prefix(completed_reps);
            if obs && packing {
                // Chunk-level events (lane batches, sweep spans) replay
                // first in chunk order; per-fault events follow below.
                for outcome in &outcomes {
                    for e in &outcome.events {
                        if matches!(
                            e,
                            CampaignEvent::LaneBatch { .. } | CampaignEvent::Span { .. }
                        ) {
                            observer.on_event(e);
                        }
                    }
                }
            }
            for o in 0..completed_originals {
                let r = cl.rep_of[o] as usize;
                let rep_original = cl.reps[r] as usize;
                let (outcome, report) = if packing {
                    let oc = &outcomes[r / 63];
                    (oc, oc.reports[r % 63].clone())
                } else {
                    let oc = &outcomes[r];
                    (oc, oc.reports[0].clone())
                };
                stats.faults_dropped += usize::from(report.dropped);
                if obs {
                    if !packing && rep_original == o {
                        for e in &outcome.events {
                            observer.on_event(&remap_fault(e, o));
                        }
                    } else {
                        // Synthesized bucket: start, class membership
                        // (members only), then the representative's
                        // drop/finish verdicts under the original's index.
                        let worker = outcome
                            .events
                            .iter()
                            .find_map(|e| match e {
                                CampaignEvent::FaultStart { fault, worker } if *fault == r => {
                                    Some(*worker)
                                }
                                _ => None,
                            })
                            .unwrap_or(0);
                        observer.on_event(&CampaignEvent::FaultStart { fault: o, worker });
                        if rep_original != o {
                            observer.on_event(&CampaignEvent::FaultClass {
                                fault: o,
                                representative: rep_original,
                                size: cl.class_sizes[r] as usize,
                            });
                        }
                        for e in &outcome.events {
                            if let CampaignEvent::FaultDropped { fault, .. }
                            | CampaignEvent::FaultFinish { fault, .. } = e
                            {
                                if *fault == r {
                                    observer.on_event(&remap_fault(e, o));
                                }
                            }
                        }
                    }
                }
                reports.push(report);
            }
        }
    }
    let completed = reports.len();
    let cancelled = completed < faults.len();
    stats.faults = completed;
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Merge,
            micros: duration_micros(merge_t.elapsed()),
        });
        if cancelled {
            observer.on_event(&CampaignEvent::Cancelled { completed });
        }
        observer.on_event(&CampaignEvent::CampaignEnd {
            faults: completed,
            dropped: stats.faults_dropped,
            pairs: stats.pairs_evaluated,
            words: stats.words_evaluated,
            micros: duration_micros(total_t.elapsed()),
            cancelled,
        });
    }
    Ok(PairCampaign {
        reports,
        stats,
        cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{GateKind, Site};
    use scal_obs::CollectObserver;

    fn xor3() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        c
    }

    fn all_single_faults(c: &Circuit) -> Vec<Override> {
        let mut out = Vec::new();
        for id in c.node_ids() {
            for value in [false, true] {
                out.push(Override {
                    site: Site::Stem(id),
                    value,
                });
            }
        }
        out
    }

    #[test]
    fn xor3_every_stem_fault_detected_everywhere() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let (reports, stats) = run_pair_campaign(&c, &faults, &EngineConfig::default());
        assert_eq!(reports.len(), faults.len());
        assert_eq!(stats.faults, faults.len());
        assert_eq!(stats.faults_dropped, 0);
        for r in &reports {
            // A stuck line in a pure XOR cone kills alternation at every pair.
            assert_eq!(r.detected_pairs, vec![0, 1, 2, 3]);
            assert!(r.violation_pairs.is_empty());
            assert!(r.observable);
            assert!(!r.dropped);
        }
    }

    /// 9 inputs (odd, so XOR is self-dual) -> 256 canonical pairs = four
    /// 64-pair batches.
    fn xor9() -> Circuit {
        let mut c = Circuit::new();
        let ins: Vec<_> = (0..9).map(|i| c.input(format!("x{i}"))).collect();
        let x = c.xor(&ins);
        c.mark_output("p", x);
        c
    }

    /// 11 inputs -> 1024 canonical pairs = 16 batches: several wide groups
    /// even at `W = 8`.
    fn xor11() -> Circuit {
        let mut c = Circuit::new();
        let ins: Vec<_> = (0..11).map(|i| c.input(format!("x{i}"))).collect();
        let x = c.xor(&ins);
        c.mark_output("p", x);
        c
    }

    /// Observer that cancels its token once `done` reaches `after`.
    struct CancelAfter {
        token: CancelToken,
        after: usize,
    }

    impl CampaignObserver for CancelAfter {
        fn on_event(&self, event: &CampaignEvent) {
            if let CampaignEvent::Progress { done, .. } = event {
                if *done >= self.after {
                    self.token.cancel();
                }
            }
        }
    }

    #[test]
    fn drop_mode_flags_and_counts() {
        // XOR cone faults detect in batch 0, so drop mode skips the rest.
        let c = xor9();
        let x = c.outputs()[0].node;
        let faults = vec![Override {
            site: Site::Stem(x),
            value: false,
        }];
        let exact = run_pair_campaign(&c, &faults, &EngineConfig::default());
        let dropped = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                drop_after_detection: true,
                ..EngineConfig::default()
            },
        );
        assert_eq!(exact.0[0].detected_pairs.len(), 256);
        assert_eq!(dropped.0[0].detected_pairs.len(), 64); // first batch only
        assert!(dropped.0[0].dropped);
        assert_eq!(dropped.1.faults_dropped, 1);
        assert!(dropped.1.pairs_evaluated < exact.1.pairs_evaluated);
    }

    #[test]
    #[should_panic(expected = "does not alternate")]
    fn rejects_non_alternating_networks() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]); // AND is not self-dual
        c.mark_output("f", g);
        let _ = run_pair_campaign(&c, &[], &EngineConfig::default());
    }

    #[test]
    fn try_run_reports_misuse_as_errors() {
        let mut seq = Circuit::new();
        let ff = seq.dff(false);
        let nq = seq.not(ff);
        seq.connect_dff(ff, nq);
        seq.mark_output("q", ff);
        match try_run_pair_campaign(&seq, &[], &EngineConfig::default(), &NullObserver, None) {
            Err(EngineError::Sequential) => {}
            other => panic!("expected Sequential, got {other:?}"),
        }
        let mut none = Circuit::new();
        let k = none.constant(true);
        none.mark_output("f", k);
        match try_run_pair_campaign(&none, &[], &EngineConfig::default(), &NullObserver, None) {
            Err(EngineError::UnsupportedInputs { inputs: 0 }) => {}
            other => panic!("expected UnsupportedInputs, got {other:?}"),
        }
    }

    /// All single stuck-at faults, stems and branch pins alike.
    fn all_faults(c: &Circuit) -> Vec<Override> {
        let mut out = Vec::new();
        for id in c.node_ids() {
            for value in [false, true] {
                out.push(Override {
                    site: Site::Stem(id),
                    value,
                });
                for pin in 0..c.fanins(id).len() {
                    out.push(Override {
                        site: Site::Branch { node: id, pin },
                        value,
                    });
                }
            }
        }
        out
    }

    /// A self-dual multi-output circuit with reconvergent fanout: a full
    /// adder (3-input XOR sum, majority carry).
    fn full_adder() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let ci = c.input("ci");
        let s = c.xor(&[a, b, ci]);
        let maj = c.gate(GateKind::Majority, &[a, b, ci]);
        c.mark_output("s", s);
        c.mark_output("co", maj);
        c
    }

    #[test]
    fn eval_mode_parses_and_displays() {
        assert_eq!("full".parse::<EvalMode>().unwrap(), EvalMode::Full);
        assert_eq!("cone".parse::<EvalMode>().unwrap(), EvalMode::Cone);
        assert_eq!(EvalMode::Cone.to_string(), "cone");
        assert_eq!(EvalMode::default(), EvalMode::Cone);
        match "both".parse::<EvalMode>() {
            Err(EngineError::InvalidConfig { reason }) => assert!(reason.contains("both")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    /// Cone-restricted evaluation — cached and streaming alike — must be
    /// bit-identical to the full-schedule oracle on every report field and
    /// every work counter, with and without fault dropping.
    #[test]
    fn cone_matches_full_on_every_fault() {
        for circuit in [xor3(), full_adder()] {
            let faults = all_faults(&circuit);
            for drop_after_detection in [false, true] {
                let full = run_pair_campaign(
                    &circuit,
                    &faults,
                    &EngineConfig {
                        drop_after_detection,
                        eval_mode: EvalMode::Full,
                        // Auto-packing would force full mode on these small
                        // circuits; pin the pattern path under test.
                        fault_packing: Toggle::Off,
                        ..EngineConfig::default()
                    },
                );
                // golden_cache_bytes: 1 cannot hold any batch, forcing the
                // streaming fallback.
                for golden_cache_bytes in [0, 1] {
                    let cone = run_pair_campaign(
                        &circuit,
                        &faults,
                        &EngineConfig {
                            drop_after_detection,
                            eval_mode: EvalMode::Cone,
                            golden_cache_bytes,
                            fault_packing: Toggle::Off,
                            ..EngineConfig::default()
                        },
                    );
                    assert_eq!(full.0, cone.0, "cache budget {golden_cache_bytes}");
                    assert_eq!(full.1.pairs_evaluated, cone.1.pairs_evaluated);
                    assert_eq!(full.1.words_evaluated, cone.1.words_evaluated);
                    assert_eq!(full.1.faults_dropped, cone.1.faults_dropped);
                }
            }
        }
    }

    #[test]
    fn cone_mode_emits_mode_and_stats_events() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            // Auto-packing would force full mode on xor3; pin the cone path.
            fault_packing: Toggle::Off,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        let events = collect.events();
        assert!(
            matches!(
                events.get(1),
                Some(CampaignEvent::EvalMode { mode: "cone" })
            ),
            "eval_mode must follow campaign_start"
        );
        let stats: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::ConeStats {
                    fault,
                    cone_ops,
                    ops_evaluated,
                    ops_skipped,
                    ..
                } => Some((*fault, *cone_ops, *ops_evaluated, *ops_skipped)),
                _ => None,
            })
            .collect();
        assert_eq!(stats.len(), faults.len(), "one cone_stats per fault");
        assert_eq!(
            stats.iter().map(|s| s.0).collect::<Vec<_>>(),
            (0..faults.len()).collect::<Vec<_>>(),
            "cone_stats replayed in fault order"
        );
        // xor3 is a one-gate schedule: every cone is at most that gate, and
        // total accounting must balance against the full-schedule cost.
        for &(_, cone_ops, ops_evaluated, ops_skipped) in &stats {
            assert!(cone_ops <= 1);
            assert!(ops_evaluated + ops_skipped >= ops_evaluated);
        }
        let full_collect = CollectObserver::default();
        let full_cfg = EngineConfig {
            threads: 1,
            eval_mode: EvalMode::Full,
            fault_packing: Toggle::Off,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &full_cfg, &full_collect, None).unwrap();
        let full_events = full_collect.events();
        assert!(
            matches!(
                full_events.get(1),
                Some(CampaignEvent::EvalMode { mode: "full" })
            ),
            "full mode still announces itself"
        );
        assert!(
            !full_events
                .iter()
                .any(|e| matches!(e, CampaignEvent::ConeStats { .. })),
            "full mode emits no cone stats"
        );
    }

    #[test]
    fn config_builder_validates() {
        let cfg = EngineConfig::builder()
            .threads(2)
            .drop_after_detection(true)
            .eval_mode(EvalMode::Full)
            .golden_cache_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 2);
        assert!(cfg.drop_after_detection);
        assert_eq!(cfg.eval_mode, EvalMode::Full);
        assert_eq!(cfg.golden_cache_bytes, 1 << 20);
        match EngineConfig::builder().threads(MAX_THREADS + 1).build() {
            Err(EngineError::InvalidConfig { reason }) => {
                assert!(reason.contains("threads"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn stats_summary_mentions_throughput() {
        let c = xor3();
        let (_, stats) = run_pair_campaign(&c, &all_single_faults(&c), &EngineConfig::default());
        assert!(stats.summary().contains("patterns/s"));
        assert!(stats.pairs_evaluated > 0);
        assert!(stats.words_evaluated > 0);
    }

    #[test]
    fn patterns_per_sec_never_divides_by_zero() {
        let zeroed = EngineStats::default();
        assert_eq!(zeroed.patterns_per_sec(), 0.0);
        assert_eq!(zeroed.patterns_per_sec_wall(), 0.0);
        let timeless = EngineStats {
            pairs_evaluated: 1000,
            ..EngineStats::default()
        };
        assert_eq!(timeless.patterns_per_sec(), 0.0);
        let real = EngineStats {
            pairs_evaluated: 1000,
            fault_sim_time: Duration::from_millis(10),
            ..EngineStats::default()
        };
        assert!(real.patterns_per_sec().is_finite());
        assert!(real.patterns_per_sec() > 0.0);
    }

    #[test]
    fn patterns_per_sec_uses_eval_time_not_phase_wall() {
        // 10 ms of wall clock but only 2 ms inside the sweeps: throughput
        // must be computed over the eval time, so it is 5x the wall figure.
        let stats = EngineStats {
            pairs_evaluated: 1000,
            fault_sim_time: Duration::from_millis(10),
            eval_time: Duration::from_millis(2),
            ..EngineStats::default()
        };
        let eval_rate = stats.patterns_per_sec();
        let wall_rate = stats.patterns_per_sec_wall();
        assert!((eval_rate - 1_000_000.0).abs() < 1e-6);
        assert!((wall_rate - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn campaign_records_eval_time() {
        let c = xor3();
        let (_, stats) = run_pair_campaign(&c, &all_single_faults(&c), &EngineConfig::default());
        assert!(stats.eval_time > Duration::ZERO || stats.pairs_evaluated < 100);
        // Eval time is contained within the phase it happens in (single
        // thread), modulo the sub-microsecond truncation per fault.
        assert!(stats.eval_time <= stats.fault_sim_time + Duration::from_millis(1));
    }

    #[test]
    fn observer_sees_spans_levels_and_first_detected() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        let events = collect.events();
        for span in ["levelize", "pack", "compile_mem", "eval_batch"] {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, CampaignEvent::Span { name, .. } if *name == span)),
                "missing span {span}"
            );
        }
        // xor3 is a single-gate schedule: one level of one gate.
        assert!(events
            .iter()
            .any(|e| matches!(e, CampaignEvent::LevelGates { level: 0, gates: 1 })));
        // Every fault in the XOR cone detects at the very first pair.
        for e in &events {
            if let CampaignEvent::FaultFinish { first_detected, .. } = e {
                assert_eq!(*first_detected, Some(0));
            }
        }
    }

    #[test]
    fn forced_multithreading_matches_inline() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let inline = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        );
        // Clamping normally keeps this inline; drive the worker path by
        // giving it enough faults per thread.
        let many: Vec<Override> = faults
            .iter()
            .cycle()
            .take(faults.len() * 8)
            .copied()
            .collect();
        let (multi, _) = run_pair_campaign(
            &c,
            &many,
            &EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        for (i, r) in multi.iter().enumerate() {
            assert_eq!(r, &inline.0[i % faults.len()]);
        }
    }

    #[test]
    fn observer_sees_deterministic_fault_ordered_events() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        };
        let run = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        assert!(!run.cancelled);
        let events = collect.events();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::CampaignStart {
                campaign: "pair",
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(CampaignEvent::CampaignEnd {
                cancelled: false,
                ..
            })
        ));
        // Per-fault events arrive in fault order during the merge replay.
        let finish_order: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::FaultFinish { fault, .. } => Some(*fault),
                _ => None,
            })
            .collect();
        assert_eq!(finish_order, (0..faults.len()).collect::<Vec<_>>());
        // All four phases opened and closed.
        for phase in [Phase::Compile, Phase::Golden, Phase::FaultSim, Phase::Merge] {
            assert!(events
                .iter()
                .any(|e| matches!(e, CampaignEvent::PhaseStart { phase: p } if *p == phase)));
            assert!(events
                .iter()
                .any(|e| matches!(e, CampaignEvent::PhaseEnd { phase: p, .. } if *p == phase)));
        }
    }

    #[test]
    fn pre_cancelled_run_returns_empty_prefix() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let token = CancelToken::new();
        token.cancel();
        let run = try_run_pair_campaign(
            &c,
            &faults,
            &EngineConfig::default(),
            &NullObserver,
            Some(&token),
        )
        .unwrap();
        assert!(run.cancelled);
        assert!(run.reports.is_empty());
        assert_eq!(run.stats.faults, 0);
        assert_eq!(run.stats.pairs_evaluated, 0);
    }

    #[test]
    fn cancelled_prefix_is_bit_identical_to_uncancelled_run() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let (full, _) = run_pair_campaign(&c, &faults, &EngineConfig::default());
        // Cancel from an observer after the third fault completes: the
        // returned prefix must match the uncancelled run exactly.
        let token = CancelToken::new();
        let obs = CancelAfter {
            token: token.clone(),
            after: 3,
        };
        let cfg = EngineConfig {
            threads: 1,
            // Auto-packing would sweep all of xor3's faults in one chunk,
            // leaving nothing to cancel; pin the per-fault path.
            fault_packing: Toggle::Off,
            ..EngineConfig::default()
        };
        let run = try_run_pair_campaign(&c, &faults, &cfg, &obs, Some(&token)).unwrap();
        assert!(run.cancelled);
        assert_eq!(run.reports.len(), 3);
        assert_eq!(run.stats.faults, 3);
        assert_eq!(&run.reports[..], &full[..3]);
    }

    /// Every word width must be bit-identical to `W = 1` on reports and
    /// work counters, across eval modes and drop settings — single-batch
    /// circuits, a 4-batch circuit (padding at `W = 8`), and a 16-batch
    /// circuit (several wide groups per fault).
    #[test]
    fn wide_widths_match_scalar_reports() {
        for circuit in [xor3(), full_adder(), xor9(), xor11()] {
            let faults = all_faults(&circuit);
            for eval_mode in [EvalMode::Full, EvalMode::Cone] {
                for drop_after_detection in [false, true] {
                    let base = run_pair_campaign(
                        &circuit,
                        &faults,
                        &EngineConfig {
                            word_width: 1,
                            eval_mode,
                            drop_after_detection,
                            ..EngineConfig::default()
                        },
                    );
                    for width in [4, 8] {
                        let wide = run_pair_campaign(
                            &circuit,
                            &faults,
                            &EngineConfig {
                                word_width: width,
                                eval_mode,
                                drop_after_detection,
                                ..EngineConfig::default()
                            },
                        );
                        assert_eq!(base.0, wide.0, "width {width} mode {eval_mode}");
                        assert_eq!(base.1.pairs_evaluated, wide.1.pairs_evaluated);
                        assert_eq!(base.1.words_evaluated, wide.1.words_evaluated);
                        assert_eq!(base.1.faults_dropped, wide.1.faults_dropped);
                    }
                }
            }
        }
    }

    /// Fault-packed campaigns must reproduce the unpacked reports and pair
    /// accounting exactly, at every width, with and without dropping, and
    /// across multiple 63-fault chunks.
    #[test]
    fn fault_packed_matches_unpacked() {
        let c = xor9();
        let base_faults = all_faults(&c);
        let faults: Vec<Override> = base_faults.iter().cycle().take(100).copied().collect();
        for drop_after_detection in [false, true] {
            let plain = run_pair_campaign(
                &c,
                &faults,
                &EngineConfig {
                    drop_after_detection,
                    ..EngineConfig::default()
                },
            );
            for width in [1, 8] {
                let packed = run_pair_campaign(
                    &c,
                    &faults,
                    &EngineConfig {
                        fault_packing: Toggle::On,
                        word_width: width,
                        drop_after_detection,
                        ..EngineConfig::default()
                    },
                );
                assert_eq!(
                    plain.0, packed.0,
                    "width {width} drop {drop_after_detection}"
                );
                assert_eq!(plain.1.pairs_evaluated, packed.1.pairs_evaluated);
                assert_eq!(plain.1.faults_dropped, packed.1.faults_dropped);
            }
        }
    }

    /// Pins the 2-D throughput arithmetic: pairs count per (fault, pair)
    /// cell, never per sweep, and retired lanes stop counting at the end of
    /// their detecting batch.
    #[test]
    fn fault_packed_pairs_accounting_is_exact() {
        let c = xor9();
        // Four input-stem faults: each flips the XOR output in exactly one
        // period of every pair, so each is detected at every pair and drops
        // at the end of batch 0.
        let faults = all_single_faults(&c)[..4].to_vec();
        let exact = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                fault_packing: Toggle::On,
                ..EngineConfig::default()
            },
        );
        assert_eq!(exact.1.pairs_evaluated, 4 * 256);
        let dropped = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                fault_packing: Toggle::On,
                drop_after_detection: true,
                ..EngineConfig::default()
            },
        );
        assert_eq!(dropped.1.pairs_evaluated, 4 * 64);
        assert_eq!(dropped.1.faults_dropped, 4);
        let plain = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                drop_after_detection: true,
                ..EngineConfig::default()
            },
        );
        assert_eq!(plain.1.pairs_evaluated, dropped.1.pairs_evaluated);
    }

    #[test]
    fn fault_packed_emits_lane_geometry_and_full_mode() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            fault_packing: Toggle::On,
            word_width: 4,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        let events = collect.events();
        assert!(
            matches!(
                events.get(1),
                Some(CampaignEvent::EvalMode { mode: "full" })
            ),
            "fault packing forces full-schedule evaluation"
        );
        assert!(matches!(
            events.get(2),
            Some(CampaignEvent::LaneGeometry {
                width: 4,
                fault_lanes: 63,
                pattern_lanes: 4,
                packing: "fault",
            })
        ));
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, CampaignEvent::BatchDone { .. })),
            "fault-packed sweeps report lane batches, not per-fault batches"
        );
        assert!(events.iter().any(
            |e| matches!(e, CampaignEvent::LaneBatch { lanes, .. } if *lanes == faults.len())
        ));
        let finish: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::FaultFinish { fault, .. } => Some(*fault),
                _ => None,
            })
            .collect();
        assert_eq!(finish, (0..faults.len()).collect::<Vec<_>>());
    }

    #[test]
    fn pattern_path_emits_lane_geometry() {
        let c = xor3();
        let faults = all_single_faults(&c);
        let collect = CollectObserver::default();
        let cfg = EngineConfig {
            threads: 1,
            word_width: 4,
            // Auto would pick fault packing for xor3's tiny pattern count;
            // pin the pattern-major geometry under test.
            fault_packing: Toggle::Off,
            ..EngineConfig::default()
        };
        let _ = try_run_pair_campaign(&c, &faults, &cfg, &collect, None).unwrap();
        assert!(matches!(
            collect.events().get(2),
            Some(CampaignEvent::LaneGeometry {
                width: 4,
                fault_lanes: 0,
                pattern_lanes: 256,
                packing: "pattern",
            })
        ));
    }

    /// Cancellation under fault packing discards whole chunks: the returned
    /// prefix is the completed chunks' faults, bit-identical to the same
    /// prefix of an uncancelled run.
    #[test]
    fn fault_packed_cancel_returns_chunk_prefix() {
        let c = xor9();
        let faults: Vec<Override> = all_faults(&c).iter().cycle().take(150).copied().collect();
        let full = run_pair_campaign(
            &c,
            &faults,
            &EngineConfig {
                fault_packing: Toggle::On,
                fault_collapse: Toggle::Off,
                ..EngineConfig::default()
            },
        );
        let token = CancelToken::new();
        let obs = CancelAfter {
            token: token.clone(),
            after: 63,
        };
        let cfg = EngineConfig {
            threads: 1,
            fault_packing: Toggle::On,
            // The cycled fault list collapses below one 63-lane chunk,
            // leaving nothing to cancel; pin collapsing off so the second
            // chunk exists to be discarded.
            fault_collapse: Toggle::Off,
            ..EngineConfig::default()
        };
        let run = try_run_pair_campaign(&c, &faults, &cfg, &obs, Some(&token)).unwrap();
        assert!(run.cancelled);
        assert_eq!(
            run.reports.len(),
            63,
            "first chunk completed, second discarded"
        );
        assert_eq!(run.stats.faults, 63);
        assert_eq!(&run.reports[..], &full.0[..63]);
    }

    #[test]
    fn builder_validates_word_width() {
        let cfg = EngineConfig::builder()
            .word_width(8)
            .fault_packing(true)
            .build()
            .unwrap();
        assert_eq!(cfg.word_width, 8);
        assert_eq!(cfg.fault_packing, Toggle::On);
        assert_eq!(cfg.fault_collapse, Toggle::Auto);
        match EngineConfig::builder().word_width(3).build() {
            Err(EngineError::InvalidConfig { reason }) => {
                assert!(reason.contains("word width"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
