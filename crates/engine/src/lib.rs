//! # scal-engine — the fault-campaign simulation engine
//!
//! Everything upstream of this crate (faults, exhaustive analysis, sequential
//! campaigns, benches) ultimately asks one question many times over: *what do
//! the outputs of this circuit do under this stuck line?* The seed answered
//! it by walking the [`scal_netlist::Circuit`] graph afresh on every
//! evaluation — re-deriving the topological order, allocating value vectors,
//! and linearly scanning the override list at every node. This crate replaces
//! that with a compile-once / evaluate-many pipeline:
//!
//! 1. **Compile** ([`CompiledCircuit`]): the circuit is levelized once into a
//!    flat array of gate ops over dense value *slots* (one per node, plus two
//!    constant slots). No graph chasing and no allocation happen after this
//!    point.
//! 2. **Pack** ([`Evaluator`]): evaluation is 64-lane bit-parallel — each
//!    `u64` word carries 64 independent patterns. The alternating-pair
//!    campaign evaluates 64 pairs per sweep and classifies them with
//!    word-wide XOR/AND masks instead of per-lane branching. Fault overrides
//!    are installed as dense slot forces and fanin patches, not searched per
//!    node.
//! 3. **Fan out** ([`run_pair_campaign`], [`par_map`]): faults are
//!    independent, so they are spread across a scoped worker pool
//!    (`std::thread::scope`, no external dependencies) with deterministic
//!    fault-ordered aggregation. [`EngineConfig::drop_after_detection`]
//!    optionally stops simulating a fault once it is proven tested; the
//!    default *exact* mode preserves the full per-pair accounting of the
//!    scalar reference implementation bit for bit.
//! 4. **Report** ([`EngineStats`]): compile / golden / fault-simulation wall
//!    times, words evaluated, pairs simulated and faults dropped, surfaced by
//!    `scal-bench`.
//!
//! Faulty sweeps default to *cone-restricted* evaluation
//! ([`EvalMode::Cone`]): compilation extracts each fault's transitive fanout
//! cone, the golden sweep caches every slot word, and per fault only the
//! cone ops run — seeded from the cached golden values, classified over the
//! reachable outputs only, with an early exit as soon as the faulty frontier
//! converges back to golden. [`EvalMode::Full`] re-evaluates the whole
//! schedule and is kept as the differential oracle; both modes are
//! bit-identical in everything but speed. Sequential replays get the same
//! treatment through [`GoldenTrace`] and [`ConeSim`], with the cone widened
//! across the D→Q arc to a fixed point. On top of that, sequential
//! campaigns can pack up to 63 faults into the lanes of one word
//! ([`PackedSeqSim`]): lane 0 replays the golden machine, every other lane
//! one fault (masked per-lane stem forces, auxiliary branch slots, masked
//! D-latch blends), so a whole batch replays the driven sequence in a
//! single pass over the schedule per period.
//!
//! The fallible entry points ([`try_run_pair_campaign`],
//! [`CompiledCircuit::try_compile`], [`Evaluator::try_eval`]) return
//! [`EngineError`] instead of panicking; the legacy panicking wrappers
//! remain and format those errors verbatim. [`try_run_pair_campaign`] also
//! threads a [`scal_obs::CampaignObserver`] through every phase of a run
//! (spans, per-fault events, live progress) and honors a
//! [`scal_obs::CancelToken`] at batch boundaries, returning a deterministic
//! fault-ordered prefix on cancellation — see [`PairCampaign`].
//!
//! The crate speaks the netlist vocabulary ([`scal_netlist::Override`] /
//! [`scal_netlist::Site`]); `scal-faults` layers fault bookkeeping on top and
//! keeps its original scalar implementation as a differential oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod collapse;
mod compile;
mod error;
mod eval;
mod pool;
mod sim;
mod tables;
mod word;

pub use campaign::{
    run_pair_campaign, try_run_pair_campaign, EngineConfig, EngineConfigBuilder, EngineStats,
    EvalMode, PairCampaign, PairReport, Toggle, MAX_THREADS,
};
pub use collapse::{
    collapse_overrides, resolve_fault_collapse, CollapsedFaultList, SCAL_FAULT_COLLAPSE_ENV,
};
pub use compile::{CompileSpans, CompiledCircuit};
pub use error::EngineError;
pub use eval::{Evaluator, WideEvaluator};
pub use pool::{effective_threads, par_map, par_map_cancellable, resolved_threads};
pub use sim::{
    CompiledSim, ConeSim, ConeSimStats, GoldenTrace, PackedBatchPlan, PackedSeqSim,
    WidePackedBatchPlan, WidePackedSeqSim,
};
pub use tables::{all_node_tables, node_table, output_tables};
pub use word::{
    auto_word_width, detected_cpu_features, resolve_word_width, Word, SCAL_WORD_WIDTH_ENV,
    WORD_WIDTHS,
};
