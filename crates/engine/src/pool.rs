//! Scoped worker-thread fan-out with deterministic aggregation.

use scal_obs::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Work-item threshold below which spawning threads costs more than it buys.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// Resolves a requested thread count (`0` = auto) to the worker count used
/// when work is plentiful: the machine's available parallelism for auto,
/// the request verbatim otherwise. Snapshots record this so numbers stay
/// comparable across machines.
#[must_use]
pub fn resolved_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Resolves a requested thread count against a concrete workload: like
/// [`resolved_threads`], further clamped so no thread would receive fewer
/// than a handful of items. This is the worker count campaign fan-outs
/// actually use (and report in their `campaign_start` events).
#[must_use]
pub fn effective_threads(requested: usize, items: usize) -> usize {
    resolved_threads(requested)
        .min(items / MIN_ITEMS_PER_THREAD)
        .max(1)
}

/// Applies `f` to every item, fanning the work across `threads` scoped worker
/// threads (`0` = auto). Results are returned **in item order** regardless of
/// which worker produced them — campaigns stay deterministic.
///
/// Items are claimed dynamically through a shared atomic cursor, so uneven
/// per-item cost does not idle workers. With one effective thread the items
/// are processed inline with no thread machinery at all.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_cancellable(items, threads, None, |_, i, t| f(i, t))
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

/// Worker-attributed, cancellation-aware fan-out.
///
/// Like [`par_map`], but `f` additionally receives the id of the worker that
/// claimed the item (always `0` inline), and an optional [`CancelToken`] is
/// checked before each claim: once cancelled, no further items are started
/// and their result slots stay `None`. Items already in flight run to
/// completion, so the returned vector may have `Some` entries after the first
/// `None` — callers wanting a deterministic prefix should truncate at the
/// first gap.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map_cancellable<T, R, F>(
    items: &[T],
    threads: usize,
    cancel: Option<&CancelToken>,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    if threads <= 1 {
        for (i, t) in items.iter().enumerate() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                break;
            }
            results[i] = Some(f(0, i, t));
        }
        return results;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(worker, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 1, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn auto_thread_count_small_workload_stays_inline() {
        assert_eq!(effective_threads(0, 3), 1);
        assert_eq!(effective_threads(4, 1000), 4);
        assert_eq!(effective_threads(1, 1000), 1);
    }

    #[test]
    fn cancelled_token_leaves_tail_unprocessed() {
        let items: Vec<usize> = (0..50).collect();
        let token = CancelToken::new();
        token.cancel();
        let out = par_map_cancellable(&items, 1, Some(&token), |_, _, &x| x);
        assert!(out.iter().all(Option::is_none));
        let live = CancelToken::new();
        let out = par_map_cancellable(&items, 1, Some(&live), |w, i, &x| {
            assert_eq!(w, 0);
            assert_eq!(i, x);
            x
        });
        assert!(out.iter().all(Option::is_some));
    }
}
