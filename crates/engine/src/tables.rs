//! Exhaustive truth-table sweeps over a compiled schedule — the engine
//! backend for `scal-analysis`'s exact (Algorithm 3.1) machinery.

use crate::compile::CompiledCircuit;
use crate::eval::Evaluator;
use scal_logic::Tt;
use scal_netlist::{NodeId, Override};

/// Runs `body` once per 64-lane batch of the full input space.
fn for_each_batch(
    compiled: &CompiledCircuit,
    ev: &mut Evaluator,
    mut body: impl FnMut(&Evaluator, usize, usize),
) {
    let n = compiled.num_inputs();
    assert!(
        n <= scal_logic::MAX_VARS,
        "too many inputs for a truth table"
    );
    assert!(
        !compiled.is_sequential(),
        "truth tables are combinational-only"
    );
    let total = 1usize << n;
    let mut words = vec![0u64; n];
    let mut base = 0usize;
    while base < total {
        let lanes = (total - base).min(64);
        for (i, w) in words.iter_mut().enumerate() {
            *w = 0;
            for lane in 0..lanes {
                if ((base + lane) >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        ev.eval(compiled, &words, &[]);
        body(ev, base, lanes);
        base += lanes;
    }
}

fn scatter(tt: &mut Tt, word: u64, base: usize, lanes: usize) {
    for lane in 0..lanes {
        if (word >> lane) & 1 == 1 {
            tt.set((base + lane) as u32, true);
        }
    }
}

/// Truth tables of **all primary outputs** under `overrides`, computed in a
/// single exhaustive sweep (the seed's `node_tt_with` ran one sweep per
/// output).
///
/// # Panics
///
/// Panics if the circuit is sequential or wider than
/// [`scal_logic::MAX_VARS`].
#[must_use]
pub fn output_tables(
    compiled: &CompiledCircuit,
    ev: &mut Evaluator,
    overrides: &[Override],
) -> Vec<Tt> {
    let n = compiled.num_inputs();
    let mut tts = vec![Tt::zero(n); compiled.num_outputs()];
    ev.uninstall();
    ev.install(compiled, overrides);
    for_each_batch(compiled, ev, |ev, base, lanes| {
        for (k, tt) in tts.iter_mut().enumerate() {
            scatter(tt, ev.output(compiled, k), base, lanes);
        }
    });
    ev.uninstall();
    tts
}

/// Truth tables of **every node** (indexed by `NodeId::index`), fault-free,
/// in one exhaustive sweep.
///
/// # Panics
///
/// As [`output_tables`].
#[must_use]
pub fn all_node_tables(compiled: &CompiledCircuit, ev: &mut Evaluator) -> Vec<Tt> {
    let n = compiled.num_inputs();
    let num_nodes = compiled.num_slots - compiled.const_slots.len();
    let mut tts = vec![Tt::zero(n); num_nodes];
    ev.uninstall();
    for_each_batch(compiled, ev, |ev, base, lanes| {
        for (idx, tt) in tts.iter_mut().enumerate() {
            scatter(tt, ev.raw_slot(idx), base, lanes);
        }
    });
    tts
}

/// Truth table of one node under `overrides`.
///
/// # Panics
///
/// As [`output_tables`].
#[must_use]
pub fn node_table(
    compiled: &CompiledCircuit,
    ev: &mut Evaluator,
    node: NodeId,
    overrides: &[Override],
) -> Tt {
    let n = compiled.num_inputs();
    let mut tt = Tt::zero(n);
    ev.uninstall();
    ev.install(compiled, overrides);
    for_each_batch(compiled, ev, |ev, base, lanes| {
        scatter(&mut tt, ev.slot(node), base, lanes);
    });
    ev.uninstall();
    tt
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{Circuit, Site};

    fn unequal_parity() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let w = c.xor(&[a, b]);
        let nd = c.not(d);
        let nw = c.not(w);
        let t1 = c.and(&[w, nd]);
        let t2 = c.and(&[nw, d]);
        let f = c.or(&[t1, t2]);
        c.mark_output("f", f);
        (c, w)
    }

    #[test]
    fn output_tables_match_node_tt_with() {
        let (c, w) = unequal_parity();
        let cc = CompiledCircuit::compile(&c);
        let mut ev = Evaluator::new(&cc);
        for overrides in [
            vec![],
            vec![Override {
                site: Site::Stem(w),
                value: false,
            }],
            vec![Override {
                site: Site::Branch {
                    node: c.outputs()[0].node,
                    pin: 1,
                },
                value: true,
            }],
        ] {
            let fast = output_tables(&cc, &mut ev, &overrides);
            for (k, o) in c.outputs().iter().enumerate() {
                assert_eq!(fast[k], c.node_tt_with(o.node, &overrides));
            }
        }
    }

    #[test]
    fn node_table_matches_node_tt() {
        let (c, w) = unequal_parity();
        let cc = CompiledCircuit::compile(&c);
        let mut ev = Evaluator::new(&cc);
        for id in c.node_ids() {
            assert_eq!(node_table(&cc, &mut ev, id, &[]), c.node_tt(id));
        }
        let ov = [Override {
            site: Site::Stem(w),
            value: true,
        }];
        for id in c.node_ids() {
            assert_eq!(
                node_table(&cc, &mut ev, id, &ov),
                c.node_tt_with(id, &ov),
                "node {id}"
            );
        }
    }
}
