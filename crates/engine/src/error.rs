//! The engine's public error type.
//!
//! The compile/eval/campaign paths originally panicked on every misuse; the
//! fallible `try_*` entry points return [`EngineError`] instead, and the
//! retained panicking wrappers format these errors so their messages (and
//! downstream `should_panic` expectations) are unchanged.

use scal_netlist::NetlistError;
use std::fmt;

/// Everything the engine can reject.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The circuit failed [`scal_netlist::Circuit::validate`].
    InvalidCircuit(NetlistError),
    /// The circuit (or its fanin table) is too large for the engine's `u32`
    /// slot indices.
    TooLarge {
        /// Offending element count.
        count: usize,
    },
    /// A pair campaign was asked to run on a sequential circuit.
    Sequential,
    /// A pair campaign was asked to run outside the supported input range.
    UnsupportedInputs {
        /// Primary-input count of the offending circuit.
        inputs: usize,
    },
    /// A fault-free output failed to alternate — the circuit is not an
    /// alternating network, so pair classification is meaningless.
    NotAlternating {
        /// Offending primary-output index.
        output: usize,
        /// Canonical first-period minterm of the offending pair.
        pair: u32,
    },
    /// An evaluation was driven with the wrong number of words.
    ArityMismatch {
        /// What was mis-sized: `"input"` or `"state"`.
        what: &'static str,
        /// Words expected.
        expected: usize,
        /// Words provided.
        got: usize,
    },
    /// [`crate::Evaluator::install`] was called with overrides already
    /// installed.
    OverridesInstalled,
    /// An [`crate::EngineConfig`] builder value was rejected.
    InvalidConfig {
        /// Human-readable description of the rejected knob.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the historical panic phrasings: the panicking wrappers
            // format this Display and callers assert on these substrings.
            EngineError::InvalidCircuit(e) => {
                write!(f, "circuit must validate before compilation: {e}")
            }
            EngineError::TooLarge { count } => {
                write!(f, "circuit too large for the engine: {count} elements")
            }
            EngineError::Sequential => write!(f, "campaigns are combinational-only"),
            EngineError::UnsupportedInputs { inputs } => {
                write!(f, "campaign supports 1..=24 inputs, circuit has {inputs}")
            }
            EngineError::NotAlternating { output, pair } => write!(
                f,
                "output {output} does not alternate at pair ({pair:b}); not an alternating network"
            ),
            EngineError::ArityMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} arity mismatch: expected {expected}, got {got}"),
            EngineError::OverridesInstalled => {
                write!(f, "uninstall previous overrides first")
            }
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid engine config: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<NetlistError> for EngineError {
    fn from(e: NetlistError) -> Self {
        EngineError::InvalidCircuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_historical_phrasings() {
        assert!(EngineError::Sequential
            .to_string()
            .contains("combinational-only"));
        assert!(EngineError::UnsupportedInputs { inputs: 30 }
            .to_string()
            .contains("1..=24 inputs"));
        assert!(EngineError::NotAlternating { output: 0, pair: 2 }
            .to_string()
            .contains("does not alternate"));
        assert!(EngineError::OverridesInstalled
            .to_string()
            .contains("uninstall previous overrides"));
    }
}
