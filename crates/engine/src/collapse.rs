//! Compile-phase fault collapsing: structural stuck-at equivalence classes
//! and a dominance annotation over the compiled schedule.
//!
//! Two stuck-at faults are *equivalent* when every input assignment yields
//! identical circuit outputs (and, sequentially, identical next states), so
//! simulating one answers for both. The classic gate-local rules over the
//! original-fanin CSR generate the relation:
//!
//! - **AND**: any input s-a-0 ≡ output s-a-0; **NAND**: input s-a-0 ≡
//!   output s-a-1; **OR** / **NOR**: the s-a-1 duals.
//! - **NOT** / single-input inverting gates: input s-a-v ≡ output s-a-¬v;
//!   **BUF** / single-input identity gates: input s-a-v ≡ output s-a-v.
//! - **Fanout-free wires**: when a slot is read by exactly one pin in the
//!   whole circuit and is not a primary output, forcing the stem is
//!   indistinguishable from forcing that one pin — the stem fault merges
//!   into the branch fault (this closes NOT/BUF chains transitively).
//!
//! XOR/XNOR and the paper's minority/majority modules admit no gate-local
//! collapsing: a stuck input is not equivalent to any stuck output.
//!
//! The rules close under union-find; [`collapse_overrides`] then maps a
//! campaign's fault list onto the classes, electing the first-seen member of
//! each class as its *representative*. Campaigns simulate representatives
//! only and expand each representative's verdict over its class at merge
//! time — sound because equivalent faults produce bit-identical per-pair
//! (and per-word) reports, so the expansion reproduces the uncollapsed
//! event stream and coverage map exactly.
//!
//! *Dominance* (AND output s-a-1 dominates each input s-a-1, and the
//! NAND/OR/NOR duals: any test for the dominated fault also tests the
//! dominator) is computed as a class-level edge count but never used to
//! skip simulation: dominance preserves detectability, not the per-pair
//! detection sets and violation counts the coverage map reports.

use crate::campaign::Toggle;
use crate::compile::{CompiledCircuit, NO_OP};
use crate::error::EngineError;
use scal_netlist::{GateKind, Override, Site};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// Environment variable overriding the fault-collapse default when the
/// config leaves it at [`Toggle::Auto`] (accepted values: `0`/`1`, `on`/
/// `off`, `true`/`false`). Collapsing defaults to on.
pub const SCAL_FAULT_COLLAPSE_ENV: &str = "SCAL_FAULT_COLLAPSE";

/// Resolves the effective fault-collapse switch from, in precedence order:
/// the config [`Toggle`] (`On`/`Off` win outright), the
/// [`SCAL_FAULT_COLLAPSE_ENV`] environment variable, and the default (on).
///
/// # Errors
///
/// Returns [`EngineError::InvalidConfig`] when the environment value parses
/// as none of `0`/`1`/`on`/`off`/`true`/`false`.
pub fn resolve_fault_collapse(requested: Toggle) -> Result<bool, EngineError> {
    match requested {
        Toggle::On => Ok(true),
        Toggle::Off => Ok(false),
        Toggle::Auto => match std::env::var(SCAL_FAULT_COLLAPSE_ENV) {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "1" | "on" | "true" => Ok(true),
                "0" | "off" | "false" => Ok(false),
                _ => Err(EngineError::InvalidConfig {
                    reason: format!(
                        "{SCAL_FAULT_COLLAPSE_ENV} must be one of 0/1/on/off/true/false, got {raw:?}"
                    ),
                }),
            },
            Err(_) => Ok(true),
        },
    }
}

/// A campaign fault list collapsed into structural-equivalence classes.
///
/// Representatives are elected in first-occurrence fault-list order, so the
/// representative of every class is also the smallest original index in it —
/// which is what makes cancelled collapsed runs yield the same contiguous
/// original-fault prefix as uncollapsed runs.
#[derive(Debug, Clone)]
pub struct CollapsedFaultList {
    /// For each original fault index, the ordinal of its representative in
    /// [`CollapsedFaultList::reps`].
    pub rep_of: Vec<u32>,
    /// Original fault-list index of each representative, in first-occurrence
    /// order (strictly increasing).
    pub reps: Vec<u32>,
    /// Members of each representative's class within the fault list
    /// (parallel to `reps`).
    pub class_sizes: Vec<u32>,
    /// Structural dominance edges between distinct collapsed classes across
    /// the whole circuit (annotation only — never used to skip simulation).
    pub dominance_edges: usize,
    /// Wall time of the collapsing pass in microseconds.
    pub micros: u64,
}

impl CollapsedFaultList {
    /// Original faults in the list.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.rep_of.len()
    }

    /// Representatives that actually simulate.
    #[must_use]
    pub fn num_reps(&self) -> usize {
        self.reps.len()
    }

    /// Ratio of original faults to representatives (1.0 for an empty list).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.reps.is_empty() {
            1.0
        } else {
            self.rep_of.len() as f64 / self.reps.len() as f64
        }
    }

    /// Longest original-fault prefix fully answered by the first
    /// `completed_reps` representatives — the deterministic prefix a
    /// cancelled collapsed campaign reports. Because representatives are
    /// first-occurrence ordered, original fault `i` is answered iff
    /// `rep_of[i] < completed_reps`.
    #[must_use]
    pub fn completed_prefix(&self, completed_reps: usize) -> usize {
        self.rep_of
            .iter()
            .take_while(|&&r| (r as usize) < completed_reps)
            .count()
    }
}

/// Union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Key layout over the circuit's fault sites: stems, branch pins (flat
/// fanin-CSR indices), and flip-flop D pins, each × 2 stuck values.
struct SiteKeys {
    nodes: usize,
    fanin_len: usize,
}

impl SiteKeys {
    fn total(&self, dffs: usize) -> usize {
        2 * (self.nodes + self.fanin_len + dffs)
    }

    fn stem(&self, slot: usize, value: bool) -> u32 {
        (2 * slot + usize::from(value)) as u32
    }

    fn branch(&self, flat: usize, value: bool) -> u32 {
        (2 * self.nodes + 2 * flat + usize::from(value)) as u32
    }

    fn dff_d(&self, dff: usize, value: bool) -> u32 {
        (2 * (self.nodes + self.fanin_len) + 2 * dff + usize::from(value)) as u32
    }

    /// The union-find key of one override, or `None` for sites the
    /// evaluator ignores (unknown nodes, out-of-range pins) — mirroring
    /// `Evaluator::try_install` / `cone_for` site semantics exactly.
    fn key_of(&self, compiled: &CompiledCircuit, o: &Override) -> Option<u32> {
        match o.site {
            Site::Stem(node) => {
                let slot = node.index();
                (slot < self.nodes).then(|| self.stem(slot, o.value))
            }
            Site::Branch { node, pin } => {
                if let Some(i) = compiled.dff_position(node) {
                    return (pin == 0).then(|| self.dff_d(i, o.value));
                }
                let op_idx = compiled
                    .op_of_node
                    .get(node.index())
                    .copied()
                    .filter(|&i| i != NO_OP)? as usize;
                let op = &compiled.ops[op_idx];
                (pin < op.fan_len as usize)
                    .then(|| self.branch(op.fan_start as usize + pin, o.value))
            }
        }
    }
}

/// Builds the equivalence relation over every fault site of the compiled
/// circuit and returns the closed union-find plus the key layout.
fn build_classes(compiled: &CompiledCircuit) -> (UnionFind, SiteKeys) {
    let keys = SiteKeys {
        nodes: compiled.num_slots - 2,
        fanin_len: compiled.fanins.len(),
    };
    let mut uf = UnionFind::new(keys.total(compiled.dff_slots.len()));

    // Gate-local rules over the original-fanin CSR.
    for op in &compiled.ops {
        let out = op.out as usize;
        let flats = op.fan_start as usize..(op.fan_start + op.fan_len) as usize;
        if op.fan_len == 1 {
            // Single-input gates degenerate to a wire or an inverter.
            let f = op.fan_start as usize;
            match op.kind {
                GateKind::Buf | GateKind::And | GateKind::Or | GateKind::Xor => {
                    for v in [false, true] {
                        uf.union(keys.branch(f, v), keys.stem(out, v));
                    }
                }
                GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor => {
                    for v in [false, true] {
                        uf.union(keys.branch(f, v), keys.stem(out, !v));
                    }
                }
                // Minority/majority (and any future kind) stay uncollapsed.
                _ => {}
            }
            continue;
        }
        // Controlling-value rules: a stuck controlling input fixes the
        // output regardless of the other inputs, exactly like the matching
        // output stuck fault.
        let (in_value, out_value) = match op.kind {
            GateKind::And => (false, false),
            GateKind::Nand => (false, true),
            GateKind::Or => (true, true),
            GateKind::Nor => (true, false),
            _ => continue, // XOR/XNOR/minority/majority: no controlling value
        };
        for f in flats {
            uf.union(keys.branch(f, in_value), keys.stem(out, out_value));
        }
    }

    // Fanout-free wire rule: a slot read by exactly one pin circuit-wide
    // and not observed as a primary output merges its stem faults into that
    // pin's branch faults. Reader pins live in the fanout CSR (gate reads)
    // plus the flip-flop D list; D reads and output observation are not in
    // the CSR, so they are counted separately.
    let mut is_output = vec![false; keys.nodes];
    for &s in &compiled.output_slots {
        is_output[s as usize] = true;
    }
    let mut dff_reads = vec![0u32; keys.nodes];
    for &d in &compiled.dff_d_slots {
        dff_reads[d as usize] += 1;
    }
    for slot in 0..keys.nodes {
        if is_output[slot] {
            continue;
        }
        let gate_reads = (compiled.fanout_start[slot + 1] - compiled.fanout_start[slot]) as usize;
        if gate_reads + dff_reads[slot] as usize != 1 {
            continue;
        }
        if gate_reads == 1 {
            let op_idx = compiled.fanout_ops[compiled.fanout_start[slot] as usize] as usize;
            let op = &compiled.ops[op_idx];
            let flats = op.fan_start as usize..(op.fan_start + op.fan_len) as usize;
            // Unique by construction: the slot has exactly one reading pin.
            if let Some(flat) = flats.clone().find(|&f| compiled.fanins[f] as usize == slot) {
                for v in [false, true] {
                    uf.union(keys.stem(slot, v), keys.branch(flat, v));
                }
            }
        } else if let Some(i) = compiled
            .dff_d_slots
            .iter()
            .position(|&d| d as usize == slot)
        {
            for v in [false, true] {
                uf.union(keys.stem(slot, v), keys.dff_d(i, v));
            }
        }
    }

    (uf, keys)
}

/// Counts structural dominance edges between distinct collapsed classes:
/// AND output s-a-1 dominates each input s-a-1 (NAND/OR/NOR duals), so any
/// test for the input fault also detects the output fault. Counted over the
/// whole circuit as an annotation; never used to drop faults, because
/// dominance preserves only detectability — not the per-pair detection sets
/// the coverage map is required to reproduce bit for bit.
fn count_dominance_edges(compiled: &CompiledCircuit, uf: &mut UnionFind, keys: &SiteKeys) -> usize {
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    for op in &compiled.ops {
        if op.fan_len < 2 {
            continue;
        }
        let (in_value, out_value) = match op.kind {
            GateKind::And => (true, true),
            GateKind::Nand => (true, false),
            GateKind::Or => (false, false),
            GateKind::Nor => (false, true),
            _ => continue,
        };
        let dominator = uf.find(keys.stem(op.out as usize, out_value));
        for f in op.fan_start as usize..(op.fan_start + op.fan_len) as usize {
            let dominated = uf.find(keys.branch(f, in_value));
            if dominated != dominator {
                edges.insert((dominator, dominated));
            }
        }
    }
    edges.len()
}

/// Collapses a campaign fault list (one [`Override`] per fault) into
/// structural-equivalence classes over `compiled`.
///
/// Overrides whose site the evaluator ignores (unknown node, out-of-range
/// pin) fall back to exact `(site, value)` identity, so duplicate no-op
/// faults still merge while distinct ones conservatively stay apart.
#[must_use]
pub fn collapse_overrides(compiled: &CompiledCircuit, faults: &[Override]) -> CollapsedFaultList {
    let t = Instant::now();
    let (mut uf, keys) = build_classes(compiled);

    let mut rep_of = Vec::with_capacity(faults.len());
    let mut reps: Vec<u32> = Vec::new();
    let mut class_sizes: Vec<u32> = Vec::new();
    let mut root_to_rep: HashMap<u32, u32> = HashMap::new();
    // (is_branch, node, pin, value) identity for evaluator-ignored sites.
    let mut invalid_to_rep: BTreeMap<(bool, usize, usize, bool), u32> = BTreeMap::new();
    for (i, o) in faults.iter().enumerate() {
        let elect = |reps: &mut Vec<u32>, class_sizes: &mut Vec<u32>| {
            reps.push(i as u32);
            class_sizes.push(0);
            (reps.len() - 1) as u32
        };
        let rep = match keys.key_of(compiled, o) {
            Some(k) => {
                let root = uf.find(k);
                *root_to_rep
                    .entry(root)
                    .or_insert_with(|| elect(&mut reps, &mut class_sizes))
            }
            None => {
                let id = match o.site {
                    Site::Stem(node) => (false, node.index(), 0, o.value),
                    Site::Branch { node, pin } => (true, node.index(), pin, o.value),
                };
                *invalid_to_rep
                    .entry(id)
                    .or_insert_with(|| elect(&mut reps, &mut class_sizes))
            }
        };
        class_sizes[rep as usize] += 1;
        rep_of.push(rep);
    }

    let dominance_edges = count_dominance_edges(compiled, &mut uf, &keys);
    CollapsedFaultList {
        rep_of,
        reps,
        class_sizes,
        dominance_edges,
        micros: u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::Circuit;

    fn collapse(c: &Circuit, faults: &[Override]) -> CollapsedFaultList {
        collapse_overrides(&CompiledCircuit::compile(c), faults)
    }

    /// `a, b -> g(kind) -> inv -> out` with `a` also feeding a side gate, so
    /// only `b` is fanout-free.
    fn two_input(kind: &str) -> (Circuit, scal_netlist::NodeId, scal_netlist::NodeId) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = match kind {
            "and" => c.and(&[a, b]),
            "nand" => c.nand(&[a, b]),
            "or" => c.or(&[a, b]),
            "nor" => c.nor(&[a, b]),
            "xor" => c.xor(&[a, b]),
            other => panic!("unknown kind {other}"),
        };
        let side = c.xor(&[a, g]);
        c.mark_output("f", side);
        (c, g, b)
    }

    fn same_class(list: &CollapsedFaultList, i: usize, j: usize) -> bool {
        list.rep_of[i] == list.rep_of[j]
    }

    #[test]
    fn and_input_sa0_equals_output_sa0() {
        let (c, g, _) = two_input("and");
        let faults = vec![
            Override::branch(g, 0, false), // in0 s-a-0
            Override::branch(g, 1, false), // in1 s-a-0
            Override::stem(g, false),      // out s-a-0
            Override::branch(g, 0, true),  // in0 s-a-1: NOT equivalent
            Override::stem(g, true),       // out s-a-1: NOT equivalent
        ];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 1) && same_class(&list, 1, 2));
        assert!(!same_class(&list, 3, 4) && !same_class(&list, 0, 3));
        assert_eq!(list.num_reps(), 3);
        assert_eq!(list.reps, vec![0, 3, 4]);
        assert_eq!(list.class_sizes, vec![3, 1, 1]);
        assert!(list.dominance_edges >= 1); // out s-a-1 dominates in s-a-1
    }

    #[test]
    fn nand_input_sa0_equals_output_sa1() {
        let (c, g, _) = two_input("nand");
        let faults = vec![
            Override::branch(g, 0, false),
            Override::stem(g, true),
            Override::stem(g, false),
        ];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 1));
        assert!(!same_class(&list, 0, 2));
    }

    #[test]
    fn or_input_sa1_equals_output_sa1() {
        let (c, g, _) = two_input("or");
        let faults = vec![
            Override::branch(g, 0, true),
            Override::branch(g, 1, true),
            Override::stem(g, true),
            Override::branch(g, 0, false),
        ];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 2) && same_class(&list, 1, 2));
        assert!(!same_class(&list, 3, 2));
    }

    #[test]
    fn nor_input_sa1_equals_output_sa0() {
        let (c, g, _) = two_input("nor");
        let faults = vec![Override::branch(g, 1, true), Override::stem(g, false)];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 1));
    }

    #[test]
    fn xor_admits_no_gate_local_collapsing() {
        let (c, g, _) = two_input("xor");
        let faults = vec![
            Override::branch(g, 0, false),
            Override::branch(g, 1, false),
            Override::stem(g, false),
            Override::stem(g, true),
        ];
        let list = collapse(&c, &faults);
        assert_eq!(list.num_reps(), 4, "every XOR fault is its own class");
    }

    #[test]
    fn inverter_chains_collapse_through_wires() {
        // a -> not -> not -> out: the inner wire is fanout-free, so a stem
        // fault anywhere on the chain folds into one class per polarity.
        let mut c = Circuit::new();
        let a = c.input("a");
        let n1 = c.not(a);
        let n2 = c.not(n1);
        c.mark_output("f", n2);
        let faults = vec![
            Override::stem(a, false),  // ≡ n1 in s-a-0 ≡ n1 out s-a-1
            Override::stem(n1, true),  // ≡ n2 in s-a-1 ≡ n2 out s-a-0
            Override::stem(n2, false), // output stem: the same class
            Override::stem(a, true),   // opposite polarity chain
            Override::stem(n2, true),
        ];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 1) && same_class(&list, 1, 2));
        assert!(same_class(&list, 3, 4));
        assert!(!same_class(&list, 0, 3));
        assert_eq!(list.num_reps(), 2);
    }

    #[test]
    fn fanout_stems_stay_apart_from_branches() {
        // `a` feeds two gates: its stem faults are NOT equivalent to either
        // branch fault.
        let (c, g, _) = two_input("and");
        let a = c.node_ids().next().expect("input a");
        let faults = vec![
            Override::stem(a, false),
            Override::branch(g, 0, false),
            Override::stem(g, false),
        ];
        let list = collapse(&c, &faults);
        assert!(!same_class(&list, 0, 1));
        assert!(same_class(&list, 1, 2)); // AND rule still applies
    }

    #[test]
    fn primary_output_stems_never_wire_collapse() {
        // g drives only the output: observed directly, so out stem s-a-0
        // must stay distinct from a hypothetical downstream pin. Here the
        // AND rule still merges it with input s-a-0 — but the *output* node
        // of the circuit (side) has no reader at all and must be its own
        // class.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let h = c.not(g);
        c.mark_output("f", h);
        let faults = vec![
            Override::stem(g, false),      // fanout-free wire into h
            Override::branch(h, 0, false), // h's pin: same wire class
            Override::stem(h, true),       // h out s-a-1 ≡ h in s-a-0 (NOT rule)
            Override::stem(h, false),      // output stem, own class
        ];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 1) && same_class(&list, 1, 2));
        assert!(!same_class(&list, 2, 3));
    }

    #[test]
    fn dff_d_wire_folds_into_the_d_pin() {
        // not(q) -> d wire is read only by the flip-flop: the wire stem and
        // the D-pin branch fault collapse together.
        let mut c = Circuit::new();
        let ff = c.dff(false);
        let nq = c.not(ff);
        c.connect_dff(ff, nq);
        c.mark_output("q", ff);
        let faults = vec![
            Override::stem(nq, true),
            Override::branch(ff, 0, true),
            Override::stem(ff, true), // Q stem: the output, its own class
        ];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 1));
        assert!(!same_class(&list, 0, 2));
    }

    #[test]
    fn duplicate_and_invalid_faults_merge_by_identity() {
        let (c, g, _) = two_input("and");
        let faults = vec![
            Override::stem(g, false),
            Override::stem(g, false),      // exact duplicate
            Override::branch(g, 7, false), // pin out of range: evaluator no-op
            Override::branch(g, 7, false), // identical no-op merges
            Override::branch(g, 8, false), // distinct no-op stays apart
        ];
        let list = collapse(&c, &faults);
        assert!(same_class(&list, 0, 1));
        assert!(same_class(&list, 2, 3));
        assert!(!same_class(&list, 2, 4));
        assert_eq!(list.num_reps(), 3);
    }

    #[test]
    fn prefix_accounting_follows_first_occurrence_reps() {
        let (c, g, _) = two_input("and");
        let faults = vec![
            Override::branch(g, 0, false), // rep 0
            Override::stem(g, false),      // class of rep 0
            Override::stem(g, true),       // rep 1
            Override::branch(g, 1, false), // class of rep 0
        ];
        let list = collapse(&c, &faults);
        assert_eq!(list.rep_of, vec![0, 0, 1, 0]);
        assert_eq!(list.completed_prefix(0), 0);
        assert_eq!(list.completed_prefix(1), 2); // faults 0,1 answered by rep 0
        assert_eq!(list.completed_prefix(2), 4);
        assert!((list.ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resolve_honors_config_then_env() {
        assert!(resolve_fault_collapse(Toggle::On).unwrap());
        assert!(!resolve_fault_collapse(Toggle::Off).unwrap());
        // Auto consults the env; without it the default is on. (The env var
        // is process-global, so only the unset path is asserted here — the
        // env-sensitive paths are covered by the differential CI matrix.)
        if std::env::var(SCAL_FAULT_COLLAPSE_ENV).is_err() {
            assert!(resolve_fault_collapse(Toggle::Auto).unwrap());
        }
    }
}
