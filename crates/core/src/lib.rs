//! Self-checking alternating logic (SCAL): the paper's primary contribution
//! as a library.
//!
//! An **alternating network** realizes a self-dual function and is driven
//! with the input sequence `(X, X̄)`; fault-free, it must answer with the
//! alternating pair `(F(X), F̄(X))` (Definition 2.5). A **SCAL network** is an
//! alternating network that is *self-checking* — self-testing and
//! fault-secure — under the single stuck-at model (Definitions 2.4/2.6).
//!
//! This crate ties the substrates together:
//!
//! * [`dualize`] / [`dualize_synthesized`] — convert an arbitrary
//!   combinational netlist into an alternating network by adding the single
//!   period-clock input `φ` (Yamamoto's construction behind Theorem 2.1),
//!   either structurally or by re-synthesis;
//! * [`verify`] — the exhaustive verification engine: every collapsed single
//!   stuck-at fault against every alternating input pair, yielding a
//!   [`ScalVerdict`] that reports alternation, fault security (no incorrect
//!   alternating outputs, Theorem 3.1) and self-testing;
//! * [`drive`] — helpers to enumerate and apply alternating input pairs;
//! * [`paper`] — the canonical networks of the paper (the self-dual adder of
//!   Fig. 2.2, the multi-output example of Figs. 3.4/3.7, the §3.2
//!   test-derivation example), used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use scal_netlist::Circuit;
//! use scal_core::{dualize_synthesized, verify};
//!
//! // AND is not self-dual; dualize it and verify it is SCAL.
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let g = c.and(&[a, b]);
//! c.mark_output("f", g);
//!
//! let alt = dualize_synthesized(&c);
//! let verdict = verify(&alt).unwrap();
//! assert!(verdict.is_self_checking());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
mod dualize;
pub mod paper;
mod verify;

pub use dualize::{dualize, dualize_synthesized};
pub use verify::{
    faults_excluding_clock, verify, verify_with, ScalVerdict, VerifyError, Violation,
};
