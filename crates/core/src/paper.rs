//! Canonical networks from the paper, used by the tests, examples, and the
//! experiment harness.
//!
//! Where the report scan's schematics are unreadable (they are 1977
//! microfiche), networks are *reconstructed* from the functions and worked
//! equations in the text; every reconstruction is verified to exhibit the
//! same mechanisms the paper derives (see DESIGN.md, "Substitutions").

use crate::dualize::{synthesize_sop, InverterRail};
use scal_logic::Tt;
use scal_netlist::{Circuit, NodeId, Site};

/// The self-dual one-bit full adder of Fig. 2.2 (after Liu et al.'s optimal
/// adder): `sum = a⊕b⊕cin`, `carry = MAJ(a,b,cin)` — both self-dual, so the
/// adder is an alternating network *with no added hardware at all*, the
/// paper's flagship "free SCAL" example.
///
/// Realized as two-level NAND-NAND logic over a shared input-inverter rail;
/// the result is verified self-checking by `scal_core::verify` in this
/// crate's tests.
#[must_use]
pub fn self_dual_adder() -> Circuit {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let ci = c.input("cin");
    let na = c.not(a);
    let nb = c.not(b);
    let nci = c.not(ci);
    // sum = odd parity: minterms {100, 010, 001, 111} of (a,b,cin).
    let s1 = c.nand(&[a, nb, nci]);
    let s2 = c.nand(&[na, b, nci]);
    let s3 = c.nand(&[na, nb, ci]);
    let s4 = c.nand(&[a, b, ci]);
    let sum = c.nand(&[s1, s2, s3, s4]);
    // carry = majority.
    let c1 = c.nand(&[a, b]);
    let c2 = c.nand(&[a, ci]);
    let c3 = c.nand(&[b, ci]);
    let carry = c.nand(&[c1, c2, c3]);
    c.mark_output("sum", sum);
    c.mark_output("carry", carry);
    c
}

/// A ripple-carry n-bit adder made of [`self_dual_adder`] slices. All
/// outputs are self-dual (each bit is parity/majority of self-dual inputs by
/// induction), so the whole adder is an alternating network.
///
/// # Panics
///
/// Panics if `bits == 0`.
#[must_use]
pub fn ripple_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit");
    let slice = self_dual_adder();
    let mut c = Circuit::new();
    let xs: Vec<NodeId> = (0..bits).map(|i| c.input(format!("a{i}"))).collect();
    let ys: Vec<NodeId> = (0..bits).map(|i| c.input(format!("b{i}"))).collect();
    let mut carry = c.input("cin");
    for i in 0..bits {
        let outs = c.import(&slice, &[xs[i], ys[i], carry]);
        c.mark_output(format!("s{i}"), outs[0]);
        carry = outs[1];
    }
    c.mark_output("cout", carry);
    c
}

/// The reconstructed multiple-output example of Figs. 3.4/3.5 (see §3.6).
///
/// Outputs (all self-dual):
///
/// * `F1 = MAJ(ā, b, c) = āb ∨ āc ∨ bc`
/// * `F2 = a ⊕ b ⊕ c`
/// * `F3 = MAJ(a, b, c)`
///
/// with genuine logic sharing engineered to reproduce the worked example's
/// mechanisms:
///
/// * [`Fig34::line9`] — a NAND stem shared between F2's XOR chain and F3.
///   Stuck-at-0 it makes **F2 alternate incorrectly**, but F3 simultaneously
///   goes non-alternating: Corollary 3.2 rescues it (the paper's line 9).
/// * [`Fig34::line20`] — the `a⊕b` stem feeding F2's unequal-parity
///   reconvergence. Its stuck faults (and the stuck-at-0 faults of the two
///   NANDs that force it constant) produce undetected incorrect alternating
///   outputs: the network is **not** self-checking (the paper's line 20).
#[derive(Debug, Clone)]
pub struct Fig34 {
    /// The network.
    pub circuit: Circuit,
    /// The rescued shared stem (paper line 9).
    pub line9: Site,
    /// The offending stem (paper line 20).
    pub line20: Site,
    /// The stem shared harmlessly between F1 and F3 (NAND(b,c)).
    pub shared_bc: Site,
    /// Human-readable labels for the interesting stems, in a stable order.
    pub labels: Vec<(Site, &'static str)>,
}

/// Builds the Fig. 3.4 reconstruction. See [`Fig34`].
#[must_use]
pub fn fig3_4() -> Fig34 {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let d = c.input("c");

    // Shared stem "line 9": n1 = NAND(a, b).
    let n1 = c.nand(&[a, b]);
    c.set_name(n1, "line9");
    // x = a ⊕ b from NANDs reusing n1.
    let ta = c.nand(&[a, n1]);
    c.set_name(ta, "line13");
    let tb = c.nand(&[b, n1]);
    c.set_name(tb, "line14");
    let x = c.nand(&[ta, tb]);
    c.set_name(x, "line20");
    // F2 = x ⊕ c via the unequal-parity AND/OR reconvergence on x.
    let nd = c.not(d);
    let nx = c.not(x);
    let t1 = c.and(&[x, nd]);
    let t2 = c.and(&[nx, d]);
    let f2 = c.or(&[t1, t2]);
    // F3 = MAJ(a,b,c) sharing n1 and (with F1) NAND(b,c).
    let nad = c.nand(&[a, d]);
    let nbd = c.nand(&[b, d]);
    c.set_name(nbd, "line19");
    let f3 = c.nand(&[n1, nad, nbd]);
    // F1 = MAJ(ā,b,c) sharing NAND(b,c) with F3.
    let na = c.not(a);
    let m1 = c.nand(&[na, b]);
    let m2 = c.nand(&[na, d]);
    let f1 = c.nand(&[m1, m2, nbd]);

    c.mark_output("F1", f1);
    c.mark_output("F2", f2);
    c.mark_output("F3", f3);

    Fig34 {
        circuit: c,
        line9: Site::Stem(n1),
        line20: Site::Stem(x),
        shared_bc: Site::Stem(nbd),
        labels: vec![
            (Site::Stem(n1), "9  = NAND(a,b)  (shared F2/F3)"),
            (Site::Stem(ta), "13 = NAND(a,9)"),
            (Site::Stem(tb), "14 = NAND(b,9)"),
            (Site::Stem(nbd), "19 = NAND(b,c)  (shared F1/F3)"),
            (Site::Stem(x), "20 = a XOR b    (F2 only, fans out)"),
        ],
    }
}

/// The Fig. 3.7 fix of the Fig. 3.4 network: the XOR subnetwork feeding F2's
/// reconvergent stage is duplicated so that "line 20" no longer fans out —
/// each of the two reconvergent terms gets its own copy with disjoint
/// upstream logic, after which every path rule of Algorithm 3.1 is
/// satisfied and the network verifies fully self-checking.
#[must_use]
pub fn fig3_7() -> Fig34 {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let d = c.input("c");

    // Copy 1 of x = a⊕b (feeds the x·c̄ term). n1 stays shared with F3.
    let n1 = c.nand(&[a, b]);
    let ta = c.nand(&[a, n1]);
    let tb = c.nand(&[b, n1]);
    let x1 = c.nand(&[ta, tb]);
    c.set_name(x1, "line20");
    // Copy 2 (feeds the x̄·c term).
    let n1b = c.nand(&[a, b]);
    let tab = c.nand(&[a, n1b]);
    let tbb = c.nand(&[b, n1b]);
    let x2 = c.nand(&[tab, tbb]);
    c.set_name(x2, "line43");

    let nd = c.not(d);
    let nx = c.not(x2);
    let t1 = c.and(&[x1, nd]);
    let t2 = c.and(&[nx, d]);
    let f2 = c.or(&[t1, t2]);

    let nad = c.nand(&[a, d]);
    let nbd = c.nand(&[b, d]);
    let f3 = c.nand(&[n1, nad, nbd]);

    let na = c.not(a);
    let m1 = c.nand(&[na, b]);
    let m2 = c.nand(&[na, d]);
    let f1 = c.nand(&[m1, m2, nbd]);

    c.mark_output("F1", f1);
    c.mark_output("F2", f2);
    c.mark_output("F3", f3);

    Fig34 {
        circuit: c,
        line9: Site::Stem(n1),
        line20: Site::Stem(x1),
        shared_bc: Site::Stem(nbd),
        labels: vec![
            (Site::Stem(n1), "9  = NAND(a,b) (copy 1, shared with F3)"),
            (Site::Stem(x1), "20 = a XOR b   (copy 1, single fanout)"),
            (Site::Stem(x2), "43 = a XOR b   (copy 2, single fanout)"),
            (Site::Stem(nbd), "19 = NAND(b,c) (shared F1/F3)"),
        ],
    }
}

/// The §3.2 / Fig. 3.1 test-derivation example: a network `F` with an
/// internal line `g` whose Theorem 3.2 analysis yields
///
/// * `A = {1011, 0110}` and `B = {0100, 1001}` (as `x1x2x3x4` strings),
/// * `E = A & B = 0`, and
/// * stuck-at-0 test pairs `(1011, 0100)` and `(0110, 1001)` —
///
/// exactly the sets derived in the text. The network has the shape
/// `F = (g ∧ x3) ∨ R(X)` with `g = G(X) = x̄1x2x̄4 ∨ x1x̄2x4`, and `R` chosen
/// so `F` is self-dual (the scanned cover itself is OCR-damaged; this
/// reconstruction reproduces the derived test sets verbatim).
#[must_use]
pub fn fig3_1_example() -> (Circuit, Site) {
    let mut c = Circuit::new();
    let x1 = c.input("x1");
    let x2 = c.input("x2");
    let x3 = c.input("x3");
    let x4 = c.input("x4");
    let vars = [x1, x2, x3, x4];
    let nx1 = c.not(x1);
    let nx2 = c.not(x2);
    let nx4 = c.not(x4);

    // G = x̄1·x2·x̄4 ∨ x1·x̄2·x4 (independent of x3).
    let g = {
        let t1 = c.and(&[nx1, x2, nx4]);
        let t2 = c.and(&[x1, nx2, x4]);
        c.or(&[t1, t2])
    };
    c.set_name(g, "g");

    // R: ON = {1111, 0001, 1101, 0011, 0101, 1000} (x1 = bit 0 … x4 = bit 3),
    // one from each remaining complement pair, making F self-dual.
    let r_tt = Tt::from_minterms(
        4,
        &[
            0b1111, // x1x2x3x4 = 1111
            0b1000, // 0001
            0b1011, // 1101
            0b1100, // 0011
            0b1010, // 0101
            0b0001, // 1000
        ],
    );
    let mut rail = InverterRail::new(&vars);
    let r = synthesize_sop(&mut c, &vars, &mut rail, &r_tt);

    let gx3 = c.and(&[g, x3]);
    let f = c.or(&[gx3, r]);
    c.mark_output("F", f);
    (c, Site::Stem(g))
}

/// Formats a minterm of an `x1..xn` circuit the way the paper writes test
/// vectors: `x1` first.
#[must_use]
pub fn vector_string(m: u32, n: usize) -> String {
    (0..n)
        .map(|i| if (m >> i) & 1 == 1 { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use scal_analysis::derive_tests;

    #[test]
    fn adder_outputs_are_sum_and_carry() {
        let c = self_dual_adder();
        for m in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let out = c.eval(&ins);
            assert_eq!(out[0], m.count_ones() % 2 == 1);
            assert_eq!(out[1], m.count_ones() >= 2);
        }
        for tt in c.output_tts() {
            assert!(tt.is_self_dual());
        }
    }

    #[test]
    fn ripple_adder_adds() {
        let c = ripple_adder(4);
        for a in 0..16u32 {
            for b in 0..16u32 {
                for cin in 0..2u32 {
                    let mut ins = Vec::new();
                    for i in 0..4 {
                        ins.push((a >> i) & 1 == 1);
                    }
                    for i in 0..4 {
                        ins.push((b >> i) & 1 == 1);
                    }
                    ins.push(cin == 1);
                    let out = c.eval(&ins);
                    let mut got = 0u32;
                    for (i, &bit) in out.iter().take(4).enumerate() {
                        got |= u32::from(bit) << i;
                    }
                    got |= u32::from(out[4]) << 4;
                    assert_eq!(got, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn ripple_adder_outputs_self_dual() {
        let c = ripple_adder(2);
        for tt in c.output_tts() {
            assert!(tt.is_self_dual());
        }
    }

    #[test]
    fn fig3_4_functions_are_correct() {
        let fig = fig3_4();
        let tts = fig.circuit.output_tts();
        for m in 0..8u32 {
            let a = m & 1 == 1;
            let b = (m >> 1) & 1 == 1;
            let d = (m >> 2) & 1 == 1;
            let maj = |x: bool, y: bool, z: bool| (x && (y || z)) || (y && z);
            assert_eq!(tts[0].eval(m), maj(!a, b, d), "F1 at {m}");
            assert_eq!(tts[1].eval(m), a ^ b ^ d, "F2 at {m}");
            assert_eq!(tts[2].eval(m), maj(a, b, d), "F3 at {m}");
        }
    }

    #[test]
    fn fig3_7_functions_match_fig3_4() {
        assert_eq!(fig3_4().circuit.output_tts(), fig3_7().circuit.output_tts());
    }

    #[test]
    fn fig3_1_tests_match_paper() {
        let (c, g) = fig3_1_example();
        // F must be self-dual for the alternating framework.
        assert!(c.output_tt(0).is_self_dual());
        let (t0, _t1) = derive_tests(&c, g, 0);
        assert!(t0.e_zero);
        let tests: Vec<String> = t0.tests.iter().map(|&m| vector_string(m, 4)).collect();
        let mut sorted = tests.clone();
        sorted.sort();
        let mut expected = vec!["1011", "0110", "0100", "1001"];
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        assert_eq!(t0.pairs.len(), 2);
    }

    #[test]
    fn fig3_1_network_is_scal_apart_from_g_questions() {
        let (c, _) = fig3_1_example();
        // The whole example network should at least verify alternating and
        // be campaign-runnable (self-checking not required by the paper for
        // this example).
        let v = verify(&c);
        assert!(v.is_ok());
    }

    #[test]
    fn vector_string_is_x1_first() {
        assert_eq!(vector_string(0b1101, 4), "1011");
        assert_eq!(vector_string(0b0001, 4), "1000");
    }
}
