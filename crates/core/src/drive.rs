//! Driving alternating networks: input-pair enumeration and application.
//!
//! An alternating network receives each information word twice: true in the
//! first period, complemented in the second (Definition 2.5). These helpers
//! enumerate canonical pairs and convert between minterm integers and input
//! vectors.

use scal_netlist::Circuit;

/// Converts a minterm to an input vector of width `n` (bit `i` = input `i`).
#[must_use]
pub fn minterm_to_inputs(m: u32, n: usize) -> Vec<bool> {
    (0..n).map(|i| (m >> i) & 1 == 1).collect()
}

/// Converts an input vector back to a minterm.
#[must_use]
pub fn inputs_to_minterm(inputs: &[bool]) -> u32 {
    inputs
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | (u32::from(b) << i))
}

/// The complemented second-period word for a first-period minterm.
#[must_use]
pub fn complement_minterm(m: u32, n: usize) -> u32 {
    !m & ((1u32 << n) - 1)
}

/// Iterator over canonical alternating pairs for `n` inputs: yields each
/// unordered pair `(X, X̄)` once, as the numerically smaller member.
pub fn canonical_pairs(n: usize) -> impl Iterator<Item = u32> {
    let total = 1u32 << n;
    let mask = total - 1;
    (0..total).filter(move |&m| m < (!m & mask))
}

/// Drives the alternating pair for minterm `m` through a combinational
/// circuit and returns the two per-period output vectors.
///
/// # Panics
///
/// Panics if the circuit is sequential.
#[must_use]
pub fn drive_pair(circuit: &Circuit, m: u32) -> (Vec<bool>, Vec<bool>) {
    let n = circuit.inputs().len();
    let x = minterm_to_inputs(m, n);
    let y = minterm_to_inputs(complement_minterm(m, n), n);
    (circuit.eval(&x), circuit.eval(&y))
}

/// `true` iff every output alternated across the pair.
#[must_use]
pub fn alternates(pair: &(Vec<bool>, Vec<bool>)) -> bool {
    pair.0.iter().zip(&pair.1).all(|(a, b)| a != b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::self_dual_adder;

    #[test]
    fn minterm_round_trip() {
        for m in 0..32u32 {
            assert_eq!(inputs_to_minterm(&minterm_to_inputs(m, 5)), m);
        }
    }

    #[test]
    fn complement_is_involution() {
        for m in 0..16u32 {
            assert_eq!(complement_minterm(complement_minterm(m, 4), 4), m);
        }
    }

    #[test]
    fn canonical_pairs_partition_the_space() {
        let pairs: Vec<u32> = canonical_pairs(4).collect();
        assert_eq!(pairs.len(), 8);
        for &m in &pairs {
            assert!(m < complement_minterm(m, 4));
        }
    }

    #[test]
    fn adder_alternates_on_every_pair() {
        let c = self_dual_adder();
        for m in canonical_pairs(3) {
            let pair = drive_pair(&c, m);
            assert!(alternates(&pair), "pair {m}");
        }
    }
}
