//! Netlist self-dualization: making any combinational network alternating.

use scal_logic::{qm, Tt};
use scal_netlist::{Circuit, GateKind, NodeId};

/// Converts a combinational circuit into an alternating network by adding a
/// single period-clock input `phi` (the paper's `φ`, 0 in the first period,
/// 1 in the second).
///
/// The construction is structural Yamamoto: the original logic is
/// instantiated twice — once on the true inputs, once on inverted inputs
/// with an inverted output — and each output is selected by `φ`:
///
/// ```text
/// F*(X, φ) = φ̄·F(X) ∨ φ·¬F(X̄)
/// ```
///
/// Every output of the result is self-dual (Theorem 2.1), at a hardware cost
/// of roughly twice the original network plus the selection stage — the
/// worst-case envelope for the cost-factor study of §4.5 (Reynolds' measured
/// average factor is 1.8; see the `cost1_8` experiment).
///
/// The selection stage `φ̄·F ∨ φ·F^d` contains an inherent single-line
/// redundancy whenever `F ⊆ F^d` consensus exists (e.g. the `φ̄` guard
/// stuck-at-1 is absorbed), so the result is fault-secure but only
/// self-checking *modulo redundancy*
/// ([`crate::ScalVerdict::is_self_checking_modulo_redundancy`]). For a
/// strictly self-checking alternating realization use
/// [`dualize_synthesized`], the paper's recommended two-level route.
///
/// The new input `phi` is appended *after* the original inputs.
///
/// # Panics
///
/// Panics if the circuit is sequential or fails validation.
#[must_use]
pub fn dualize(original: &Circuit) -> Circuit {
    original.validate().expect("circuit must validate");
    assert!(
        !original.is_sequential(),
        "dualize() operates on combinational circuits; see scal-seq for machines"
    );
    let mut c = Circuit::new();
    let xs: Vec<NodeId> = original
        .inputs()
        .iter()
        .map(|&i| {
            let name = original.name(i).unwrap_or("x").to_owned();
            c.input(name)
        })
        .collect();
    let phi = c.input(scal_logic::PERIOD_CLOCK_NAME);
    let nphi = c.not(phi);
    let true_outs = c.import(original, &xs);
    let nxs: Vec<NodeId> = xs.iter().map(|&x| c.not(x)).collect();
    let comp_outs = c.import(original, &nxs);
    for (k, out) in original.outputs().iter().enumerate() {
        let inv = c.not(comp_outs[k]);
        let t1 = c.and(&[nphi, true_outs[k]]);
        let t2 = c.and(&[phi, inv]);
        let f = c.or(&[t1, t2]);
        c.mark_output(out.name.clone(), f);
    }
    c
}

/// Converts a combinational circuit into an alternating network by
/// *re-synthesis*: each output's self-dual extension `F*(X, φ)` is computed
/// as a truth table ([`scal_logic::self_dualize`]) and realized as a minimal
/// two-level NAND-NAND network (Quine–McCluskey cover).
///
/// Two-level self-dual networks of monotonic gates are automatically
/// self-checking (Yamamoto's result, provable from Theorem 3.7), so this is
/// the *design-for-self-checking* route the paper's §3.5 recommendations
/// point to: "use two levels (plus an inverter level) to automatically
/// achieve self-checking".
///
/// Outputs do not share logic (sharing would have to be re-justified by
/// Algorithm 3.1). Input inverters are shared.
///
/// # Panics
///
/// Panics if the circuit is sequential, fails validation, or exceeds
/// [`scal_logic::MAX_VARS`] − 1 inputs.
#[must_use]
pub fn dualize_synthesized(original: &Circuit) -> Circuit {
    original.validate().expect("circuit must validate");
    assert!(!original.is_sequential(), "combinational circuits only");
    let tts = original.output_tts();
    let n = original.inputs().len();
    let mut c = Circuit::new();
    let xs: Vec<NodeId> = original
        .inputs()
        .iter()
        .map(|&i| {
            let name = original.name(i).unwrap_or("x").to_owned();
            c.input(name)
        })
        .collect();
    let phi = c.input(scal_logic::PERIOD_CLOCK_NAME);
    let mut all_vars = xs;
    all_vars.push(phi);
    let mut rail = InverterRail::new(&all_vars);

    for (k, tt) in tts.iter().enumerate() {
        let sd: Tt = scal_logic::self_dualize(tt);
        let f = synthesize_sop(&mut c, &all_vars, &mut rail, &sd);
        c.mark_output(original.outputs()[k].name.clone(), f);
    }
    let _ = n;
    c
}

/// A lazily-built, shared rail of input inverters: an inverter is created
/// only when some cube actually needs the complemented literal, so no
/// dangling (untestable) logic is ever emitted.
#[derive(Debug)]
pub(crate) struct InverterRail {
    vars: Vec<NodeId>,
    inverters: Vec<Option<NodeId>>,
}

impl InverterRail {
    pub(crate) fn new(vars: &[NodeId]) -> Self {
        InverterRail {
            vars: vars.to_vec(),
            inverters: vec![None; vars.len()],
        }
    }

    fn complemented(&mut self, c: &mut Circuit, v: usize) -> NodeId {
        if let Some(id) = self.inverters[v] {
            return id;
        }
        let id = c.not(self.vars[v]);
        self.inverters[v] = Some(id);
        id
    }
}

/// Realizes a truth table as NAND-NAND two-level logic over the given
/// variables, sharing the inverter rail.
pub(crate) fn synthesize_sop(
    c: &mut Circuit,
    vars: &[NodeId],
    rail: &mut InverterRail,
    tt: &Tt,
) -> NodeId {
    assert_eq!(vars.len(), tt.nvars(), "variable rail mismatch");
    if tt.is_zero() {
        return c.constant(false);
    }
    if tt.is_one() {
        return c.constant(true);
    }
    let cover = qm::minimize(tt, None);
    let mut first_level = Vec::new();
    for cube in &cover {
        let mut literals = Vec::new();
        for (v, &var) in vars.iter().enumerate().take(tt.nvars()) {
            let bit = 1u32 << v;
            if cube.mask() & bit != 0 {
                literals.push(if cube.value() & bit != 0 {
                    var
                } else {
                    rail.complemented(c, v)
                });
            }
        }
        first_level.push(if literals.len() == 1 {
            // A single literal bypasses the AND plane: NAND collection needs
            // its complement, so feed the literal through an inverter-free
            // trick — NAND of one input is NOT, so use the opposite rail.
            let v = literals[0];
            c.gate(GateKind::Not, &[v])
        } else {
            c.nand(&literals)
        });
    }
    if first_level.len() == 1 {
        c.not(first_level[0])
    } else {
        c.nand(&first_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    fn and2() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        c.mark_output("f", g);
        c
    }

    fn adder_like() -> Circuit {
        // Non-self-dual 3-input function pair.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let g1 = c.and(&[a, b]);
        let g2 = c.or(&[g1, d]);
        let g3 = c.xor(&[a, d]);
        c.mark_output("f1", g2);
        c.mark_output("f2", g3);
        c
    }

    #[test]
    fn structural_dualization_is_self_dual_and_restores_original() {
        for original in [and2(), adder_like()] {
            let alt = dualize(&original);
            let tts = alt.output_tts();
            for tt in &tts {
                assert!(tt.is_self_dual());
            }
            // φ = 0 restriction equals the original function.
            let orig_tts = original.output_tts();
            let n = original.inputs().len();
            for (k, tt) in tts.iter().enumerate() {
                for m in 0..(1u32 << n) {
                    assert_eq!(tt.eval(m), orig_tts[k].eval(m), "output {k} minterm {m}");
                }
            }
        }
    }

    #[test]
    fn synthesized_dualization_matches_structural_function() {
        for original in [and2(), adder_like()] {
            let a = dualize(&original);
            let b = dualize_synthesized(&original);
            assert_eq!(a.output_tts(), b.output_tts());
        }
    }

    #[test]
    fn synthesized_networks_are_self_checking() {
        // Two-level self-dual networks of standard gates: automatically SCAL.
        for original in [and2(), adder_like()] {
            let alt = dualize_synthesized(&original);
            let verdict = verify(&alt).unwrap();
            assert!(verdict.fault_secure, "violations: {:?}", verdict.violations);
        }
    }

    #[test]
    fn dualize_preserves_names_and_appends_phi() {
        let alt = dualize(&and2());
        let names: Vec<_> = alt
            .inputs()
            .iter()
            .map(|&i| alt.name(i).unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["a", "b", "phi"]);
        assert_eq!(alt.outputs()[0].name, "f");
    }

    #[test]
    fn cost_envelope_roughly_doubles() {
        let original = adder_like();
        let alt = dualize(&original);
        let g0 = original.cost().gates;
        let g1 = alt.cost().gates;
        assert!(g1 >= 2 * g0, "structural dualization duplicates logic");
        assert!(g1 <= 2 * g0 + 4 * original.outputs().len() + original.inputs().len() + 2);
    }

    #[test]
    fn constant_outputs_handled_by_synthesis() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let na = c.not(a);
        let zero = c.and(&[a, na]);
        c.mark_output("z", zero);
        // F ≡ 0 self-dualizes to F* = φ (0 in period 1, 1 in period 2).
        let alt = dualize_synthesized(&c);
        let tt = alt.output_tt(0);
        assert!(tt.is_self_dual());
        assert!(!tt.eval(0b00)); // a=0, φ=0
        assert!(tt.eval(0b10)); // a=0, φ=1
    }
}
