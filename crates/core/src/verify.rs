//! The exhaustive SCAL verification engine.

use scal_faults::{enumerate_faults, Campaign, Fault};
use scal_netlist::Circuit;

/// A fault-secure violation found by [`verify`]: a fault and the first-period
/// inputs at which it produced an undetected wrong code word (an *incorrect
/// alternating output*, Theorem 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending fault.
    pub fault: Fault,
    /// Canonical first-period minterms of the violating pairs.
    pub pairs: Vec<u32>,
}

/// Errors from [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The circuit failed structural validation.
    Netlist(scal_netlist::NetlistError),
    /// The circuit is sequential; verify the combinational core and the
    /// feedback path separately (Chapter 4's decomposition).
    Sequential,
    /// Too many inputs for exhaustive verification.
    TooWide {
        /// Input count.
        inputs: usize,
    },
    /// Some output is not self-dual: not an alternating network.
    NotAlternating {
        /// Index of the offending output.
        output: usize,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::Netlist(e) => write!(f, "invalid netlist: {e}"),
            VerifyError::Sequential => write!(f, "verify() handles combinational networks"),
            VerifyError::TooWide { inputs } => {
                write!(
                    f,
                    "{inputs} inputs exceed the exhaustive verification limit"
                )
            }
            VerifyError::NotAlternating { output } => {
                write!(f, "output {output} is not self-dual")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The verdict of exhaustive single-fault verification of an alternating
/// network (Definition 2.6 / Theorem 2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalVerdict {
    /// Number of (collapsed) faults simulated.
    pub fault_count: usize,
    /// Number of alternating input pairs driven per fault.
    pub pair_count: usize,
    /// No fault ever produced an undetected wrong code word
    /// (condition (b) of Theorem 2.2).
    pub fault_secure: bool,
    /// All violations found (empty iff `fault_secure`).
    pub violations: Vec<Violation>,
    /// Faults never detected by a non-code output. With `fault_secure`,
    /// these are exactly the *unobservable* faults of redundant lines; the
    /// paper's convention replaces such subnetworks by constants.
    pub untested: Vec<Fault>,
    /// Strict self-testing (condition (a) of Theorem 2.2): every fault is
    /// observable.
    pub self_testing: bool,
}

impl ScalVerdict {
    /// The network is a SCAL network in the strict sense: fault-secure and
    /// self-testing for every enumerated fault.
    #[must_use]
    pub fn is_self_checking(&self) -> bool {
        self.fault_secure && self.self_testing
    }

    /// The paper's working notion after redundancy removal: fault-secure,
    /// with untested faults permitted only if they are logically
    /// unobservable (nothing to detect).
    #[must_use]
    pub fn is_self_checking_modulo_redundancy(&self) -> bool {
        self.fault_secure
    }
}

/// Exhaustively verifies that a combinational circuit is a SCAL network:
/// each output self-dual, and every collapsed single stuck-at fault either
/// invisible or caught as a non-code (non-alternating) output on some input
/// pair, never as a wrong code word.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the circuit is sequential, too wide
/// (more than 20 inputs), invalid, or not alternating.
pub fn verify(circuit: &Circuit) -> Result<ScalVerdict, VerifyError> {
    verify_with(circuit, &enumerate_faults(circuit))
}

/// The collapsed fault universe of `circuit` *minus* faults on the named
/// clock input's stem.
///
/// The paper treats the period-clock distribution as part of the hardcore
/// ("all fan out of the clock φ is from a common node"; a dead clock stops
/// the system, which counts as detection). Moreover, when the realized
/// function is itself self-dual the clock is logically vacuous, so its stem
/// faults are unobservable by construction — excluding them reflects the
/// model rather than hiding a weakness.
#[must_use]
pub fn faults_excluding_clock(circuit: &Circuit, clock_name: &str) -> Vec<Fault> {
    let clock = circuit
        .inputs()
        .iter()
        .copied()
        .find(|&i| circuit.name(i) == Some(clock_name));
    enumerate_faults(circuit)
        .into_iter()
        .filter(|f| match (f.site, clock) {
            (scal_netlist::Site::Stem(n), Some(c)) => n != c,
            _ => true,
        })
        .collect()
}

/// As [`verify`], over a caller-chosen fault list (e.g. an uncollapsed
/// universe, or a single suspect line).
///
/// # Errors
///
/// See [`verify`].
pub fn verify_with(circuit: &Circuit, faults: &[Fault]) -> Result<ScalVerdict, VerifyError> {
    circuit.validate().map_err(VerifyError::Netlist)?;
    if circuit.is_sequential() {
        return Err(VerifyError::Sequential);
    }
    let n = circuit.inputs().len();
    if n > 20 {
        return Err(VerifyError::TooWide { inputs: n });
    }
    for (k, tt) in circuit.output_tts().iter().enumerate() {
        if !tt.is_self_dual() {
            return Err(VerifyError::NotAlternating { output: k });
        }
    }

    let results = Campaign::new(circuit)
        .faults(faults.to_vec())
        .run()
        .expect("preconditions checked above")
        .results;
    let mut violations = Vec::new();
    let mut untested = Vec::new();
    for r in &results {
        if !r.violation_pairs.is_empty() {
            violations.push(Violation {
                fault: r.fault,
                pairs: r.violation_pairs.clone(),
            });
        }
        if r.detected_pairs.is_empty() {
            untested.push(r.fault);
        }
    }
    let fault_secure = violations.is_empty();
    let self_testing = untested.is_empty();
    Ok(ScalVerdict {
        fault_count: faults.len(),
        pair_count: 1usize << n.saturating_sub(1),
        fault_secure,
        violations,
        untested,
        self_testing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use scal_netlist::Site;

    #[test]
    fn two_level_majority_verifies() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let f = c.nand(&[nab, nac, nbc]);
        c.mark_output("f", f);
        let v = verify(&c).unwrap();
        assert!(v.is_self_checking());
        assert_eq!(v.pair_count, 4);
        assert!(v.violations.is_empty());
        assert!(v.untested.is_empty());
    }

    #[test]
    fn non_alternating_rejected() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.or(&[a, b]);
        c.mark_output("f", g);
        assert_eq!(verify(&c), Err(VerifyError::NotAlternating { output: 0 }));
    }

    #[test]
    fn fig3_4_reconstruction_fails_verification() {
        let fig = paper::fig3_4();
        let v = verify(&fig.circuit).unwrap();
        assert!(!v.fault_secure);
        // The offending line-20 stem must be among the violations.
        assert!(v
            .violations
            .iter()
            .any(|viol| viol.fault.site == fig.line20));
        // But line 9's stem must not be (rescued by Corollary 3.2).
        assert!(v.violations.iter().all(|viol| viol.fault.site != fig.line9));
    }

    #[test]
    fn fig3_7_fix_verifies() {
        let fixed = paper::fig3_7();
        let v = verify(&fixed.circuit).unwrap();
        assert!(v.fault_secure, "violations: {:?}", v.violations);
        assert!(v.self_testing);
    }

    #[test]
    fn verdict_agrees_with_algorithm_3_1() {
        for circuit in [paper::fig3_4().circuit, paper::fig3_7().circuit] {
            let verdict = verify(&circuit).unwrap();
            let report = scal_analysis::analyze(&circuit).unwrap();
            assert_eq!(verdict.fault_secure, report.self_checking);
            // Per-line agreement.
            for line in &report.lines {
                let sim_bad = verdict.violations.iter().any(|v| v.fault.site == line.site);
                assert_eq!(line.fault_secure, !sim_bad, "line {}", line.site);
            }
        }
    }

    #[test]
    fn single_fault_list_verification() {
        let fig = paper::fig3_4();
        let faults = [
            scal_faults::Fault::new(fig.line20, false),
            scal_faults::Fault::new(fig.line20, true),
        ];
        let v = verify_with(&fig.circuit, &faults).unwrap();
        assert_eq!(v.fault_count, 2);
        assert!(!v.fault_secure);
    }

    #[test]
    fn adder_is_scal_for_free() {
        // Fig 2.2's point: the full adder is already self-dual — no
        // dualization hardware at all — and its two-level realization is
        // self-checking.
        let adder = paper::self_dual_adder();
        let v = verify(&adder).unwrap();
        assert!(v.is_self_checking());
    }

    #[test]
    fn untested_faults_reported_for_dangling_logic() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let dangling = c.and(&[a, b]);
        let _ = dangling;
        let x = c.gate(scal_netlist::GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        let v = verify(&c).unwrap();
        assert!(v.fault_secure);
        assert!(!v.self_testing);
        assert!(v.untested.iter().all(|f| match f.site {
            Site::Stem(n) => n == dangling,
            Site::Branch { node, .. } => node == dangling,
        }));
        assert!(v.is_self_checking_modulo_redundancy());
        assert!(!v.is_self_checking());
    }
}
