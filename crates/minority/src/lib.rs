//! Minority modules in network design (Chapter 6).
//!
//! A *minority module* `m_I` (odd `I`) outputs 1 iff fewer than half its
//! inputs are 1 (Fig. 6.1a). Minority modules form a complete gate set
//! (Theorem 6.1, via the 2-input NAND of Fig. 6.1d), and — the chapter's
//! main result — **any NAND or NOR network converts directly into an
//! alternating, self-checking minority-module network** by padding each
//! `N`-input gate with `K = N − 1` copies of the period clock (Theorems
//! 6.2/6.3):
//!
//! ```text
//! ( m_{2N−1}(X ‖ Φ_K),  m_{2N−1}(X̄ ‖ C_K) )  =  ( NAND(X), AND(X̄) )
//! ```
//!
//! so in the first period (`φ = 0`) each module computes the original NAND,
//! and in the second period (complemented inputs, `φ = 1`) the complement —
//! every line alternates, and by Theorem 3.6 the network is self-checking
//! with respect to every line.
//!
//! # Example
//!
//! ```
//! use scal_netlist::Circuit;
//! use scal_minority::convert_to_alternating;
//!
//! // Any NAND network …
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let g = c.nand(&[a, b]);
//! let f = c.nand(&[g, a]);
//! c.mark_output("f", f);
//!
//! // … becomes an alternating minority network.
//! let alt = convert_to_alternating(&c).unwrap();
//! assert!(alt.output_tt(0).is_self_dual());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scal_netlist::{Circuit, GateKind, NodeId, NodeView};

/// Errors from [`convert_to_alternating`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvertError {
    /// The network contains a gate kind outside {NAND, NOR, NOT, BUF}.
    UnsupportedGate {
        /// The offending node.
        node: NodeId,
        /// Its kind.
        kind: GateKind,
    },
    /// The network is sequential; convert the combinational core only.
    Sequential,
}

impl core::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConvertError::UnsupportedGate { node, kind } => {
                write!(f, "gate {node} of kind {kind} is not NAND/NOR/NOT/BUF")
            }
            ConvertError::Sequential => write!(f, "sequential networks are not convertible"),
        }
    }
}

impl std::error::Error for ConvertError {}

/// Builds an `I`-input minority module over `fanins` (Fig. 6.1a).
///
/// # Panics
///
/// Panics unless the fanin count is odd and at least 3.
pub fn minority(c: &mut Circuit, fanins: &[NodeId]) -> NodeId {
    c.gate(GateKind::Minority, fanins)
}

/// The majority module built from two minority modules (Fig. 6.1c):
/// `MAJ(X) = m(m(X), m(X), m(X))`.
///
/// # Panics
///
/// Panics unless the fanin count is odd and at least 3.
pub fn majority_from_minority(c: &mut Circuit, fanins: &[NodeId]) -> NodeId {
    let m = minority(c, fanins);
    minority(c, &[m, m, m])
}

/// The 2-input NAND from a single minority module (Fig. 6.1d):
/// `NAND(a, b) = m3(a, b, 0)`.
pub fn nand2_from_minority(c: &mut Circuit, a: NodeId, b: NodeId) -> NodeId {
    let zero = c.constant(false);
    minority(c, &[a, b, zero])
}

/// Inversion from a minority module: `¬x = m3(x, 0, 1)`.
///
/// The textbook identity `¬x = m3(x, x, x)` also holds, but replicating one
/// line across all three pins makes every single *pin* fault of the module
/// unobservable (the two healthy copies out-vote it) — a built-in redundancy
/// that would defeat self-testing. Padding with the constants 0 and 1
/// instead keeps every enumerable fault observable.
pub fn not_from_minority(c: &mut Circuit, x: NodeId) -> NodeId {
    let zero = c.constant(false);
    let one = c.constant(true);
    minority(c, &[x, zero, one])
}

/// Converts a combinational NAND/NOR/NOT network into an alternating
/// minority-module network (Theorems 6.2/6.3):
///
/// * every `N`-input NAND (`N ≥ 2`) becomes `m_{2N−1}` padded with `N − 1`
///   copies of the period clock `φ`;
/// * every `N`-input NOR becomes `m_{2N−1}` padded with `N − 1` copies of
///   `φ̄`;
/// * every NOT (and 1-input NAND/NOR) becomes `m3(x, 0, 1)` (see
///   [`not_from_minority`] for why the pads are constants);
/// * buffers pass through.
///
/// The result gains one primary input `phi` (appended last). Driving it with
/// `(X‖0, X̄‖1)` produces the alternating output pair `(F(X), F̄(X))`; every
/// internal line alternates, so the network is self-checking with respect to
/// all its lines (Theorem 3.6).
///
/// # Errors
///
/// Returns [`ConvertError`] if the network is sequential or contains a gate
/// outside the supported set.
pub fn convert_to_alternating(original: &Circuit) -> Result<Circuit, ConvertError> {
    if original.is_sequential() {
        return Err(ConvertError::Sequential);
    }
    for id in original.node_ids() {
        if let NodeView::Gate(kind) = original.view(id) {
            if !matches!(
                kind,
                GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Buf
            ) {
                return Err(ConvertError::UnsupportedGate { node: id, kind });
            }
        }
    }

    let mut c = Circuit::new();
    let mut map: Vec<Option<NodeId>> = vec![None; original.len()];
    for &inp in original.inputs() {
        let name = original.name(inp).unwrap_or("x").to_owned();
        map[inp.index()] = Some(c.input(name));
    }
    let phi = c.input("phi");
    let mut nphi: Option<NodeId> = None;

    for id in original.topo_order() {
        if map[id.index()].is_some() {
            continue;
        }
        let new = match original.view(id) {
            NodeView::Input => unreachable!("inputs pre-mapped"),
            NodeView::Const(v) => {
                // A constant is not an alternating signal; represent it as
                // the clock (false in period 1) or its complement, which is
                // the alternating encoding of the constant's first-period
                // value.
                if v {
                    *nphi.get_or_insert_with(|| not_from_minority_raw(&mut c, phi))
                } else {
                    phi
                }
            }
            NodeView::Dff { .. } => unreachable!("checked sequential above"),
            NodeView::Gate(kind) => {
                let fanins: Vec<NodeId> = original
                    .fanins(id)
                    .iter()
                    .map(|f| map[f.index()].expect("fanin mapped in topo order"))
                    .collect();
                match kind {
                    GateKind::Buf => fanins[0],
                    GateKind::Not => not_from_minority_raw(&mut c, fanins[0]),
                    GateKind::Nand | GateKind::Nor if fanins.len() == 1 => {
                        not_from_minority_raw(&mut c, fanins[0])
                    }
                    GateKind::Nand | GateKind::Nor => {
                        let n = fanins.len();
                        let pad = if kind == GateKind::Nand {
                            phi
                        } else {
                            *nphi.get_or_insert_with(|| not_from_minority_raw(&mut c, phi))
                        };
                        let mut all = fanins;
                        all.extend(std::iter::repeat(pad).take(n - 1));
                        c.gate(GateKind::Minority, &all)
                    }
                    _ => unreachable!("filtered above"),
                }
            }
        };
        map[id.index()] = Some(new);
    }
    for o in original.outputs() {
        c.mark_output(o.name.clone(), map[o.node.index()].expect("output mapped"));
    }
    Ok(c)
}

fn not_from_minority_raw(c: &mut Circuit, x: NodeId) -> NodeId {
    // See `not_from_minority`: constant pads keep pin faults observable.
    let zero = c.constant(false);
    let one = c.constant(true);
    c.gate(GateKind::Minority, &[x, zero, one])
}

/// The Fig. 6.2 cost study: a 3-input minority function realized three ways.
#[derive(Debug, Clone)]
pub struct Fig62 {
    /// Fig. 6.2a: the NAND realization (four NANDs, nine gate inputs),
    /// taking the complemented variables `ā, b̄, c̄` as its inputs (the
    /// standard trick: `MIN(a,b,c) = MAJ(ā,b̄,c̄)`).
    pub nand_net: Circuit,
    /// Fig. 6.2b: the direct Theorem 6.2 conversion — four minority modules,
    /// fourteen gate inputs.
    pub direct: Circuit,
    /// Fig. 6.2c: the minimal realization — one 3-input minority module
    /// (already self-dual, alternating for free).
    pub minimal: Circuit,
}

/// Builds the Fig. 6.2 example. See [`Fig62`].
#[must_use]
pub fn fig6_2_example() -> Fig62 {
    // NAND net over complemented inputs: MAJ(ā,b̄,c̄) = MIN(a,b,c).
    let mut nand_net = Circuit::new();
    let na = nand_net.input("na");
    let nb = nand_net.input("nb");
    let nc = nand_net.input("nc");
    let g1 = nand_net.nand(&[na, nb]);
    let g2 = nand_net.nand(&[na, nc]);
    let g3 = nand_net.nand(&[nb, nc]);
    let f = nand_net.nand(&[g1, g2, g3]);
    nand_net.mark_output("min", f);

    let direct = convert_to_alternating(&nand_net).expect("pure NAND network");

    let mut minimal = Circuit::new();
    let a = minimal.input("a");
    let b = minimal.input("b");
    let cc = minimal.input("c");
    let m = minimal.gate(GateKind::Minority, &[a, b, cc]);
    minimal.mark_output("min", m);

    Fig62 {
        nand_net,
        direct,
        minimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_faults::Campaign;
    use scal_logic::Tt;

    fn nand_chain() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("d");
        let g1 = c.nand(&[a, b]);
        let g2 = c.nand(&[g1, d]);
        let g3 = c.nand(&[g1, g2, a]);
        c.mark_output("f", g3);
        c
    }

    fn nor_net() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("d");
        let g1 = c.nor(&[a, b]);
        let g2 = c.nor(&[g1, d]);
        c.mark_output("f", g2);
        c
    }

    #[test]
    fn theorem_6_2_single_gates() {
        // For every NAND arity N = 2..=5, the padded minority module gives
        // (NAND(X), AND(X̄)) over the two periods.
        for n in 2..=5usize {
            let mut c = Circuit::new();
            let xs: Vec<NodeId> = (0..n).map(|i| c.input(format!("x{i}"))).collect();
            let phi = c.input("phi");
            let mut fanins = xs.clone();
            fanins.extend(std::iter::repeat(phi).take(n - 1));
            let m = c.gate(GateKind::Minority, &fanins);
            c.mark_output("m", m);
            for w in 0..(1u32 << n) {
                let mut p1: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
                let all_ones = p1.iter().all(|&b| b);
                p1.push(false); // φ = 0
                let first = c.eval(&p1)[0];
                assert_eq!(first, !all_ones, "NAND in period 1, n={n} w={w:b}");
                let p2: Vec<bool> = p1.iter().map(|&b| !b).collect();
                let second = c.eval(&p2)[0];
                assert_eq!(second, all_ones, "AND(X̄)=¬NAND(X) in period 2");
            }
        }
    }

    #[test]
    fn theorem_6_3_single_gates() {
        for n in 2..=5usize {
            let mut c = Circuit::new();
            let xs: Vec<NodeId> = (0..n).map(|i| c.input(format!("x{i}"))).collect();
            let phi = c.input("phi");
            let nphi = c.gate(GateKind::Minority, &[phi, phi, phi]);
            let mut fanins = xs.clone();
            fanins.extend(std::iter::repeat(nphi).take(n - 1));
            let m = c.gate(GateKind::Minority, &fanins);
            c.mark_output("m", m);
            for w in 0..(1u32 << n) {
                let mut p1: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
                let any_one = p1.iter().any(|&b| b);
                p1.push(false);
                assert_eq!(c.eval(&p1)[0], !any_one, "NOR in period 1");
                let p2: Vec<bool> = p1.iter().map(|&b| !b).collect();
                assert_eq!(c.eval(&p2)[0], any_one, "OR(X̄) in period 2");
            }
        }
    }

    #[test]
    fn conversion_preserves_function_in_period_one() {
        for original in [nand_chain(), nor_net()] {
            let alt = convert_to_alternating(&original).unwrap();
            let n = original.inputs().len();
            let orig_tts = original.output_tts();
            let alt_tts = alt.output_tts();
            for (k, tt) in alt_tts.iter().enumerate() {
                for m in 0..(1u32 << n) {
                    assert_eq!(tt.eval(m), orig_tts[k].eval(m), "output {k} minterm {m}");
                }
            }
        }
    }

    #[test]
    fn converted_networks_are_alternating_and_self_checking() {
        for original in [nand_chain(), nor_net()] {
            let alt = convert_to_alternating(&original).unwrap();
            for tt in alt.output_tts() {
                assert!(tt.is_self_dual());
            }
            // All lines alternate → fault-secure and fully tested.
            for r in Campaign::new(&alt).run().unwrap().results {
                assert!(r.fault_secure(), "violation at {}", r.fault);
                assert!(r.tested(), "untested {}", r.fault);
            }
        }
    }

    #[test]
    fn converted_internal_lines_all_alternate() {
        let alt = convert_to_alternating(&nand_chain()).unwrap();
        let n = alt.inputs().len();
        for id in alt.node_ids() {
            if matches!(alt.view(id), NodeView::Gate(_)) {
                let tt: Tt = alt.node_tt(id);
                assert!(tt.is_self_dual(), "line {id} of {n}-input network");
            }
        }
    }

    #[test]
    fn unsupported_gate_rejected() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        c.mark_output("f", g);
        assert!(matches!(
            convert_to_alternating(&c),
            Err(ConvertError::UnsupportedGate { .. })
        ));
    }

    #[test]
    fn completeness_primitives() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let nand = nand2_from_minority(&mut c, a, b);
        let inv = not_from_minority(&mut c, a);
        let maj = majority_from_minority(&mut c, &[a, a, b]);
        c.mark_output("nand", nand);
        c.mark_output("inv", inv);
        c.mark_output("maj", maj);
        for m in 0..4u32 {
            let av = m & 1 == 1;
            let bv = m & 2 != 0;
            let out = c.eval(&[av, bv]);
            assert_eq!(out[0], !(av && bv));
            assert_eq!(out[1], !av);
            assert_eq!(out[2], av); // MAJ(a,a,b) = a ∨ ab = a … MAJ(a,a,b)=a
        }
    }

    #[test]
    fn fig6_2_costs_match_paper() {
        let fig = fig6_2_example();
        // Fig 6.2a: four NANDs, nine gate inputs.
        let nand_cost = fig.nand_net.cost();
        assert_eq!(nand_cost.gates, 4);
        assert_eq!(nand_cost.gate_inputs, 9);
        // Fig 6.2b: four minority modules, fourteen gate inputs.
        let direct_cost = fig.direct.cost();
        assert_eq!(direct_cost.threshold_modules, 4);
        assert_eq!(direct_cost.gate_inputs, 14);
        // Fig 6.2c: one module, three inputs.
        let min_cost = fig.minimal.cost();
        assert_eq!(min_cost.threshold_modules, 1);
        assert_eq!(min_cost.gate_inputs, 3);
    }

    #[test]
    fn fig6_2_all_three_compute_minority() {
        let fig = fig6_2_example();
        for m in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let flipped: Vec<bool> = bits.iter().map(|&b| !b).collect();
            let expect = m.count_ones() <= 1;
            assert_eq!(fig.nand_net.eval(&flipped)[0], expect, "nand net");
            let mut with_phi = flipped.clone();
            with_phi.push(false);
            assert_eq!(fig.direct.eval(&with_phi)[0], expect, "direct");
            assert_eq!(fig.minimal.eval(&bits)[0], expect, "minimal");
        }
    }

    #[test]
    fn minimal_minority_is_self_checking_for_free() {
        let fig = fig6_2_example();
        for r in Campaign::new(&fig.minimal).run().unwrap().results {
            assert!(r.fault_secure() && r.tested());
        }
    }
}
