//! A plain-text netlist interchange format.
//!
//! ```text
//! scal-netlist v1
//! input n0 a
//! input n1 b
//! gate n2 nand n0 n1
//! dff n3 0
//! connect n3 n2
//! name n2 stage1
//! output f n2
//! ```
//!
//! Lines: `input <id> <name>`, `const <id> <0|1>`, `gate <id> <kind>
//! <fanin>...`, `dff <id> <init>`, `connect <dff-id> <d-id>` (after all
//! nodes), `name <id> <name>`, `output <name> <id>`, `#` comments. Node ids
//! must appear in creation order (`n0`, `n1`, …), which the emitter
//! guarantees and the parser enforces.

use crate::circuit::NodeView;
use crate::{Circuit, GateKind, NodeId};
use std::fmt::Write as _;

/// Errors from parsing the v1 text format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TextError {
    /// Missing or wrong header line.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A node id was out of order or referenced before creation.
    BadNodeRef {
        /// 1-based line number.
        line: usize,
    },
    /// A `connect` line targeted a node that is not a flip-flop.
    NotAFlipFlop {
        /// 1-based line number.
        line: usize,
    },
    /// A `connect` line targeted a flip-flop whose D input was already
    /// wired by an earlier `connect`.
    AlreadyConnected {
        /// 1-based line number.
        line: usize,
    },
}

impl core::fmt::Display for TextError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TextError::BadHeader => write!(f, "missing 'scal-netlist v1' header"),
            TextError::BadLine { line, text } => write!(f, "cannot parse line {line}: {text:?}"),
            TextError::BadNodeRef { line } => write!(f, "bad node reference on line {line}"),
            TextError::NotAFlipFlop { line } => {
                write!(f, "connect target on line {line} is not a flip-flop")
            }
            TextError::AlreadyConnected { line } => {
                write!(f, "flip-flop on line {line} is already connected")
            }
        }
    }
}

impl std::error::Error for TextError {}

fn kind_name(kind: GateKind) -> &'static str {
    kind.mnemonic()
}

fn kind_from_name(s: &str) -> Option<GateKind> {
    Some(match s {
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "min" => GateKind::Minority,
        "maj" => GateKind::Majority,
        _ => return None,
    })
}

impl Circuit {
    /// Serializes the netlist to the v1 text format.
    #[deprecated(
        since = "0.2.0",
        note = "use `Circuit::write_string(NetlistFormat::ScalText)` instead"
    )]
    #[must_use]
    pub fn to_text(&self) -> String {
        emit(self)
    }

    /// Parses the v1 text format.
    ///
    /// # Errors
    ///
    /// Returns a [`TextError`] describing the first problem.
    #[deprecated(
        since = "0.2.0",
        note = "use `Circuit::read(src, NetlistFormat::ScalText)` instead"
    )]
    pub fn from_text(text: &str) -> Result<Circuit, TextError> {
        parse(text)
    }
}

/// Serializes the netlist to the v1 text format (the implementation behind
/// [`crate::NetlistFormat::ScalText`]).
pub(crate) fn emit(c: &Circuit) -> String {
    let mut s = String::from("scal-netlist v1\n");
    let mut connects = Vec::new();
    let mut names = Vec::new();
    for id in c.node_ids() {
        match c.view(id) {
            NodeView::Input => {
                let _ = writeln!(s, "input {id} {}", c.name(id).unwrap_or("_"));
            }
            NodeView::Const(v) => {
                let _ = writeln!(s, "const {id} {}", u8::from(v));
                if let Some(n) = c.name(id) {
                    names.push((id, n.to_owned()));
                }
            }
            NodeView::Gate(kind) => {
                let _ = write!(s, "gate {id} {}", kind_name(kind));
                for f in c.fanins(id) {
                    let _ = write!(s, " {f}");
                }
                s.push('\n');
                if let Some(n) = c.name(id) {
                    names.push((id, n.to_owned()));
                }
            }
            NodeView::Dff { init } => {
                let _ = writeln!(s, "dff {id} {}", u8::from(init));
                if let Some(&d) = c.fanins(id).first() {
                    connects.push((id, d));
                }
                if let Some(n) = c.name(id) {
                    names.push((id, n.to_owned()));
                }
            }
        }
    }
    for (ff, d) in connects {
        let _ = writeln!(s, "connect {ff} {d}");
    }
    for (id, n) in names {
        let _ = writeln!(s, "name {id} {n}");
    }
    for o in c.outputs() {
        let _ = writeln!(s, "output {} {}", o.name, o.node);
    }
    s
}

/// Parses the v1 text format (the implementation behind
/// [`crate::NetlistFormat::ScalText`]).
pub(crate) fn parse(text: &str) -> Result<Circuit, TextError> {
    let mut lines = text.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, l)) if l.trim().is_empty() || l.trim_start().starts_with('#') => {}
            Some((_, l)) => break l.trim(),
            None => return Err(TextError::BadHeader),
        }
    };
    if header != "scal-netlist v1" {
        return Err(TextError::BadHeader);
    }

    let mut c = Circuit::new();
    let parse_id = |tok: &str, line: usize, max: usize| -> Result<NodeId, TextError> {
        let idx = parse_index(tok).ok_or(TextError::BadNodeRef { line })?;
        if idx >= max {
            return Err(TextError::BadNodeRef { line });
        }
        Ok(crate::circuit::node_id_from_index(idx))
    };

    for (ln0, raw) in lines {
        let line = ln0 + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = l.split_whitespace().collect();
        let bad = || TextError::BadLine {
            line,
            text: raw.to_owned(),
        };
        // Names occupy the rest of the line (they may contain spaces); the
        // line is already end-trimmed, so this is exact.
        let rest_after = |n_toks: usize| -> &str {
            let mut s = l;
            for _ in 0..n_toks {
                s = s.trim_start();
                let end = s.find(char::is_whitespace).unwrap_or(s.len());
                s = &s[end..];
            }
            s.trim_start()
        };
        match toks[0] {
            "input" if toks.len() >= 3 => {
                let expect = parse_new_id(toks[1], line, c.len())?;
                let got = c.input(rest_after(2));
                check_id(expect, got, line)?;
            }
            "const" if toks.len() == 3 => {
                let expect = parse_new_id(toks[1], line, c.len())?;
                let v = match toks[2] {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad()),
                };
                let got = c.constant(v);
                check_id(expect, got, line)?;
            }
            "gate" if toks.len() >= 4 => {
                let expect = parse_new_id(toks[1], line, c.len())?;
                let kind = kind_from_name(toks[2]).ok_or_else(bad)?;
                let mut fanins = Vec::with_capacity(toks.len() - 3);
                for t in &toks[3..] {
                    fanins.push(parse_id(t, line, c.len())?);
                }
                if !kind.arity_ok(fanins.len()) {
                    return Err(bad());
                }
                let got = c.gate(kind, &fanins);
                check_id(expect, got, line)?;
            }
            "dff" if toks.len() == 3 => {
                let expect = parse_new_id(toks[1], line, c.len())?;
                let init = match toks[2] {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad()),
                };
                let got = c.dff(init);
                check_id(expect, got, line)?;
            }
            "connect" if toks.len() == 3 => {
                let ff = parse_id(toks[1], line, c.len())?;
                let d = parse_id(toks[2], line, c.len())?;
                // connect_dff panics on these; the parser reads untrusted
                // bytes, so pre-check and return typed errors instead.
                if !matches!(c.view(ff), NodeView::Dff { .. }) {
                    return Err(TextError::NotAFlipFlop { line });
                }
                if !c.fanins(ff).is_empty() {
                    return Err(TextError::AlreadyConnected { line });
                }
                c.connect_dff(ff, d);
            }
            "name" if toks.len() >= 3 => {
                let id = parse_id(toks[1], line, c.len())?;
                c.set_name(id, rest_after(2));
            }
            "output" if toks.len() >= 3 => {
                let id = parse_id(toks[toks.len() - 1], line, c.len())?;
                c.mark_output(toks[1..toks.len() - 1].join(" "), id);
            }
            _ => return Err(bad()),
        }
    }
    Ok(c)
}

/// Parses `n<digits>` strictly: ASCII digits only (no sign, no whitespace —
/// `usize::from_str` would accept `"+3"`), `None` on overflow or any other
/// shape.
fn parse_index(tok: &str) -> Option<usize> {
    let digits = tok.strip_prefix('n')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn parse_new_id(tok: &str, line: usize, len: usize) -> Result<usize, TextError> {
    let idx = parse_index(tok).ok_or(TextError::BadNodeRef { line })?;
    if idx != len {
        return Err(TextError::BadNodeRef { line });
    }
    Ok(idx)
}

fn check_id(expect: usize, got: NodeId, line: usize) -> Result<(), TextError> {
    if got.index() == expect {
        Ok(())
    } else {
        Err(TextError::BadNodeRef { line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let one = c.constant(true);
        let g = c.nand(&[a, b, one]);
        c.set_name(g, "front");
        let ff = c.dff(true);
        let x = c.xor(&[g, ff]);
        c.connect_dff(ff, x);
        c.mark_output("q", x);
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let c = sample();
        let text = emit(&c);
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.inputs().len(), 2);
        assert_eq!(back.outputs().len(), 1);
        assert_eq!(back.cost(), c.cost());
        // Behavioural equivalence over a few steps.
        let mut s1 = crate::Sim::new(&c);
        let mut s2 = crate::Sim::new(&back);
        for m in [0u32, 1, 3, 2, 1, 0, 3] {
            let ins = [m & 1 == 1, m & 2 != 0];
            assert_eq!(s1.step(&ins), s2.step(&ins));
        }
        // Names survive.
        let named = back.node_ids().find(|&id| back.name(id) == Some("front"));
        assert!(named.is_some());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hello\nscal-netlist v1\n# a comment\ninput n0 a\n\noutput f n0\n";
        let c = parse(text).unwrap();
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(parse("nope\n"), Err(TextError::BadHeader)));
    }

    #[test]
    fn forward_references_rejected() {
        let text = "scal-netlist v1\ngate n0 not n1\n";
        assert!(matches!(
            parse(text),
            Err(TextError::BadNodeRef { line: 2 })
        ));
    }

    #[test]
    fn out_of_order_ids_rejected() {
        let text = "scal-netlist v1\ninput n5 a\n";
        assert!(matches!(parse(text), Err(TextError::BadNodeRef { .. })));
    }

    #[test]
    fn bad_gate_kind_rejected() {
        let text = "scal-netlist v1\ninput n0 a\ngate n1 frob n0\n";
        assert!(matches!(parse(text), Err(TextError::BadLine { .. })));
    }

    #[test]
    fn connect_on_non_dff_is_a_typed_error() {
        let text = "scal-netlist v1\ninput n0 a\ngate n1 not n0\nconnect n1 n0\n";
        assert!(matches!(
            parse(text),
            Err(TextError::NotAFlipFlop { line: 4 })
        ));
    }

    #[test]
    fn double_connect_is_a_typed_error() {
        let text = "scal-netlist v1\ninput n0 a\ndff n1 0\nconnect n1 n0\nconnect n1 n0\n";
        assert!(matches!(
            parse(text),
            Err(TextError::AlreadyConnected { line: 5 })
        ));
    }

    #[test]
    fn signed_and_padded_node_ids_are_rejected() {
        for tok in [
            "n+0",
            "n-0",
            "n 0",
            "n0x",
            "n",
            "x0",
            "n18446744073709551616",
        ] {
            let text = format!("scal-netlist v1\ninput {tok} a\n");
            assert!(
                matches!(
                    parse(&text),
                    Err(TextError::BadNodeRef { .. } | TextError::BadLine { .. })
                ),
                "token {tok:?} must be rejected"
            );
        }
    }

    #[test]
    fn truncated_and_arity_violating_lines_are_rejected() {
        for body in [
            "gate n0",
            "gate n0 nand",
            "gate n0 not",
            "input n0",
            "dff n0",
            "dff n0 2",
            "const n0 x",
            "connect n0",
            "output f",
            "name n0",
        ] {
            let text = format!("scal-netlist v1\n{body}\n");
            assert!(parse(&text).is_err(), "line {body:?} must be rejected");
        }
        // `not` is unary: two fanins violate arity.
        let text = "scal-netlist v1\ninput n0 a\ninput n1 b\ngate n2 not n0 n1\n";
        assert!(matches!(
            parse(text),
            Err(TextError::BadLine { line: 4, .. })
        ));
    }

    #[test]
    fn minority_gates_round_trip() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("d");
        let m = c.gate(GateKind::Minority, &[a, b, d]);
        c.mark_output("m", m);
        let back = parse(&emit(&c)).unwrap();
        assert_eq!(back.output_tt(0), c.output_tt(0));
    }
}
