//! Synchronous sequential simulation.

use crate::eval::Override;
use crate::Circuit;

/// A synchronous simulator for a (possibly sequential) [`Circuit`].
///
/// Each [`Sim::step`] models one clock period: the combinational logic
/// settles on the current inputs and flip-flop outputs, the primary outputs
/// are sampled, and then every flip-flop latches its D input on the clock
/// edge.
///
/// Faults are injected by attaching persistent [`Override`]s — a stuck line
/// stays stuck across clock periods, exactly the paper's permanent
/// single-fault model (transient faults are modelled by attaching and later
/// clearing an override).
#[derive(Debug, Clone)]
pub struct Sim<'c> {
    circuit: &'c Circuit,
    state: Vec<bool>,
    overrides: Vec<Override>,
    steps: u64,
}

impl<'c> Sim<'c> {
    /// Creates a simulator with every flip-flop at its power-up value.
    ///
    /// # Panics
    ///
    /// Panics if the circuit fails [`Circuit::validate`].
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Self {
        circuit
            .validate()
            .expect("circuit must validate before simulation");
        let state = circuit
            .dffs()
            .iter()
            .map(|&ff| match circuit.view(ff) {
                crate::circuit::NodeView::Dff { init } => init,
                _ => unreachable!("dffs() returns flip-flops"),
            })
            .collect();
        Sim {
            circuit,
            state,
            overrides: Vec::new(),
            steps: 0,
        }
    }

    /// The circuit being simulated.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Current flip-flop state, in [`Circuit::dffs`] order.
    #[must_use]
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Overwrites the flip-flop state (useful to start from a known state).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the flip-flop count.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state arity mismatch");
        self.state.copy_from_slice(state);
    }

    /// Number of clock periods simulated so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Attaches a persistent override (e.g. a stuck-at fault).
    pub fn attach(&mut self, o: Override) {
        self.overrides.push(o);
    }

    /// Removes all overrides (fault repaired / transient ended).
    pub fn clear_overrides(&mut self) {
        self.overrides.clear();
    }

    /// Currently attached overrides.
    #[must_use]
    pub fn overrides(&self) -> &[Override] {
        &self.overrides
    }

    /// Simulates one clock period: returns the sampled primary outputs and
    /// advances the flip-flop state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the circuit's input count.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        let (outputs, next) = self.circuit.eval_comb(inputs, &self.state, &self.overrides);
        self.state = next;
        self.steps += 1;
        outputs
    }

    /// Like [`Sim::step`] but also returns every node value (for probing
    /// internal lines such as feedback variables).
    pub fn step_probed(&mut self, inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let values = self
            .circuit
            .eval_nodes(inputs, &self.state, &self.overrides);
        let outputs = self
            .circuit
            .outputs()
            .iter()
            .map(|o| values[o.node.index()])
            .collect();
        let (_, next) = self.circuit.eval_comb(inputs, &self.state, &self.overrides);
        self.state = next;
        self.steps += 1;
        (outputs, values)
    }

    /// Resets flip-flops to power-up values and clears the step counter
    /// (overrides are kept).
    pub fn reset(&mut self) {
        let fresh = Sim::new(self.circuit);
        self.state = fresh.state;
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    /// Two-bit binary counter.
    fn counter2() -> Circuit {
        let mut c = Circuit::new();
        let q0 = c.dff(false);
        let q1 = c.dff(false);
        let n0 = c.not(q0);
        let t = c.xor(&[q1, q0]);
        c.connect_dff(q0, n0);
        c.connect_dff(q1, t);
        c.mark_output("q0", q0);
        c.mark_output("q1", q1);
        c
    }

    #[test]
    fn counter_counts() {
        let c = counter2();
        let mut sim = Sim::new(&c);
        let seq: Vec<u8> = (0..8)
            .map(|_| {
                let o = sim.step(&[]);
                u8::from(o[0]) | (u8::from(o[1]) << 1)
            })
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(sim.steps(), 8);
    }

    #[test]
    fn reset_restores_power_up() {
        let c = counter2();
        let mut sim = Sim::new(&c);
        sim.step(&[]);
        sim.step(&[]);
        assert_ne!(sim.state(), &[false, false]);
        sim.reset();
        assert_eq!(sim.state(), &[false, false]);
        assert_eq!(sim.steps(), 0);
    }

    #[test]
    fn stuck_fault_persists_across_steps() {
        let c = counter2();
        let q0 = c.dffs()[0];
        let mut sim = Sim::new(&c);
        sim.attach(Override::stem(q0, false));
        // q0 reads 0 forever; q1 never toggles (t = q1 ^ 0 keeps q1).
        for _ in 0..4 {
            let o = sim.step(&[]);
            assert_eq!(o, vec![false, false]);
        }
        sim.clear_overrides();
        assert!(sim.overrides().is_empty());
    }

    #[test]
    fn set_state_jumps() {
        let c = counter2();
        let mut sim = Sim::new(&c);
        sim.set_state(&[true, true]);
        let o = sim.step(&[]);
        assert_eq!(o, vec![true, true]);
        let o = sim.step(&[]);
        assert_eq!(o, vec![false, false]);
    }

    #[test]
    fn step_probed_exposes_internal_lines() {
        let c = counter2();
        let mut sim = Sim::new(&c);
        sim.set_state(&[true, false]);
        let (outs, values) = sim.step_probed(&[]);
        assert_eq!(outs, vec![true, false]);
        // Internal NOT of q0 must read false.
        let n0 = c.fanins(c.dffs()[0])[0];
        assert!(!values[n0.index()]);
    }
}
