//! ISCAS-85/89-style `.bench` netlists as a [`Circuit`] interchange format.
//!
//! ```text
//! # scal-netlist bench
//! INPUT(a)
//! INPUT(b)
//! g = NAND(a, b)
//! q = DFF(g)
//! OUTPUT(q)
//! ```
//!
//! The classic dialect (`INPUT`/`OUTPUT` declarations, `sig = KIND(…)`
//! assignments, `DFF` for state) is extended with `CONST0()`/`CONST1()`
//! sources and `MINORITY`/`MAJORITY` for the threshold gates. Everything
//! bench cannot say natively — duplicate or non-identifier node names,
//! flip-flop power-up values, output names that differ from their signal —
//! rides in `#@` fidelity directives (`#@name <sig> <name>`,
//! `#@init <sig> <0|1>`, `#@out <ord> <name>`), which foreign tools skip as
//! comments. The writer emits node statements in id order, so round trips
//! through the reader are bit-identical; hand-written files may list
//! statements in any order (a deferral worklist resolves forward
//! references, as ISCAS benchmarks require).

use crate::circuit::NodeView;
use crate::{Circuit, GateKind, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Error from the bench reader: the offending 1-based line and a
/// description of the first problem found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for BenchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BenchError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, BenchError> {
    Err(BenchError {
        line,
        message: message.into(),
    })
}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Buf => "BUFF",
        GateKind::Not => "NOT",
        GateKind::And => "AND",
        GateKind::Or => "OR",
        GateKind::Nand => "NAND",
        GateKind::Nor => "NOR",
        GateKind::Xor => "XOR",
        GateKind::Xnor => "XNOR",
        GateKind::Minority => "MINORITY",
        GateKind::Majority => "MAJORITY",
    }
}

fn kind_from_name(name: &str) -> Option<GateKind> {
    Some(match name.to_ascii_uppercase().as_str() {
        "BUFF" | "BUF" => GateKind::Buf,
        "NOT" => GateKind::Not,
        "AND" => GateKind::And,
        "OR" => GateKind::Or,
        "NAND" => GateKind::Nand,
        "NOR" => GateKind::Nor,
        "XOR" => GateKind::Xor,
        "XNOR" => GateKind::Xnor,
        "MINORITY" | "MIN" => GateKind::Minority,
        "MAJORITY" | "MAJ" => GateKind::Majority,
        _ => return None,
    })
}

/// `true` for signals the writer reserves for unnamed nodes (`N<digits>`).
fn is_canonical(sig: &str) -> bool {
    sig.strip_prefix('N')
        .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
}

fn is_valid_signal(sig: &str) -> bool {
    !sig.is_empty() && sig.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Serializes the circuit in the bench format.
pub(crate) fn emit(c: &Circuit) -> String {
    // Pick one signal per node: its own name when bench can express it and
    // no earlier node claimed it, else the canonical N<idx>.
    let mut used: HashMap<&str, NodeId> = HashMap::new();
    let mut signals: Vec<String> = Vec::with_capacity(c.len());
    let mut name_directives: Vec<(usize, &str)> = Vec::new();
    for id in c.node_ids() {
        let sig = match c.name(id) {
            Some(n) if is_valid_signal(n) && !is_canonical(n) && !used.contains_key(n) => {
                used.insert(n, id);
                n.to_owned()
            }
            other => {
                if let Some(n) = other {
                    name_directives.push((id.index(), n));
                }
                format!("N{}", id.index())
            }
        };
        signals.push(sig);
    }

    let mut s = String::from("# scal-netlist bench\n");
    for id in c.node_ids() {
        let sig = &signals[id.index()];
        match c.view(id) {
            NodeView::Input => {
                let _ = writeln!(s, "INPUT({sig})");
            }
            NodeView::Const(v) => {
                let _ = writeln!(s, "{sig} = CONST{}()", u8::from(v));
            }
            NodeView::Gate(kind) => {
                let fanins: Vec<&str> = c
                    .fanins(id)
                    .iter()
                    .map(|f| signals[f.index()].as_str())
                    .collect();
                let _ = writeln!(s, "{sig} = {}({})", kind_name(kind), fanins.join(", "));
            }
            NodeView::Dff { .. } => {
                let d = c
                    .fanins(id)
                    .first()
                    .map_or("", |f| signals[f.index()].as_str());
                let _ = writeln!(s, "{sig} = DFF({d})");
            }
        }
    }
    for o in c.outputs() {
        let _ = writeln!(s, "OUTPUT({})", signals[o.node.index()]);
    }
    for (idx, name) in name_directives {
        let _ = writeln!(s, "#@name {} {name}", signals[idx]);
    }
    for &ff in c.dffs() {
        if let NodeView::Dff { init: true } = c.view(ff) {
            let _ = writeln!(s, "#@init {} 1", signals[ff.index()]);
        }
    }
    for (ord, o) in c.outputs().iter().enumerate() {
        if o.name != signals[o.node.index()] {
            let _ = writeln!(s, "#@out {ord} {}", o.name);
        }
    }
    s
}

#[derive(Debug)]
enum Stmt {
    Input {
        sig: String,
    },
    Gate {
        sig: String,
        kind: GateKind,
        fanins: Vec<String>,
    },
    Dff {
        sig: String,
        d: String,
    },
    Const {
        sig: String,
        value: bool,
    },
}

impl Stmt {
    fn sig(&self) -> &str {
        match self {
            Stmt::Input { sig }
            | Stmt::Gate { sig, .. }
            | Stmt::Dff { sig, .. }
            | Stmt::Const { sig, .. } => sig,
        }
    }
}

#[derive(Debug)]
enum Directive {
    Name { sig: String, name: String },
    Init { sig: String, value: bool },
    Out { ord: usize, name: String },
}

/// Parses the bench format (classic files and this writer's output alike).
pub(crate) fn parse(src: &str) -> Result<Circuit, BenchError> {
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut directives: Vec<(usize, Directive)> = Vec::new();

    for (ln0, raw) in src.lines().enumerate() {
        let line = ln0 + 1;
        let trimmed = raw.trim();
        if let Some(rest) = trimmed.strip_prefix("#@") {
            directives.push((line, parse_directive(rest, line)?));
            continue;
        }
        // Anything from '#' on is a comment (ISCAS convention).
        let code = trimmed.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(sig) = strip_call(code, "INPUT") {
            let sig = sig.trim();
            if !is_valid_signal_lenient(sig) {
                return err(line, format!("bad INPUT signal {sig:?}"));
            }
            stmts.push((
                line,
                Stmt::Input {
                    sig: sig.to_owned(),
                },
            ));
        } else if let Some(sig) = strip_call(code, "OUTPUT") {
            let sig = sig.trim();
            if !is_valid_signal_lenient(sig) {
                return err(line, format!("bad OUTPUT signal {sig:?}"));
            }
            outputs.push((line, sig.to_owned()));
        } else if let Some((lhs, rhs)) = code.split_once('=') {
            let sig = lhs.trim().to_owned();
            if !is_valid_signal_lenient(&sig) {
                return err(line, format!("bad signal {sig:?}"));
            }
            let rhs = rhs.trim();
            let Some(open) = rhs.find('(') else {
                return err(line, format!("expected KIND(...) after '=', got {rhs:?}"));
            };
            let Some(stripped) = rhs[open..]
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
            else {
                return err(line, format!("unbalanced parentheses in {rhs:?}"));
            };
            let kind_str = rhs[..open].trim();
            let args: Vec<&str> = if stripped.trim().is_empty() {
                Vec::new()
            } else {
                stripped.split(',').map(str::trim).collect()
            };
            if args.iter().any(|a| !is_valid_signal_lenient(a)) {
                return err(line, format!("bad argument signal in {rhs:?}"));
            }
            let stmt = match kind_str.to_ascii_uppercase().as_str() {
                "DFF" => {
                    if args.len() != 1 {
                        return err(line, "DFF takes exactly one argument");
                    }
                    Stmt::Dff {
                        sig,
                        d: args[0].to_owned(),
                    }
                }
                "CONST0" | "CONST1" => {
                    if !args.is_empty() {
                        return err(line, "CONST0/CONST1 take no arguments");
                    }
                    Stmt::Const {
                        sig,
                        value: kind_str.ends_with('1'),
                    }
                }
                other => {
                    let Some(kind) = kind_from_name(other) else {
                        return err(line, format!("unknown gate kind {other:?}"));
                    };
                    if !kind.arity_ok(args.len()) {
                        return err(line, format!("arity {} invalid for {other}", args.len()));
                    }
                    Stmt::Gate {
                        sig,
                        kind,
                        fanins: args.iter().map(|&a| a.to_owned()).collect(),
                    }
                }
            };
            stmts.push((line, stmt));
        } else {
            return err(line, format!("cannot parse {code:?}"));
        }
    }

    build(stmts, &outputs, &directives)
}

fn is_valid_signal_lenient(sig: &str) -> bool {
    // Classic benchmarks use identifiers; be permissive about charset but
    // firm about structure so arbitrary bytes still produce typed errors.
    !sig.is_empty()
        && !sig.contains(|c: char| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '=' | '#'))
}

fn strip_call<'a>(code: &'a str, kw: &str) -> Option<&'a str> {
    let rest = code.strip_prefix(kw)?.trim_start();
    rest.strip_prefix('(')?.trim_end().strip_suffix(')')
}

fn parse_directive(rest: &str, line: usize) -> Result<Directive, BenchError> {
    let rest = rest.trim();
    let (kw, rest) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    match kw {
        "name" => {
            let (sig, name) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or(())
                .or_else(|()| err(line, "#@name needs <signal> <name>"))?;
            Ok(Directive::Name {
                sig: sig.to_owned(),
                name: name.trim().to_owned(),
            })
        }
        "init" => {
            let (sig, v) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or(())
                .or_else(|()| err(line, "#@init needs <signal> <0|1>"))?;
            let value = match v.trim() {
                "0" => false,
                "1" => true,
                other => return err(line, format!("bad #@init value {other:?}")),
            };
            Ok(Directive::Init {
                sig: sig.to_owned(),
                value,
            })
        }
        "out" => {
            let (ord, name) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or(())
                .or_else(|()| err(line, "#@out needs <ord> <name>"))?;
            let ord: usize = ord
                .parse()
                .ok()
                .ok_or(())
                .or_else(|()| err(line, format!("bad #@out ordinal {ord:?}")))?;
            Ok(Directive::Out {
                ord,
                name: name.trim().to_owned(),
            })
        }
        other => err(line, format!("unknown directive #@{other}")),
    }
}

fn build(
    stmts: Vec<(usize, Stmt)>,
    outputs: &[(usize, String)],
    directives: &[(usize, Directive)],
) -> Result<Circuit, BenchError> {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for (line, s) in &stmts {
        if seen.insert(s.sig(), *line).is_some() {
            return err(*line, format!("signal {:?} defined twice", s.sig()));
        }
    }
    // Power-up values must be known at flip-flop creation time, so resolve
    // `#@init` directives against signals up front.
    let mut init_of: HashMap<&str, bool> = HashMap::new();
    for (line, d) in directives {
        if let Directive::Init { sig, value } = d {
            match seen.get(sig.as_str()) {
                Some(_) => {
                    init_of.insert(sig, *value);
                }
                None => return err(*line, format!("#@init references unknown signal {sig:?}")),
            }
        }
    }

    // Replay in file order with deferral: ISCAS files commonly reference
    // signals defined further down, and DFF feedback requires it anyway.
    let mut c = Circuit::new();
    let mut map: HashMap<String, NodeId> = HashMap::new();
    let mut dff_connects: Vec<(usize, NodeId, String)> = Vec::new();
    let mut pending = stmts;
    while !pending.is_empty() {
        let mut next_round = Vec::new();
        let mut progressed = false;
        for (line, s) in pending {
            let ready = match &s {
                Stmt::Input { .. } | Stmt::Dff { .. } | Stmt::Const { .. } => true,
                Stmt::Gate { fanins, .. } => fanins.iter().all(|f| map.contains_key(f)),
            };
            if !ready {
                next_round.push((line, s));
                continue;
            }
            progressed = true;
            let (sig, id) = match s {
                Stmt::Input { sig } => {
                    let id = c.input(sig.clone());
                    (sig, id)
                }
                Stmt::Gate { sig, kind, fanins } => {
                    let ids: Vec<_> = fanins.iter().map(|f| map[f.as_str()]).collect();
                    let id = c.gate(kind, &ids);
                    if !is_canonical(&sig) {
                        c.set_name(id, sig.clone());
                    }
                    (sig, id)
                }
                Stmt::Dff { sig, d } => {
                    let id = c.dff(init_of.get(sig.as_str()).copied().unwrap_or(false));
                    dff_connects.push((line, id, d));
                    if !is_canonical(&sig) {
                        c.set_name(id, sig.clone());
                    }
                    (sig, id)
                }
                Stmt::Const { sig, value } => {
                    let id = c.constant(value);
                    if !is_canonical(&sig) {
                        c.set_name(id, sig.clone());
                    }
                    (sig, id)
                }
            };
            map.insert(sig, id);
        }
        if !progressed {
            let (line, s) = &next_round[0];
            return err(
                *line,
                format!(
                    "signal {:?} is part of an undefined or cyclic chain",
                    s.sig()
                ),
            );
        }
        pending = next_round;
    }

    for (line, ff, d) in dff_connects {
        match map.get(d.as_str()) {
            Some(&id) => c.connect_dff(ff, id),
            None => return err(line, format!("DFF input signal {d:?} is never defined")),
        }
    }

    let mut output_names: Vec<Option<&str>> = vec![None; outputs.len()];
    for (line, d) in directives {
        match d {
            Directive::Name { sig, name } => match map.get(sig.as_str()) {
                Some(&id) => c.set_name(id, name.clone()),
                None => return err(*line, format!("#@name references unknown signal {sig:?}")),
            },
            Directive::Init { sig, .. } => {
                // Applied at creation via `init_of`; only validate the
                // target's kind here.
                let id = map[sig.as_str()];
                if !matches!(c.view(id), NodeView::Dff { .. }) {
                    return err(*line, format!("#@init target {sig:?} is not a DFF"));
                }
            }
            Directive::Out { ord, name } => match output_names.get_mut(*ord) {
                Some(slot) => *slot = Some(name),
                None => return err(*line, format!("#@out ordinal {ord} out of range")),
            },
        }
    }
    for (ord, (line, sig)) in outputs.iter().enumerate() {
        match map.get(sig.as_str()) {
            Some(&id) => {
                let name = output_names[ord].unwrap_or(sig.as_str());
                c.mark_output(name, id);
            }
            None => return err(*line, format!("OUTPUT references unknown signal {sig:?}")),
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let one = c.constant(true);
        let g = c.nand(&[a, b, one]);
        c.set_name(g, "front");
        let ff = c.dff(true);
        let x = c.xor(&[g, ff]);
        c.connect_dff(ff, x);
        c.mark_output("q", x);
        c
    }

    #[test]
    fn writer_output_is_bit_stable() {
        let c = sample();
        let b = emit(&c);
        let back = parse(&b).unwrap_or_else(|e| panic!("{e}\n{b}"));
        assert_eq!(emit(&back), b);
        crate::io::assert_circuit_eq(&c, &back);
    }

    #[test]
    fn classic_iscas_style_file_parses() {
        let src = "\
            # s27-flavoured hand-written file\n\
            INPUT(G0)\n\
            OUTPUT(G17)\n\
            G17 = NOT(G11)\n\
            G11 = AND(G0, G5)\n\
            G5 = DFF(G10)\n\
            G10 = NOR(G17, G0)\n";
        let c = parse(src).unwrap();
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.dffs().len(), 1);
        assert_eq!(c.outputs()[0].name, "G17");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn duplicate_names_round_trip_via_directives() {
        let mut c = Circuit::new();
        let a = c.input("sig");
        let g = c.not(a);
        c.set_name(g, "sig");
        let h = c.not(g);
        c.set_name(h, "space name");
        c.mark_output("sig", h);
        let b = emit(&c);
        let back = parse(&b).unwrap();
        crate::io::assert_circuit_eq(&c, &back);
        assert_eq!(emit(&back), b);
    }

    #[test]
    fn init_directive_sets_power_up_value() {
        let src = "INPUT(x)\nq = DFF(x)\nOUTPUT(q)\n#@init q 1\n";
        let c = parse(src).unwrap();
        assert_eq!(c.view(c.dffs()[0]), NodeView::Dff { init: true });
    }

    #[test]
    fn typed_errors_not_panics() {
        for (src, needle) in [
            ("garbage line", "cannot parse"),
            ("INPUT(a)\nINPUT(a)", "defined twice"),
            ("a = AND(b, c)", "undefined or cyclic"),
            ("a = NOT(a)", "undefined or cyclic"),
            ("a = FROB(b)", "unknown gate kind"),
            ("INPUT(a)\nb = NOT(a, a)", "arity"),
            ("INPUT(a)\nb = DFF(a, a)", "exactly one"),
            ("b = CONST0(x)", "no arguments"),
            ("OUTPUT(zz)", "unknown signal"),
            ("q = DFF(nothing)", "never defined"),
            ("INPUT(a)\n#@init a 1", "not a DFF"),
            ("#@init q 1", "unknown signal"),
            ("#@out 3 f", "out of range"),
            ("#@frob x", "unknown directive"),
            ("INPUT(a b)", "bad INPUT signal"),
            ("x = AND(", "unbalanced parentheses"),
            ("x = 5", "expected KIND"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{src:?}: got {e}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn inline_comments_are_stripped() {
        let src = "INPUT(a)  # primary input\nb = NOT(a)\nOUTPUT(b)";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 2);
    }
}
