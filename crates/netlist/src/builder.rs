//! Expression-driven circuit construction.

use crate::{Circuit, GateKind, NodeId};
use scal_logic::{Expr, LogicError};

impl Circuit {
    /// Builds gates realizing `expr` over existing nodes, returning the
    /// root. Variables resolve through `bindings` (name → node); AND/OR/XOR
    /// become n-ary gates, NOT an inverter, constants constant sources.
    ///
    /// ```
    /// use scal_netlist::Circuit;
    /// use scal_logic::Expr;
    ///
    /// let mut c = Circuit::new();
    /// let a = c.input("a");
    /// let b = c.input("b");
    /// let e: Expr = "a & ~b".parse().unwrap();
    /// let f = c.add_expr(&e, &[("a", a), ("b", b)]).unwrap();
    /// c.mark_output("f", f);
    /// assert_eq!(c.eval(&[true, false]), vec![true]);
    /// assert_eq!(c.eval(&[true, true]), vec![false]);
    /// ```
    ///
    /// # Errors
    ///
    /// [`LogicError::UnknownVariable`] if the expression references a name
    /// missing from `bindings`.
    pub fn add_expr(
        &mut self,
        expr: &Expr,
        bindings: &[(&str, NodeId)],
    ) -> Result<NodeId, LogicError> {
        match expr {
            Expr::Var(name) => bindings
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, id)| id)
                .ok_or_else(|| LogicError::UnknownVariable { name: name.clone() }),
            Expr::Const(v) => Ok(self.constant(*v)),
            Expr::Not(e) => {
                let inner = self.add_expr(e, bindings)?;
                Ok(self.not(inner))
            }
            Expr::And(es) => self.add_nary(GateKind::And, es, bindings),
            Expr::Or(es) => self.add_nary(GateKind::Or, es, bindings),
            Expr::Xor(es) => self.add_nary(GateKind::Xor, es, bindings),
        }
    }

    fn add_nary(
        &mut self,
        kind: GateKind,
        es: &[Expr],
        bindings: &[(&str, NodeId)],
    ) -> Result<NodeId, LogicError> {
        let mut fanins = Vec::with_capacity(es.len());
        for e in es {
            fanins.push(self.add_expr(e, bindings)?);
        }
        Ok(if fanins.len() == 1 {
            fanins[0]
        } else {
            self.gate(kind, &fanins)
        })
    }

    /// One-call construction of a combinational circuit from named output
    /// expressions: inputs are the union of all variables (sorted), each
    /// expression becomes one output.
    ///
    /// # Errors
    ///
    /// Propagates parse-free [`LogicError`]s from expression construction.
    pub fn from_exprs(outputs: &[(&str, &Expr)]) -> Result<Circuit, LogicError> {
        let mut names: Vec<String> = outputs.iter().flat_map(|(_, e)| e.vars()).collect();
        names.sort();
        names.dedup();
        let mut c = Circuit::new();
        let nodes: Vec<NodeId> = names.iter().map(|n| c.input(n.clone())).collect();
        let bindings: Vec<(&str, NodeId)> = names
            .iter()
            .map(String::as_str)
            .zip(nodes.iter().copied())
            .collect();
        for (name, expr) in outputs {
            let node = c.add_expr(expr, &bindings)?;
            c.mark_output(*name, node);
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_exprs_builds_multi_output_circuits() {
        let sum: Expr = "a ^ b ^ cin".parse().unwrap();
        let carry: Expr = "a & b | b & cin | a & cin".parse().unwrap();
        let c = Circuit::from_exprs(&[("sum", &sum), ("carry", &carry)]).unwrap();
        assert_eq!(c.inputs().len(), 3); // a, b, cin sorted
        for m in 0..8u32 {
            // Input order is sorted: a=bit0, b=bit1, cin=bit2.
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let out = c.eval(&ins);
            assert_eq!(out[0], m.count_ones() % 2 == 1);
            assert_eq!(out[1], m.count_ones() >= 2);
        }
    }

    #[test]
    fn expr_tt_matches_circuit_tt() {
        let e: Expr = "(a | ~b) ^ (c & a)".parse().unwrap();
        let circuit = Circuit::from_exprs(&[("f", &e)]).unwrap();
        let expect = e.to_tt(&["a", "b", "c"]).unwrap();
        assert_eq!(circuit.output_tt(0), expect);
    }

    #[test]
    fn unknown_binding_rejected() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let e: Expr = "a & mystery".parse().unwrap();
        assert!(matches!(
            c.add_expr(&e, &[("a", a)]),
            Err(LogicError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn single_term_collapses_without_gate() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let e: Expr = "a".parse().unwrap();
        let node = c.add_expr(&e, &[("a", a)]).unwrap();
        assert_eq!(node, a);
        assert_eq!(c.cost().gates, 0);
    }
}
