//! Hardware cost accounting.
//!
//! The paper measures designs in *flip-flops* and *gates* (Table 4.1) and
//! occasionally in *gate inputs* ("the number of gate inputs … may also be
//! cost factors to consider", §4.5; Chapter 6 weights minority-module inputs).

use crate::circuit::NodeView;
use crate::{Circuit, GateKind};

/// A hardware cost summary.
///
/// Buffers ([`GateKind::Buf`]) are modelling artifacts (named wires) and are
/// excluded from all counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Logic gates (everything except buffers and flip-flops).
    pub gates: usize,
    /// Total fanin pins across counted gates.
    pub gate_inputs: usize,
    /// D flip-flops.
    pub flip_flops: usize,
    /// Of the gates, how many are inverters.
    pub inverters: usize,
    /// Of the gates, how many are minority/majority threshold modules.
    pub threshold_modules: usize,
}

impl Cost {
    /// Computes the cost of a circuit.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        let mut cost = Cost::default();
        for id in circuit.node_ids() {
            match circuit.view(id) {
                NodeView::Gate(GateKind::Buf) => {}
                NodeView::Gate(k) => {
                    cost.gates += 1;
                    cost.gate_inputs += circuit.fanins(id).len();
                    if k == GateKind::Not {
                        cost.inverters += 1;
                    }
                    if matches!(k, GateKind::Minority | GateKind::Majority) {
                        cost.threshold_modules += 1;
                    }
                }
                NodeView::Dff { .. } => cost.flip_flops += 1,
                NodeView::Input | NodeView::Const(_) => {}
            }
        }
        cost
    }

    /// Component-wise sum (for system-level totals).
    #[must_use]
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            gates: self.gates + other.gates,
            gate_inputs: self.gate_inputs + other.gate_inputs,
            flip_flops: self.flip_flops + other.flip_flops,
            inverters: self.inverters + other.inverters,
            threshold_modules: self.threshold_modules + other.threshold_modules,
        }
    }
}

impl Circuit {
    /// Hardware cost of this circuit (see [`Cost`]).
    #[must_use]
    pub fn cost(&self) -> Cost {
        Cost::of(self)
    }

    /// Number of gates of a specific kind.
    #[must_use]
    pub fn count_kind(&self, kind: GateKind) -> usize {
        self.node_ids()
            .filter(|&id| self.view(id) == NodeView::Gate(kind))
            .count()
    }
}

impl core::fmt::Display for Cost {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} gates ({} inputs), {} flip-flops",
            self.gates, self.gate_inputs, self.flip_flops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_construction() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g1 = c.nand(&[a, b]);
        let g2 = c.not(g1);
        let buf = c.buf(g2);
        let ff = c.dff(false);
        c.connect_dff(ff, buf);
        c.mark_output("q", ff);

        let cost = c.cost();
        assert_eq!(cost.gates, 2); // nand + not; buf excluded
        assert_eq!(cost.gate_inputs, 3);
        assert_eq!(cost.flip_flops, 1);
        assert_eq!(cost.inverters, 1);
        assert_eq!(cost.threshold_modules, 0);
        assert_eq!(c.count_kind(GateKind::Nand), 1);
    }

    #[test]
    fn threshold_modules_counted() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("d");
        let m = c.gate(GateKind::Minority, &[a, b, d]);
        c.mark_output("m", m);
        let cost = c.cost();
        assert_eq!(cost.threshold_modules, 1);
        assert_eq!(cost.gate_inputs, 3);
    }

    #[test]
    fn plus_sums_components() {
        let a = Cost {
            gates: 1,
            gate_inputs: 2,
            flip_flops: 3,
            inverters: 1,
            threshold_modules: 0,
        };
        let b = Cost {
            gates: 10,
            gate_inputs: 20,
            flip_flops: 30,
            inverters: 0,
            threshold_modules: 5,
        };
        let s = a.plus(b);
        assert_eq!(s.gates, 11);
        assert_eq!(s.gate_inputs, 22);
        assert_eq!(s.flip_flops, 33);
        assert_eq!(s.threshold_modules, 5);
    }

    #[test]
    fn display_is_informative() {
        let c = Circuit::new();
        assert_eq!(c.cost().to_string(), "0 gates (0 inputs), 0 flip-flops");
    }
}
