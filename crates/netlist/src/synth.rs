//! Parameterized synthetic circuit generators for scaling studies.
//!
//! The paper's fixtures top out around 120 nodes; these generators produce
//! structurally varied designs from 1k to 1M gates so the compile and
//! campaign pipelines are measured where production netlists live. Every
//! generator is deterministic: the same `(kind, target_gates, seed)` triple
//! always yields the identical circuit, node ids included, so BENCH rows
//! and CI smoke runs are reproducible.
//!
//! Kinds:
//!
//! * [`SynthKind::RippleAdder`] — a wide ripple-carry adder (deep carry
//!   chain, minimal reconvergence);
//! * [`SynthKind::CarrySelect`] — a carry-select adder (duplicated blocks
//!   and mux trees, wide + moderately deep);
//! * [`SynthKind::MultiplierTree`] — an array multiplier reduced
//!   column-wise with full/half adders (massive reconvergent fanout);
//! * [`SynthKind::ChainedMachines`] — a cascade of small two-flip-flop
//!   Kohavi-style detector cells (sequential, long state chains);
//! * [`SynthKind::RandomSelfDual`] — a seeded random DAG completed to a
//!   self-dual function, so alternating-pair campaigns run on it with few
//!   enough primary inputs for exhaustive pair sweeps.

use crate::{Circuit, GateKind, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A synthetic circuit family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthKind {
    /// Wide ripple-carry adder.
    RippleAdder,
    /// Carry-select adder with 8-bit blocks.
    CarrySelect,
    /// Array multiplier with column-wise adder-tree reduction.
    MultiplierTree,
    /// Cascaded two-flip-flop sequence-detector cells.
    ChainedMachines,
    /// Seeded random DAG, self-dualized output by output.
    RandomSelfDual,
}

impl SynthKind {
    /// All kinds, in a stable order.
    pub const ALL: [SynthKind; 5] = [
        SynthKind::RippleAdder,
        SynthKind::CarrySelect,
        SynthKind::MultiplierTree,
        SynthKind::ChainedMachines,
        SynthKind::RandomSelfDual,
    ];

    /// Stable lower-case name, accepted back by `FromStr`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SynthKind::RippleAdder => "ripple",
            SynthKind::CarrySelect => "csel",
            SynthKind::MultiplierTree => "mult",
            SynthKind::ChainedMachines => "chain",
            SynthKind::RandomSelfDual => "selfdual",
        }
    }
}

impl core::fmt::Display for SynthKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for SynthKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ripple" | "adder" => Ok(SynthKind::RippleAdder),
            "csel" | "carry-select" => Ok(SynthKind::CarrySelect),
            "mult" | "multiplier" => Ok(SynthKind::MultiplierTree),
            "chain" | "machines" => Ok(SynthKind::ChainedMachines),
            "selfdual" | "random" => Ok(SynthKind::RandomSelfDual),
            other => Err(format!(
                "unknown synthetic kind {other:?} (want ripple|csel|mult|chain|selfdual)"
            )),
        }
    }
}

/// Generates a circuit of roughly `target_gates` gates (within ~2× for the
/// structured families, whose size quantizes to their cell counts).
///
/// `seed` only affects [`SynthKind::RandomSelfDual`]; the structured
/// families are fully determined by the target size.
#[must_use]
pub fn generate(kind: SynthKind, target_gates: usize, seed: u64) -> Circuit {
    let c = match kind {
        SynthKind::RippleAdder => ripple_adder_wide(target_gates.div_ceil(5).max(1)),
        SynthKind::CarrySelect => carry_select_adder(target_gates.div_ceil(15).max(8), 8),
        SynthKind::MultiplierTree => multiplier_tree(isqrt(target_gates / 6).max(2)),
        SynthKind::ChainedMachines => chained_machines(target_gates.div_ceil(9).max(1)),
        SynthKind::RandomSelfDual => {
            // Two identical cores plus the dualizing mux layer; round the
            // per-core budget up so the assembled circuit meets the target.
            random_selfdual(12, target_gates.div_ceil(2).max(8), seed)
        }
    };
    debug_assert!(c.validate().is_ok(), "generator built invalid circuit");
    c
}

fn isqrt(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    while r * r > n {
        r -= 1;
    }
    r
}

/// One full adder out of classic two-level logic: 5 gates.
fn full_adder(c: &mut Circuit, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let p = c.xor(&[a, b]);
    let s = c.xor(&[p, cin]);
    let g = c.and(&[a, b]);
    let t = c.and(&[p, cin]);
    let cout = c.or(&[g, t]);
    (s, cout)
}

/// A `bits`-wide ripple-carry adder (~5·bits gates, carry chain depth
/// ~2·bits).
#[must_use]
pub fn ripple_adder_wide(bits: usize) -> Circuit {
    let mut c = Circuit::new();
    let a: Vec<_> = (0..bits).map(|i| c.input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..bits).map(|i| c.input(format!("b{i}"))).collect();
    let mut carry = c.input("cin");
    for i in 0..bits {
        let (s, cout) = full_adder(&mut c, a[i], b[i], carry);
        c.mark_output(format!("s{i}"), s);
        carry = cout;
    }
    c.mark_output("cout", carry);
    c
}

/// A carry-select adder: `bits` total width in `block`-bit blocks, each
/// block computed for both carry-in values and muxed (~15 gates/bit).
///
/// # Panics
///
/// Panics if `block` is zero.
#[must_use]
pub fn carry_select_adder(bits: usize, block: usize) -> Circuit {
    assert!(block > 0, "block width must be positive");
    let mut c = Circuit::new();
    let a: Vec<_> = (0..bits).map(|i| c.input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..bits).map(|i| c.input(format!("b{i}"))).collect();
    let mut carry = c.input("cin");
    let zero = c.constant(false);
    let one = c.constant(true);
    let mut lo = 0;
    while lo < bits {
        let hi = (lo + block).min(bits);
        // Both speculative block results.
        let (mut c0, mut c1) = (zero, one);
        let mut sums = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let (s0, n0) = full_adder(&mut c, a[i], b[i], c0);
            let (s1, n1) = full_adder(&mut c, a[i], b[i], c1);
            sums.push((s0, s1));
            c0 = n0;
            c1 = n1;
        }
        // Select with the real carry-in.
        let nsel = c.not(carry);
        for (i, (s0, s1)) in sums.into_iter().enumerate() {
            let t1 = c.and(&[carry, s1]);
            let t0 = c.and(&[nsel, s0]);
            let s = c.or(&[t1, t0]);
            c.mark_output(format!("s{}", lo + i), s);
        }
        let t1 = c.and(&[carry, c1]);
        let t0 = c.and(&[nsel, c0]);
        carry = c.or(&[t1, t0]);
        lo = hi;
    }
    c.mark_output("cout", carry);
    c
}

/// A `bits`×`bits` array multiplier: partial products reduced column by
/// column with full/half adders (~6·bits² gates).
#[must_use]
pub fn multiplier_tree(bits: usize) -> Circuit {
    let mut c = Circuit::new();
    let a: Vec<_> = (0..bits).map(|i| c.input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..bits).map(|i| c.input(format!("b{i}"))).collect();
    // Column j collects all partial-product bits of weight 2^j.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * bits];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = c.and(&[ai, bj]);
            columns[i + j].push(pp);
        }
    }
    // Carry-save reduction: compress every column to a single bit, pushing
    // carries rightward — the adder tree the family is named for. Carries
    // can structurally spill one column past the arithmetic width, so the
    // column list grows on demand.
    let mut j = 0;
    while j < columns.len() {
        if columns[j].len() > 1 && j + 1 == columns.len() {
            columns.push(Vec::new());
        }
        while columns[j].len() > 1 {
            if columns[j].len() >= 3 {
                let (x, y, z) = {
                    let col = &mut columns[j];
                    (col.pop().unwrap(), col.pop().unwrap(), col.pop().unwrap())
                };
                let (s, cout) = full_adder(&mut c, x, y, z);
                columns[j].push(s);
                columns[j + 1].push(cout);
            } else {
                let (x, y) = {
                    let col = &mut columns[j];
                    (col.pop().unwrap(), col.pop().unwrap())
                };
                let s = c.xor(&[x, y]);
                let cout = c.and(&[x, y]);
                columns[j].push(s);
                columns[j + 1].push(cout);
            }
        }
        j += 1;
    }
    for (j, col) in columns.iter().enumerate() {
        if let Some(&bit) = col.first() {
            c.mark_output(format!("p{j}"), bit);
        }
    }
    c
}

/// A cascade of `cells` two-flip-flop sequence-detector cells in the style
/// of the paper's Kohavi machines (~9 gates + 2 flip-flops per cell). Each
/// cell's detect output feeds the next cell's data input; the shared clock
/// is implicit, a single primary input drives the head of the chain.
#[must_use]
pub fn chained_machines(cells: usize) -> Circuit {
    let mut c = Circuit::new();
    let x = c.input("x");
    let mut w = x;
    for i in 0..cells {
        // State (y1 y0), next-state and output logic of a small Mealy
        // detector: y0 tracks the last symbol, y1 arms on a 01 pattern,
        // z fires while armed and the history re-matches.
        let y0 = c.dff(false);
        let y1 = c.dff(i % 2 == 1);
        let nw = c.not(w);
        let ny0 = c.not(y0);
        let arm = c.and(&[ny0, w]);
        let hold = c.and(&[y1, nw]);
        let next1 = c.or(&[arm, hold]);
        c.connect_dff(y0, w);
        c.connect_dff(y1, next1);
        let hist = c.xor(&[y0, w]);
        let z = c.and(&[y1, hist]);
        if i == cells - 1 {
            c.set_name(z, format!("z{i}"));
        }
        w = z;
    }
    c.mark_output("z", w);
    c
}

/// The gate kinds the random DAG draws from (no threshold gates: the core
/// is instantiated twice and the sizes must stay predictable).
const RANDOM_KINDS: [GateKind; 7] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Not,
];

/// A seeded random DAG over `inputs` variables, completed output by output
/// to the self-dual closure f*(s, x) = s·f(x) ∨ s̄·¬f(x̄).
///
/// Self-duality of every output is guaranteed by construction — that is
/// exactly the alternating property pair campaigns require — so the result
/// is campaign-runnable whenever `inputs + 1 ≤ 24`. Roughly
/// `2·core_gates + 3·inputs` gates total.
#[must_use]
pub fn random_selfdual(inputs: usize, core_gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    // Draw the core as a reusable recipe so the true and complemented
    // instantiations are structurally identical.
    let mut recipe: Vec<(GateKind, Vec<usize>)> = Vec::with_capacity(core_gates);
    for g in 0..core_gates {
        let kind = RANDOM_KINDS[rng.gen_range(0..RANDOM_KINDS.len())];
        let arity = match kind {
            GateKind::Not => 1,
            _ => 2 + usize::from(rng.gen_bool(0.25)),
        };
        let pool = inputs + g;
        let picks = (0..arity)
            .map(|_| {
                if pool > 24 && rng.gen_bool(0.7) {
                    // Bias toward recent nodes to keep the DAG deep rather
                    // than bushy-at-the-inputs.
                    pool - 1 - rng.gen_range(0..24)
                } else {
                    rng.gen_range(0..pool)
                }
            })
            .collect();
        recipe.push((kind, picks));
    }
    let outs = 4.min(core_gates);

    let build_core = |c: &mut Circuit, leaves: &[NodeId]| -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = leaves.to_vec();
        for (kind, picks) in &recipe {
            let fanins: Vec<NodeId> = picks.iter().map(|&p| pool[p]).collect();
            pool.push(c.gate(*kind, &fanins));
        }
        pool[pool.len() - outs..].to_vec()
    };

    let mut c = Circuit::new();
    let s = c.input("s");
    let xs: Vec<_> = (0..inputs).map(|i| c.input(format!("x{i}"))).collect();
    let nxs: Vec<_> = xs.iter().map(|&x| c.not(x)).collect();
    let pos = build_core(&mut c, &xs);
    let neg = build_core(&mut c, &nxs);
    let ns = c.not(s);
    for (k, (&f, &fneg)) in pos.iter().zip(&neg).enumerate() {
        let nfneg = c.not(fneg);
        let t1 = c.and(&[s, f]);
        let t0 = c.and(&[ns, nfneg]);
        let z = c.or(&[t1, t0]);
        c.mark_output(format!("z{k}"), z);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::assert_circuit_eq;
    use crate::NetlistFormat;

    #[test]
    fn generators_are_deterministic_and_valid() {
        for kind in SynthKind::ALL {
            let a = generate(kind, 2000, 7);
            let b = generate(kind, 2000, 7);
            assert!(a.validate().is_ok(), "{kind}: invalid");
            assert_circuit_eq(&a, &b);
            assert!(!a.outputs().is_empty(), "{kind}: no outputs");
            // Within a factor of ~2.5 of the target (cell quantization).
            assert!(
                a.len() >= 800 && a.len() <= 5000,
                "{kind}: {} nodes for target 2000",
                a.len()
            );
        }
    }

    #[test]
    fn seeds_change_the_random_dag() {
        let a = generate(SynthKind::RandomSelfDual, 1000, 1);
        let b = generate(SynthKind::RandomSelfDual, 1000, 2);
        let fa = a.write_string(NetlistFormat::ScalText);
        let fb = b.write_string(NetlistFormat::ScalText);
        assert_ne!(fa, fb, "different seeds must differ");
    }

    #[test]
    fn ripple_adder_adds() {
        let c = ripple_adder_wide(4);
        // 11 + 6 + 1 = 18 = 0b10010.
        let mut ins = vec![false; 9];
        for (i, bit) in [true, true, false, true].into_iter().enumerate() {
            ins[i] = bit;
        }
        for (i, bit) in [false, true, true, false].into_iter().enumerate() {
            ins[4 + i] = bit;
        }
        ins[8] = true;
        let out = c.eval(&ins);
        assert_eq!(out, vec![false, true, false, false, true]);
    }

    #[test]
    fn carry_select_matches_ripple() {
        let bits = 6;
        let csel = carry_select_adder(bits, 3);
        let ripple = ripple_adder_wide(bits);
        for case in [0u32, 1, 9, 63, 64, 1000, 4095, 8191] {
            let mut ins = Vec::with_capacity(2 * bits + 1);
            for i in 0..bits {
                ins.push(case >> i & 1 == 1);
            }
            for i in 0..bits {
                ins.push(case >> (bits + i) & 1 == 1);
            }
            ins.push(case >> (2 * bits) & 1 == 1);
            assert_eq!(csel.eval(&ins), ripple.eval(&ins), "case {case}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let bits = 4;
        let c = multiplier_tree(bits);
        for (x, y) in [(0u32, 0u32), (1, 1), (3, 5), (7, 9), (15, 15), (12, 11)] {
            let mut ins = Vec::new();
            for i in 0..bits {
                ins.push(x >> i & 1 == 1);
            }
            for i in 0..bits {
                ins.push(y >> i & 1 == 1);
            }
            let out = c.eval(&ins);
            let mut got = 0u32;
            for (j, &bit) in out.iter().enumerate() {
                got |= u32::from(bit) << j;
            }
            assert_eq!(got, x * y, "{x}*{y}");
        }
    }

    #[test]
    fn chained_machines_are_sequential_and_single_input() {
        let c = chained_machines(50);
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.dffs().len(), 100);
        assert!(c.validate().is_ok());
        // The chain must actually react to stimuli somewhere.
        let mut sim = crate::Sim::new(&c);
        for step in 0..32 {
            let _ = sim.step(&[step % 3 != 0]);
        }
    }

    #[test]
    fn selfdual_outputs_alternate() {
        // ¬f(¬inputs) == f(inputs) for every output — the property the
        // engine's alternating-pair sweep depends on.
        let c = random_selfdual(6, 40, 3);
        assert_eq!(c.inputs().len(), 7);
        for case in 0u32..128 {
            let ins: Vec<bool> = (0..7).map(|i| case >> i & 1 == 1).collect();
            let inv: Vec<bool> = ins.iter().map(|b| !b).collect();
            let a = c.eval(&ins);
            let b: Vec<bool> = c.eval(&inv).iter().map(|b| !b).collect();
            assert_eq!(a, b, "case {case:07b}");
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in SynthKind::ALL {
            assert_eq!(kind.name().parse::<SynthKind>(), Ok(kind));
        }
        assert!("frob".parse::<SynthKind>().is_err());
    }

    #[test]
    fn all_kinds_round_trip_all_formats_at_2k_gates() {
        for kind in SynthKind::ALL {
            let c = generate(kind, 2000, 11);
            for format in [
                NetlistFormat::ScalText,
                NetlistFormat::Verilog,
                NetlistFormat::Bench,
            ] {
                let s = c.write_string(format);
                let back =
                    Circuit::read(&s, format).unwrap_or_else(|e| panic!("{kind}/{format}: {e}"));
                assert_circuit_eq(&c, &back);
                assert_eq!(
                    back.write_string(format),
                    s,
                    "{kind}/{format} not bit-stable"
                );
            }
        }
    }
}
