//! Gate kinds and their logical/structural properties.

/// The gate alphabet of the SCAL netlist substrate.
///
/// Covers the paper's "standard gates" (Definition 3.2: NOT, NAND, AND, NOR,
/// OR), the non-standard XOR/XNOR it contrasts them with, and the minority /
/// majority threshold modules of Chapter 6. `Buf` is an explicit
/// non-inverting buffer (useful for modelling named internal lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Non-inverting buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// AND (≥ 1 input).
    And,
    /// OR (≥ 1 input).
    Or,
    /// NAND (≥ 1 input).
    Nand,
    /// NOR (≥ 1 input).
    Nor,
    /// Exclusive-OR / odd parity (≥ 1 input).
    Xor,
    /// Exclusive-NOR / even parity (≥ 1 input).
    Xnor,
    /// Minority threshold module (odd input count ≥ 3): output 1 iff fewer
    /// than half the inputs are 1 (paper Fig. 6.1a).
    Minority,
    /// Majority threshold module (odd input count ≥ 3): output 1 iff more
    /// than half the inputs are 1 (paper Fig. 6.1b).
    Majority,
}

impl GateKind {
    /// Evaluates the gate on its input values.
    ///
    /// # Panics
    ///
    /// Panics if the arity is invalid for the kind (see [`GateKind::arity_ok`]).
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.arity_ok(inputs.len()),
            "bad arity {} for {self:?}",
            inputs.len()
        );
        let ones = inputs.iter().filter(|&&b| b).count();
        let n = inputs.len();
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => ones == n,
            GateKind::Nand => ones != n,
            GateKind::Or => ones > 0,
            GateKind::Nor => ones == 0,
            GateKind::Xor => ones % 2 == 1,
            GateKind::Xnor => ones % 2 == 0,
            GateKind::Minority => ones * 2 < n,
            GateKind::Majority => ones * 2 > n,
        }
    }

    /// 64-lane bit-parallel evaluation: each bit position is an independent
    /// evaluation.
    ///
    /// # Panics
    ///
    /// Panics on invalid arity.
    #[must_use]
    pub fn eval64(self, inputs: &[u64]) -> u64 {
        assert!(
            self.arity_ok(inputs.len()),
            "bad arity {} for {self:?}",
            inputs.len()
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |a, &b| a & b),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |a, &b| a & b),
            GateKind::Or => inputs.iter().fold(0, |a, &b| a | b),
            GateKind::Nor => !inputs.iter().fold(0, |a, &b| a | b),
            GateKind::Xor => inputs.iter().fold(0, |a, &b| a ^ b),
            GateKind::Xnor => !inputs.iter().fold(0, |a, &b| a ^ b),
            GateKind::Minority | GateKind::Majority => {
                // Per-lane popcount threshold via a small sorting network is
                // overkill here; do it lane-wise with counters in u64 chunks.
                let n = inputs.len();
                let mut out = 0u64;
                for lane in 0..64 {
                    let ones = inputs.iter().filter(|&&w| (w >> lane) & 1 == 1).count();
                    let v = if self == GateKind::Minority {
                        ones * 2 < n
                    } else {
                        ones * 2 > n
                    };
                    if v {
                        out |= 1 << lane;
                    }
                }
                out
            }
        }
    }

    /// `true` iff `n` fanins is a legal arity for this kind.
    #[must_use]
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Buf | GateKind::Not => n == 1,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => n >= 1,
            GateKind::Xor | GateKind::Xnor => n >= 1,
            GateKind::Minority | GateKind::Majority => n >= 3 && n % 2 == 1,
        }
    }

    /// Inversion parity the gate contributes to a path through it, if it is
    /// parity-definite.
    ///
    /// Returns `Some(false)` for non-inverting gates, `Some(true)` for
    /// inverting ones, and `None` for XOR/XNOR, through which path parity is
    /// not well defined (they are binate; Theorem 3.8 does not apply).
    #[must_use]
    pub fn inversion_parity(self) -> Option<bool> {
        match self {
            GateKind::Buf | GateKind::And | GateKind::Or | GateKind::Majority => Some(false),
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Minority => Some(true),
            GateKind::Xor | GateKind::Xnor => None,
        }
    }

    /// `true` iff the gate is unate (monotone or antitone) in every input —
    /// the property Theorem 3.7's "unate gates in the path" requires.
    #[must_use]
    pub fn is_unate(self) -> bool {
        !matches!(self, GateKind::Xor | GateKind::Xnor)
    }

    /// `true` iff this is one of the paper's *standard gates* (Definition
    /// 3.2: NOT, NAND, AND, NOR, OR) — the gates with an input-dominance
    /// property that Theorem 3.9 exploits.
    #[must_use]
    pub fn is_standard(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::And | GateKind::Nor | GateKind::Or
        )
    }

    /// The dominant input value of a standard multi-input gate: the value
    /// that forces the output regardless of other inputs (0 for AND/NAND, 1
    /// for OR/NOR). `None` for NOT/BUF and non-standard gates.
    #[must_use]
    pub fn dominant_input(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Short lowercase mnemonic (`"nand"` etc.).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Minority => "min",
            GateKind::Majority => "maj",
        }
    }
}

impl core::fmt::Display for GateKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_truth_tables() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(!GateKind::Xor.eval(&[true, true, false, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
    }

    #[test]
    fn minority_majority_complementary() {
        // For odd arity, minority(X) = ¬majority(X).
        for m in 0..32u32 {
            let ins: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            assert_ne!(GateKind::Minority.eval(&ins), GateKind::Majority.eval(&ins));
        }
    }

    #[test]
    fn minority_matches_fig_6_1a() {
        // 3-input minority truth table from Fig 6.1a: 1 iff ≤1 input is 1.
        for m in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(GateKind::Minority.eval(&ins), m.count_ones() <= 1);
        }
    }

    #[test]
    fn eval64_agrees_with_scalar() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Minority,
            GateKind::Majority,
        ] {
            let arity = 3;
            // Pack all 8 input combinations into lanes 0..8.
            let mut words = vec![0u64; arity];
            for m in 0..8u64 {
                for (i, w) in words.iter_mut().enumerate() {
                    if (m >> i) & 1 == 1 {
                        *w |= 1 << m;
                    }
                }
            }
            let out = kind.eval64(&words);
            for m in 0..8u64 {
                let ins: Vec<bool> = (0..arity).map(|i| (m >> i) & 1 == 1).collect();
                assert_eq!((out >> m) & 1 == 1, kind.eval(&ins), "{kind:?} m={m}");
            }
        }
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Minority.arity_ok(3));
        assert!(GateKind::Minority.arity_ok(5));
        assert!(!GateKind::Minority.arity_ok(4));
        assert!(!GateKind::Minority.arity_ok(1));
        assert!(GateKind::Nand.arity_ok(7));
    }

    #[test]
    fn structural_properties() {
        assert_eq!(GateKind::Nand.inversion_parity(), Some(true));
        assert_eq!(GateKind::Or.inversion_parity(), Some(false));
        assert_eq!(GateKind::Xor.inversion_parity(), None);
        assert!(GateKind::Nand.is_unate());
        assert!(!GateKind::Xnor.is_unate());
        assert!(GateKind::Nor.is_standard());
        assert!(!GateKind::Xor.is_standard());
        assert!(!GateKind::Majority.is_standard());
        assert_eq!(GateKind::Nand.dominant_input(), Some(false));
        assert_eq!(GateKind::Nor.dominant_input(), Some(true));
        assert_eq!(GateKind::Xor.dominant_input(), None);
    }
}
