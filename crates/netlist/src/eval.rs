//! Combinational evaluation: scalar and 64-lane bit-parallel, with optional
//! forced values at fault sites.

use crate::circuit::{Circuit, NodeKind};
use crate::{NodeId, Site};
use scal_logic::Tt;

/// A forced value at a [`Site`] — the primitive `scal-faults` builds stuck-at
/// faults from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Override {
    /// Where the value is forced.
    pub site: Site,
    /// The forced value.
    pub value: bool,
}

impl Override {
    /// Forces `value` on the output stem of `node`.
    #[must_use]
    pub fn stem(node: NodeId, value: bool) -> Self {
        Override {
            site: Site::Stem(node),
            value,
        }
    }

    /// Forces `value` on fanin pin `pin` of `node`.
    #[must_use]
    pub fn branch(node: NodeId, pin: usize, value: bool) -> Self {
        Override {
            site: Site::Branch { node, pin },
            value,
        }
    }
}

/// Override lookup index built once per evaluation sweep.
///
/// The naive per-node scan made every sweep `O(overrides × nodes)`; sorting
/// the (tiny) override list up front makes each query a binary search, and
/// the empty case — the fault-free sweep, by far the most common — free.
pub(crate) struct OverrideIndex {
    /// `(site, value)` pairs sorted by site; first match wins on duplicates,
    /// matching the old `Iterator::find` semantics.
    sorted: Vec<(Site, bool)>,
}

impl OverrideIndex {
    pub(crate) fn new(overrides: &[Override]) -> Self {
        let mut sorted: Vec<(Site, bool)> = overrides.iter().map(|o| (o.site, o.value)).collect();
        // Stable sort keeps the earliest entry first among equal sites.
        sorted.sort_by_key(|&(site, _)| site);
        sorted.dedup_by_key(|&mut (site, _)| site);
        OverrideIndex { sorted }
    }

    fn get(&self, site: Site) -> Option<bool> {
        if self.sorted.is_empty() {
            return None;
        }
        self.sorted
            .binary_search_by_key(&site, |&(s, _)| s)
            .ok()
            .map(|i| self.sorted[i].1)
    }

    pub(crate) fn stem(&self, node: NodeId) -> Option<bool> {
        self.get(Site::Stem(node))
    }

    pub(crate) fn branch(&self, node: NodeId, pin: usize) -> Option<bool> {
        self.get(Site::Branch { node, pin })
    }
}

impl Circuit {
    /// Evaluates a purely combinational circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential (use [`crate::Sim`]) or
    /// `inputs.len()` does not match the input count.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        self.eval_with(inputs, &[])
    }

    /// Evaluates a purely combinational circuit with forced values.
    ///
    /// # Panics
    ///
    /// As [`Circuit::eval`].
    #[must_use]
    pub fn eval_with(&self, inputs: &[bool], overrides: &[Override]) -> Vec<bool> {
        assert!(
            !self.is_sequential(),
            "eval() is for combinational circuits; use Sim for sequential ones"
        );
        let (outputs, _next) = self.eval_comb(inputs, &[], overrides);
        outputs
    }

    /// Core combinational sweep: given primary `inputs` and flip-flop
    /// `state` (in [`Circuit::dffs`] order), computes `(outputs, next_state)`
    /// with `overrides` applied.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or combinational cycles.
    #[must_use]
    pub fn eval_comb(
        &self,
        inputs: &[bool],
        state: &[bool],
        overrides: &[Override],
    ) -> (Vec<bool>, Vec<bool>) {
        let values = self.eval_nodes(inputs, state, overrides);
        let index = OverrideIndex::new(overrides);
        let outputs = self
            .outputs
            .iter()
            .map(|o| values[o.node.index()])
            .collect();
        let next_state = self
            .dffs
            .iter()
            .map(|&ff| {
                let d = self.nodes[ff.index()].fanins[0];
                // A branch fault on the flip-flop's D pin corrupts what gets
                // latched.
                index.branch(ff, 0).unwrap_or(values[d.index()])
            })
            .collect();
        (outputs, next_state)
    }

    /// Computes the value of *every node* (indexed by [`NodeId::index`]) for
    /// the given inputs and flip-flop state, with overrides applied.
    ///
    /// This is what the paper's analytic machinery calls `G(X)`, the value of
    /// an arbitrary line `g` under input `X`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or combinational cycles.
    #[must_use]
    pub fn eval_nodes(&self, inputs: &[bool], state: &[bool], overrides: &[Override]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs.len(), "input arity mismatch");
        assert_eq!(state.len(), self.dffs.len(), "state arity mismatch");
        let index = OverrideIndex::new(overrides);
        let mut values = vec![false; self.nodes.len()];
        let order = self.topo_order();

        // Pre-place sources.
        for (i, &inp) in self.inputs.iter().enumerate() {
            values[inp.index()] = inputs[i];
        }
        for (i, &ff) in self.dffs.iter().enumerate() {
            values[ff.index()] = state[i];
        }

        let mut scratch: Vec<bool> = Vec::new();
        for id in order {
            let node = &self.nodes[id.index()];
            let mut v = match &node.kind {
                NodeKind::Input => values[id.index()],
                NodeKind::Const(c) => *c,
                NodeKind::Dff { .. } => values[id.index()],
                NodeKind::Gate(kind) => {
                    scratch.clear();
                    for (pin, f) in node.fanins.iter().enumerate() {
                        let fv = index.branch(id, pin).unwrap_or(values[f.index()]);
                        scratch.push(fv);
                    }
                    kind.eval(&scratch)
                }
            };
            if let Some(forced) = index.stem(id) {
                v = forced;
            }
            values[id.index()] = v;
        }
        values
    }

    /// 64-lane bit-parallel analogue of [`Circuit::eval_nodes`]: every bit
    /// lane of the input words is an independent evaluation.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or combinational cycles.
    #[must_use]
    pub fn eval_nodes64(&self, inputs: &[u64], state: &[u64], overrides: &[Override]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.inputs.len(), "input arity mismatch");
        assert_eq!(state.len(), self.dffs.len(), "state arity mismatch");
        let index = OverrideIndex::new(overrides);
        let mut values = vec![0u64; self.nodes.len()];
        for (i, &inp) in self.inputs.iter().enumerate() {
            values[inp.index()] = inputs[i];
        }
        for (i, &ff) in self.dffs.iter().enumerate() {
            values[ff.index()] = state[i];
        }
        let mut scratch: Vec<u64> = Vec::new();
        for id in self.topo_order() {
            let node = &self.nodes[id.index()];
            let mut v = match &node.kind {
                NodeKind::Input => values[id.index()],
                NodeKind::Const(c) => {
                    if *c {
                        u64::MAX
                    } else {
                        0
                    }
                }
                NodeKind::Dff { .. } => values[id.index()],
                NodeKind::Gate(kind) => {
                    scratch.clear();
                    for (pin, f) in node.fanins.iter().enumerate() {
                        let fv = match index.branch(id, pin) {
                            Some(true) => u64::MAX,
                            Some(false) => 0,
                            None => values[f.index()],
                        };
                        scratch.push(fv);
                    }
                    kind.eval64(&scratch)
                }
            };
            match index.stem(id) {
                Some(true) => v = u64::MAX,
                Some(false) => v = 0,
                None => {}
            }
            values[id.index()] = v;
        }
        values
    }

    /// 64-lane evaluation of the primary outputs of a combinational circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential or on arity mismatch.
    #[must_use]
    pub fn eval64(&self, inputs: &[u64]) -> Vec<u64> {
        assert!(!self.is_sequential(), "eval64() is combinational-only");
        let values = self.eval_nodes64(inputs, &[], &[]);
        self.outputs
            .iter()
            .map(|o| values[o.node.index()])
            .collect()
    }

    /// Truth table of primary output `index` as a function of the primary
    /// inputs (input `i` is truth-table variable `i`), computed by exhaustive
    /// bit-parallel sweep.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential, has more than
    /// [`scal_logic::MAX_VARS`] inputs, or `index` is out of range.
    #[must_use]
    pub fn output_tt(&self, index: usize) -> Tt {
        self.node_tt(self.outputs[index].node)
    }

    /// Truth tables of all primary outputs.
    ///
    /// # Panics
    ///
    /// As [`Circuit::output_tt`].
    #[must_use]
    pub fn output_tts(&self) -> Vec<Tt> {
        (0..self.outputs.len()).map(|i| self.output_tt(i)).collect()
    }

    /// Truth table of an arbitrary node's function of the primary inputs —
    /// the paper's `G(X)` for line `g`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential or has more than
    /// [`scal_logic::MAX_VARS`] inputs.
    #[must_use]
    pub fn node_tt(&self, node: NodeId) -> Tt {
        self.node_tt_with(node, &[])
    }

    /// Truth table of a node under forced values — the paper's `F(X, s)`
    /// when the override is a stuck line.
    ///
    /// # Panics
    ///
    /// As [`Circuit::node_tt`].
    #[must_use]
    pub fn node_tt_with(&self, node: NodeId, overrides: &[Override]) -> Tt {
        assert!(!self.is_sequential(), "truth tables are combinational-only");
        let n = self.inputs.len();
        assert!(
            n <= scal_logic::MAX_VARS,
            "too many inputs for a truth table"
        );
        let total = 1usize << n;
        let mut tt = Tt::zero(n);
        let mut base = 0usize;
        let mut words: Vec<u64> = vec![0; n];
        while base < total {
            let lanes = (total - base).min(64);
            for (i, w) in words.iter_mut().enumerate() {
                *w = 0;
                for lane in 0..lanes {
                    let m = (base + lane) as u32;
                    if (m >> i) & 1 == 1 {
                        *w |= 1 << lane;
                    }
                }
            }
            let values = self.eval_nodes64(&words, &[], overrides);
            let out = values[node.index()];
            for lane in 0..lanes {
                if (out >> lane) & 1 == 1 {
                    tt.set((base + lane) as u32, true);
                }
            }
            base += lanes;
        }
        tt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let ci = c.input("ci");
        let s = c.xor(&[a, b, ci]);
        let maj = c.gate(GateKind::Majority, &[a, b, ci]);
        c.mark_output("s", s);
        c.mark_output("co", maj);
        c
    }

    #[test]
    fn full_adder_truth() {
        let c = full_adder();
        for m in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let out = c.eval(&ins);
            let sum = m.count_ones() & 1 == 1;
            let carry = m.count_ones() >= 2;
            assert_eq!(out, vec![sum, carry], "m={m}");
        }
    }

    #[test]
    fn eval64_matches_scalar() {
        let c = full_adder();
        let words = [0b10101010u64, 0b11001100, 0b11110000];
        let outs = c.eval64(&words);
        for lane in 0..8 {
            let ins: Vec<bool> = words.iter().map(|w| (w >> lane) & 1 == 1).collect();
            let scalar = c.eval(&ins);
            assert_eq!((outs[0] >> lane) & 1 == 1, scalar[0]);
            assert_eq!((outs[1] >> lane) & 1 == 1, scalar[1]);
        }
    }

    #[test]
    fn stem_override_forces_value() {
        let c = full_adder();
        let s_node = c.outputs()[0].node;
        let out = c.eval_with(&[true, false, false], &[Override::stem(s_node, false)]);
        assert!(!out[0]);
        assert!(!out[1]);
    }

    #[test]
    fn branch_override_hits_one_pin_only() {
        // g = AND(a, a): forcing pin 0 to 0 while a=1 gives 0; forcing pin 1
        // keeps pin 0 live.
        let mut c = Circuit::new();
        let a = c.input("a");
        let g = c.and(&[a, a]);
        c.mark_output("g", g);
        assert_eq!(
            c.eval_with(&[true], &[Override::branch(g, 0, false)]),
            vec![false]
        );
        assert_eq!(
            c.eval_with(&[true], &[Override::branch(g, 1, false)]),
            vec![false]
        );
        assert_eq!(c.eval_with(&[true], &[]), vec![true]);
    }

    #[test]
    fn node_tt_computes_cone_function() {
        let c = full_adder();
        let s = c.output_tt(0);
        let co = c.output_tt(1);
        assert!(s.is_self_dual());
        assert!(co.is_self_dual());
        assert_eq!(s.count_ones(), 4);
        assert_eq!(co.count_ones(), 4);
    }

    #[test]
    fn node_tt_with_stuck_line() {
        let c = full_adder();
        let co = c.outputs()[1].node;
        let stuck1 = c.node_tt_with(co, &[Override::stem(co, true)]);
        assert!(stuck1.is_one());
    }

    #[test]
    fn tt_beyond_64_minterms() {
        // 7-input parity: 128 minterms, exercises multi-word sweep.
        let mut c = Circuit::new();
        let ins: Vec<_> = (0..7).map(|i| c.input(format!("x{i}"))).collect();
        let x = c.xor(&ins);
        c.mark_output("p", x);
        let tt = c.output_tt(0);
        for m in 0..128u32 {
            assert_eq!(tt.eval(m), m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn const_sources() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let one = c.constant(true);
        let g = c.and(&[a, one]);
        c.mark_output("g", g);
        assert_eq!(c.eval(&[true]), vec![true]);
        assert_eq!(c.eval(&[false]), vec![false]);
    }
}
