//! Format-agnostic netlist I/O: one enum of interchange formats and one
//! `read`/`write` surface over them.
//!
//! Three concrete serializations hide behind [`NetlistFormat`]:
//!
//! * [`NetlistFormat::ScalText`] — the native `scal-netlist v1` text form
//!   (see [`crate::TextError`]'s module);
//! * [`NetlistFormat::Verilog`] — a structural Verilog subset (gate
//!   primitives, `scal_dff`/`scal_minority`/`scal_majority` instances,
//!   `assign`s), with exact node/output names carried in
//!   `(* scal_name = "..." *)` attributes;
//! * [`NetlistFormat::Bench`] — ISCAS-85/89-style `.bench`
//!   (`INPUT(..)` / `OUTPUT(..)` / `sig = NAND(..)` / `sig = DFF(..)`),
//!   with fidelity directives in `#@` comments.
//!
//! All three writers are exact inverses of their readers on every valid
//! [`Circuit`]: `write ∘ read ∘ write == write` bit-for-bit, and the
//! re-read circuit is [`circuit_eq`]-identical (structure, node ids, names,
//! flip-flop init values, output declarations).

use crate::bench_fmt::{self, BenchError};
use crate::text;
use crate::verilog::{self, VerilogError};
use crate::{Circuit, TextError};
use std::path::Path;

/// A netlist serialization format understood by [`Circuit::read`] and
/// [`Circuit::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetlistFormat {
    /// The native `scal-netlist v1` text format.
    #[default]
    ScalText,
    /// Structural Verilog subset (`.v`).
    Verilog,
    /// ISCAS-85/89-style bench format (`.bench`).
    Bench,
}

impl NetlistFormat {
    /// Stable lower-case name (`"text"`, `"verilog"`, `"bench"`) — the
    /// value carried by the service's `netlist_format` wire field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetlistFormat::ScalText => "text",
            NetlistFormat::Verilog => "verilog",
            NetlistFormat::Bench => "bench",
        }
    }

    /// The format conventionally named by a file extension, if any
    /// (`v`/`sv` → Verilog, `bench` → Bench, `scal`/`txt` → ScalText).
    #[must_use]
    pub fn from_extension(ext: &str) -> Option<NetlistFormat> {
        match ext.to_ascii_lowercase().as_str() {
            "v" | "sv" => Some(NetlistFormat::Verilog),
            "bench" => Some(NetlistFormat::Bench),
            "scal" | "txt" => Some(NetlistFormat::ScalText),
            _ => None,
        }
    }

    /// Guesses the format of `src` from its leading significant content.
    /// Never fails: unrecognizable input defaults to [`NetlistFormat::ScalText`],
    /// whose parser then reports a typed header error.
    #[must_use]
    pub fn sniff(src: &str) -> NetlistFormat {
        for raw in src.lines() {
            let l = raw.trim();
            if l.is_empty() {
                continue;
            }
            if l.starts_with("scal-netlist") {
                return NetlistFormat::ScalText;
            }
            if l.starts_with("//")
                || l.starts_with("/*")
                || l.starts_with("module")
                || l.starts_with("(*")
            {
                return NetlistFormat::Verilog;
            }
            if l.starts_with('#') {
                // Comment syntax shared by ScalText and Bench; Bench writers
                // (ours included) tag theirs, otherwise keep scanning.
                if l.contains("bench") {
                    return NetlistFormat::Bench;
                }
                continue;
            }
            if l.starts_with("INPUT(") || l.starts_with("OUTPUT(") || l.contains('=') {
                return NetlistFormat::Bench;
            }
            return NetlistFormat::ScalText;
        }
        NetlistFormat::ScalText
    }
}

impl core::fmt::Display for NetlistFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for NetlistFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" | "scal" => Ok(NetlistFormat::ScalText),
            "verilog" | "v" => Ok(NetlistFormat::Verilog),
            "bench" => Ok(NetlistFormat::Bench),
            other => Err(format!(
                "unknown netlist format {other:?} (want text|verilog|bench)"
            )),
        }
    }
}

/// Errors from the format-agnostic I/O surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// The native text parser rejected the input.
    Text(TextError),
    /// The Verilog parser rejected the input.
    Verilog(VerilogError),
    /// The bench parser rejected the input.
    Bench(BenchError),
    /// [`Circuit::write_path`] could not infer a format from the extension.
    UnknownFormat {
        /// The offending path.
        path: String,
    },
    /// A filesystem read or write failed.
    File {
        /// The offending path.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl core::fmt::Display for IoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IoError::Text(e) => write!(f, "text: {e}"),
            IoError::Verilog(e) => write!(f, "verilog: {e}"),
            IoError::Bench(e) => write!(f, "bench: {e}"),
            IoError::UnknownFormat { path } => {
                write!(f, "cannot infer a netlist format from {path:?}")
            }
            IoError::File { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<TextError> for IoError {
    fn from(e: TextError) -> Self {
        IoError::Text(e)
    }
}

impl From<VerilogError> for IoError {
    fn from(e: VerilogError) -> Self {
        IoError::Verilog(e)
    }
}

impl From<BenchError> for IoError {
    fn from(e: BenchError) -> Self {
        IoError::Bench(e)
    }
}

impl Circuit {
    /// Parses `src` as the given format.
    ///
    /// # Errors
    ///
    /// Returns the wrapped per-format parse error.
    pub fn read(src: &str, format: NetlistFormat) -> Result<Circuit, IoError> {
        match format {
            NetlistFormat::ScalText => Ok(text::parse(src)?),
            NetlistFormat::Verilog => Ok(verilog::parse(src)?),
            NetlistFormat::Bench => Ok(bench_fmt::parse(src)?),
        }
    }

    /// Serializes the circuit in the given format.
    #[must_use]
    pub fn write_string(&self, format: NetlistFormat) -> String {
        match format {
            NetlistFormat::ScalText => text::emit(self),
            NetlistFormat::Verilog => verilog::emit(self),
            NetlistFormat::Bench => bench_fmt::emit(self),
        }
    }

    /// Serializes the circuit in the given format into `w`.
    ///
    /// # Errors
    ///
    /// Propagates write errors from `w`.
    pub fn write<W: std::io::Write>(
        &self,
        w: &mut W,
        format: NetlistFormat,
    ) -> std::io::Result<()> {
        w.write_all(self.write_string(format).as_bytes())
    }

    /// Reads a netlist file, inferring the format from the extension when it
    /// is conventional and from the content otherwise.
    ///
    /// # Errors
    ///
    /// [`IoError::File`] on filesystem failure, else the format's parse
    /// error.
    pub fn read_path(path: impl AsRef<Path>) -> Result<Circuit, IoError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| IoError::File {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let format = path
            .extension()
            .and_then(|e| e.to_str())
            .and_then(NetlistFormat::from_extension)
            .unwrap_or_else(|| NetlistFormat::sniff(&src));
        Circuit::read(&src, format)
    }

    /// Writes the circuit to `path` in the format named by its extension.
    ///
    /// # Errors
    ///
    /// [`IoError::UnknownFormat`] when the extension names no format,
    /// [`IoError::File`] on filesystem failure.
    pub fn write_path(&self, path: impl AsRef<Path>) -> Result<(), IoError> {
        let path = path.as_ref();
        let format = path
            .extension()
            .and_then(|e| e.to_str())
            .and_then(NetlistFormat::from_extension)
            .ok_or_else(|| IoError::UnknownFormat {
                path: path.display().to_string(),
            })?;
        std::fs::write(path, self.write_string(format)).map_err(|e| IoError::File {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }
}

/// Structural equality of two circuits: node-by-node kinds, fanins and
/// names, input/flip-flop order, and output declarations (names included).
/// Returns a description of the first difference.
///
/// This is the round-trip oracle the interchange tests assert with (the
/// safety-net `assert_verilog_eq` pattern): it is strictly stronger than
/// behavioural equivalence and strictly weaker than textual identity of a
/// particular serialization.
///
/// # Errors
///
/// Returns a human-readable description of the first structural difference.
pub fn circuit_eq(a: &Circuit, b: &Circuit) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("node counts differ: {} vs {}", a.len(), b.len()));
    }
    for id in a.node_ids() {
        if a.view(id) != b.view(id) {
            return Err(format!(
                "node {id}: kinds differ: {:?} vs {:?}",
                a.view(id),
                b.view(id)
            ));
        }
        if a.fanins(id) != b.fanins(id) {
            return Err(format!(
                "node {id}: fanins differ: {:?} vs {:?}",
                a.fanins(id),
                b.fanins(id)
            ));
        }
        if a.name(id) != b.name(id) {
            return Err(format!(
                "node {id}: names differ: {:?} vs {:?}",
                a.name(id),
                b.name(id)
            ));
        }
    }
    if a.inputs() != b.inputs() {
        return Err(format!(
            "input order differs: {:?} vs {:?}",
            a.inputs(),
            b.inputs()
        ));
    }
    if a.dffs() != b.dffs() {
        return Err(format!(
            "flip-flop order differs: {:?} vs {:?}",
            a.dffs(),
            b.dffs()
        ));
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(format!(
            "output counts differ: {} vs {}",
            a.outputs().len(),
            b.outputs().len()
        ));
    }
    for (k, (oa, ob)) in a.outputs().iter().zip(b.outputs()).enumerate() {
        if oa != ob {
            return Err(format!("output {k}: {oa:?} vs {ob:?}"));
        }
    }
    Ok(())
}

/// Panicking form of [`circuit_eq`], for tests.
///
/// # Panics
///
/// Panics with the first structural difference.
pub fn assert_circuit_eq(a: &Circuit, b: &Circuit) {
    if let Err(e) = circuit_eq(a, b) {
        panic!("circuits differ: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn sample() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let one = c.constant(true);
        let g = c.nand(&[a, b, one]);
        c.set_name(g, "front");
        let ff = c.dff(true);
        let x = c.xor(&[g, ff]);
        c.connect_dff(ff, x);
        c.mark_output("q", x);
        c.mark_output("raw", g);
        c
    }

    #[test]
    fn every_format_round_trips_the_sample() {
        let c = sample();
        for format in [
            NetlistFormat::ScalText,
            NetlistFormat::Verilog,
            NetlistFormat::Bench,
        ] {
            let s = c.write_string(format);
            let back = Circuit::read(&s, format).unwrap_or_else(|e| panic!("{format}: {e}\n{s}"));
            assert_circuit_eq(&c, &back);
            assert_eq!(back.write_string(format), s, "{format} not bit-stable");
        }
    }

    #[test]
    fn sniffing_recognizes_all_three_writers() {
        let c = sample();
        for format in [
            NetlistFormat::ScalText,
            NetlistFormat::Verilog,
            NetlistFormat::Bench,
        ] {
            assert_eq!(NetlistFormat::sniff(&c.write_string(format)), format);
        }
        assert_eq!(NetlistFormat::sniff(""), NetlistFormat::ScalText);
        assert_eq!(NetlistFormat::sniff("INPUT(a)\n"), NetlistFormat::Bench);
    }

    #[test]
    fn extension_and_name_round_trip() {
        for format in [
            NetlistFormat::ScalText,
            NetlistFormat::Verilog,
            NetlistFormat::Bench,
        ] {
            assert_eq!(format.name().parse::<NetlistFormat>(), Ok(format));
        }
        assert_eq!(
            NetlistFormat::from_extension("V"),
            Some(NetlistFormat::Verilog)
        );
        assert_eq!(
            NetlistFormat::from_extension("bench"),
            Some(NetlistFormat::Bench)
        );
        assert_eq!(NetlistFormat::from_extension("json"), None);
        assert!("frob".parse::<NetlistFormat>().is_err());
    }

    #[test]
    fn path_io_round_trips_with_autodetection() {
        let c = sample();
        let dir = std::env::temp_dir();
        for (ext, format) in [
            ("v", NetlistFormat::Verilog),
            ("bench", NetlistFormat::Bench),
            ("scal", NetlistFormat::ScalText),
        ] {
            let path = dir.join(format!("scal_io_test_{}.{ext}", std::process::id()));
            c.write_path(&path).unwrap();
            let back = Circuit::read_path(&path).unwrap();
            assert_circuit_eq(&c, &back);
            assert_eq!(back.write_string(format), c.write_string(format));
            let _ = std::fs::remove_file(&path);
        }
        // Unknown extension: write refuses, read falls back to sniffing.
        let odd = dir.join(format!("scal_io_test_{}.net", std::process::id()));
        assert!(matches!(
            c.write_path(&odd),
            Err(IoError::UnknownFormat { .. })
        ));
        std::fs::write(&odd, c.write_string(NetlistFormat::Verilog)).unwrap();
        let back = Circuit::read_path(&odd).unwrap();
        assert_circuit_eq(&c, &back);
        let _ = std::fs::remove_file(&odd);
    }

    #[test]
    fn circuit_eq_reports_differences() {
        let c = sample();
        let mut d = sample();
        d.set_name(d.outputs()[0].node, "renamed");
        assert!(circuit_eq(&c, &c).is_ok());
        let err = circuit_eq(&c, &d).unwrap_err();
        assert!(err.contains("names differ"), "{err}");
        let mut e = sample();
        e.mark_output("extra", e.inputs()[0]);
        assert!(circuit_eq(&c, &e).unwrap_err().contains("output counts"));
        let mut f = Circuit::new();
        let x = f.input("x");
        let y = f.input("y");
        let g = f.gate(GateKind::And, &[x, y]);
        f.mark_output("q", g);
        assert!(circuit_eq(&c, &f).unwrap_err().contains("node counts"));
    }

    #[test]
    fn write_into_io_writer_matches_write_string() {
        let c = sample();
        let mut buf = Vec::new();
        c.write(&mut buf, NetlistFormat::Bench).unwrap();
        assert_eq!(buf, c.write_string(NetlistFormat::Bench).into_bytes());
    }
}
