//! Gate-level netlist substrate for self-checking alternating logic.
//!
//! The paper's objects of study are *networks* — gate-level implementations of
//! logic functions (its Definition: "a network is an implementation of a
//! function, and a system is a combination of networks"). This crate provides
//! that substrate:
//!
//! * [`Circuit`] — a directed netlist of typed gates ([`GateKind`]), primary
//!   inputs, constants, and D flip-flops, built through a small builder API;
//! * [`Circuit::eval`]-style combinational evaluation, scalar and 64-lane bit-parallel,
//!   with optional forced values at a [`Site`] (the hook `scal-faults` uses to
//!   inject stuck-at faults);
//! * [`Sim`] — a synchronous sequential simulator stepping one clock per call;
//! * structural queries ([`Structure`]) — fanout, cones, path parity, unate
//!   paths — the raw material for the paper's Algorithm 3.1;
//! * [`Cost`] accounting (gates, gate inputs, flip-flops) matching the cost
//!   measures of Table 4.1 and Chapter 5.
//!
//! # Example
//!
//! ```
//! use scal_netlist::{Circuit, GateKind};
//!
//! // Build MAJ(a, b, c) from NAND gates.
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let cc = c.input("c");
//! let nab = c.gate(GateKind::Nand, &[a, b]);
//! let nac = c.gate(GateKind::Nand, &[a, cc]);
//! let nbc = c.gate(GateKind::Nand, &[b, cc]);
//! let maj = c.gate(GateKind::Nand, &[nab, nac, nbc]);
//! c.mark_output("maj", maj);
//!
//! assert_eq!(c.eval(&[true, true, false]), vec![true]);
//! assert_eq!(c.cost().gates, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench_fmt;
mod builder;
mod circuit;
mod cost;
mod eval;
mod export;
pub mod io;
mod kind;
mod sim;
mod structure;
pub mod synth;
mod text;
mod verilog;

pub use bench_fmt::BenchError;
pub use circuit::{Circuit, NetlistError, NodeId, NodeView, Output};
pub use cost::Cost;
pub use eval::Override;
pub use export::node_level;
pub use io::{assert_circuit_eq, circuit_eq, IoError, NetlistFormat};
pub use kind::GateKind;
pub use sim::Sim;
pub use structure::{PathParity, Structure};
pub use synth::SynthKind;
pub use text::TextError;
pub use verilog::VerilogError;

/// A physical *line* in a network at which a stuck-at fault may occur.
///
/// The paper's fault model places faults on every line of the logic diagram:
/// both gate-output *stems* and the individual *branches* a stem fans out
/// into (its Fig. 3.4 numbers every branch separately, and distinguishing
/// them is what makes the multiple-output analysis of §3.4 non-trivial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Site {
    /// The output stem of a node.
    Stem(NodeId),
    /// The branch feeding fanin pin `pin` of node `node`.
    Branch {
        /// The consuming node.
        node: NodeId,
        /// The fanin position within the consuming node.
        pin: usize,
    },
}

impl core::fmt::Display for Site {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Site::Stem(n) => write!(f, "stem({n})"),
            Site::Branch { node, pin } => write!(f, "branch({node}.{pin})"),
        }
    }
}
