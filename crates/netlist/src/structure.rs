//! Structural queries: fanout, cones, path parity, unate paths.
//!
//! These are the raw structural facts behind the paper's sufficient
//! self-checking conditions: Theorem 3.7 (fanout-free unate path), Theorem
//! 3.8 (uniform path parity, Definition 3.1) and Theorem 3.9 (standard-gate
//! dominance).

use crate::circuit::NodeView;
use crate::{Circuit, NodeId};

/// The set of inversion parities realizable on paths between two lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathParity {
    /// Some path with an even number of inversions exists.
    pub even: bool,
    /// Some path with an odd number of inversions exists.
    pub odd: bool,
    /// Some path passes through a parity-indefinite (binate) gate such as
    /// XOR; Definition 3.1's parity is then not well defined for that path.
    pub crosses_binate: bool,
}

impl PathParity {
    /// `true` iff at least one path exists.
    #[must_use]
    pub fn connected(&self) -> bool {
        self.even || self.odd
    }

    /// Theorem 3.8's premise: all paths share one well-defined parity.
    #[must_use]
    pub fn uniform(&self) -> bool {
        self.connected() && !(self.even && self.odd) && !self.crosses_binate
    }
}

/// Precomputed structural views over a [`Circuit`].
#[derive(Debug)]
pub struct Structure<'c> {
    circuit: &'c Circuit,
    fanouts: Vec<Vec<(NodeId, usize)>>,
    topo: Vec<NodeId>,
}

impl<'c> Structure<'c> {
    /// Builds the fanout map and topological order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has a combinational cycle.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Self {
        let mut fanouts: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); circuit.len()];
        for id in circuit.node_ids() {
            for (pin, f) in circuit.fanins(id).iter().enumerate() {
                fanouts[f.index()].push((id, pin));
            }
        }
        Structure {
            circuit,
            fanouts,
            topo: circuit.topo_order(),
        }
    }

    /// The circuit under analysis.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// All (consumer, pin) pairs fed by `node`'s stem.
    #[must_use]
    pub fn fanouts(&self, node: NodeId) -> &[(NodeId, usize)] {
        &self.fanouts[node.index()]
    }

    /// Number of branches `node`'s stem drives (counting flip-flop D pins).
    #[must_use]
    pub fn fanout_count(&self, node: NodeId) -> usize {
        self.fanouts[node.index()].len()
    }

    /// The transitive fan-in cone of `target` (including `target` itself),
    /// as a membership vector indexed by [`NodeId::index`]. Flip-flop D
    /// inputs are *not* traversed — the cone is combinational, matching the
    /// per-period analysis of Chapter 3.
    #[must_use]
    pub fn cone(&self, target: NodeId) -> Vec<bool> {
        let mut in_cone = vec![false; self.circuit.len()];
        let mut stack = vec![target];
        while let Some(n) = stack.pop() {
            if in_cone[n.index()] {
                continue;
            }
            in_cone[n.index()] = true;
            if matches!(self.circuit.view(n), NodeView::Dff { .. }) {
                continue;
            }
            for &f in self.circuit.fanins(n) {
                stack.push(f);
            }
        }
        in_cone
    }

    /// `true` iff a combinational path from `from` to `to` exists.
    #[must_use]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.cone(to)[from.index()]
    }

    /// The parities of all combinational paths from `from` to `to`,
    /// restricted to the fan-in cone of `to` (Definition 3.1 / Theorem 3.8).
    ///
    /// `from == to` yields the empty path (even, no binate crossing).
    #[must_use]
    pub fn path_parity(&self, from: NodeId, to: NodeId) -> PathParity {
        let in_cone = self.cone(to);
        if !in_cone[from.index()] {
            return PathParity::default();
        }
        // parity_sets[n]: bit0 = even path reaches n, bit1 = odd, bit2 =
        // some reaching path crossed a binate gate.
        let mut sets = vec![0u8; self.circuit.len()];
        sets[from.index()] = 0b001;
        for &n in &self.topo {
            let s = sets[n.index()];
            if s == 0 || !in_cone[n.index()] {
                continue;
            }
            for &(consumer, _pin) in self.fanouts(n) {
                if !in_cone[consumer.index()] {
                    continue;
                }
                let view = self.circuit.view(consumer);
                let contribution = match view {
                    NodeView::Gate(k) => k.inversion_parity(),
                    // Flip-flops and outputs-as-wires do not invert; but a
                    // DFF pin ends the combinational path.
                    NodeView::Dff { .. } => continue,
                    _ => Some(false),
                };
                let mut add = 0u8;
                match contribution {
                    Some(false) => add |= s & 0b011,
                    Some(true) => {
                        if s & 0b001 != 0 {
                            add |= 0b010;
                        }
                        if s & 0b010 != 0 {
                            add |= 0b001;
                        }
                    }
                    None => add |= 0b111,
                }
                add |= s & 0b100; // binate contamination propagates
                sets[consumer.index()] |= add;
            }
        }
        let s = sets[to.index()];
        PathParity {
            even: s & 0b001 != 0,
            odd: s & 0b010 != 0,
            crosses_binate: s & 0b100 != 0,
        }
    }

    /// Theorem 3.7's structural premise: within the cone of `to`, the line
    /// `from` has exactly one forward path to `to`, no node on it fans out
    /// (inside the cone), and every gate on the path is unate.
    #[must_use]
    pub fn single_unate_path(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let in_cone = self.cone(to);
        if !in_cone[from.index()] {
            return false;
        }
        let mut current = from;
        loop {
            let next: Vec<(NodeId, usize)> = self
                .fanouts(current)
                .iter()
                .copied()
                .filter(|(c, _)| in_cone[c.index()])
                .collect();
            if next.len() != 1 {
                return false;
            }
            let (consumer, _) = next[0];
            match self.circuit.view(consumer) {
                NodeView::Gate(k) if !k.is_unate() => return false,
                NodeView::Dff { .. } => return false,
                _ => {}
            }
            if consumer == to {
                return true;
            }
            current = consumer;
        }
    }

    /// Fault-equivalence classes of stems under single fanout: returns, for
    /// each node, the representative stem obtained by walking forward through
    /// buffers and single-fanout chains is *not* computed here; instead this
    /// reports whether `node`'s stem fault is equivalent to its unique branch
    /// (fanout count 1), which is the collapsing rule `scal-faults` uses.
    #[must_use]
    pub fn stem_equals_branch(&self, node: NodeId) -> bool {
        self.fanout_count(node) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    /// g fans out to two paths of different parity reconverging at an OR:
    /// f = (g AND a) OR NOT(g).
    fn unequal_parity_circuit() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let p1 = c.and(&[g, a]);
        let p2 = c.not(g);
        let f = c.or(&[p1, p2]);
        c.mark_output("f", f);
        (c, g, f)
    }

    #[test]
    fn fanout_counting() {
        let (c, g, _f) = unequal_parity_circuit();
        let s = Structure::new(&c);
        assert_eq!(s.fanout_count(g), 2);
        let a = c.inputs()[0];
        assert_eq!(s.fanout_count(a), 2); // feeds g and p1
    }

    #[test]
    fn cone_membership() {
        let (c, g, f) = unequal_parity_circuit();
        let s = Structure::new(&c);
        let cone = s.cone(f);
        assert!(cone[g.index()]);
        assert!(cone[f.index()]);
        assert!(s.reaches(g, f));
        assert!(!s.reaches(f, g));
    }

    #[test]
    fn path_parity_detects_unequal_parity() {
        let (c, g, f) = unequal_parity_circuit();
        let s = Structure::new(&c);
        let pp = s.path_parity(g, f);
        assert!(pp.even && pp.odd);
        assert!(!pp.uniform());
        assert!(!pp.crosses_binate);
    }

    #[test]
    fn path_parity_uniform_through_nands() {
        // Two cascaded NANDs: parity even, single path.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g1 = c.nand(&[a, b]);
        let g2 = c.nand(&[g1, a]);
        c.mark_output("f", g2);
        let s = Structure::new(&c);
        let pp = s.path_parity(g1, g2);
        assert!(pp.uniform());
        assert!(pp.odd && !pp.even);
        let pp_a = s.path_parity(a, g2);
        // a reaches g2 directly (odd: one NAND) and via g1 (even: two NANDs).
        assert!(pp_a.even && pp_a.odd);
    }

    #[test]
    fn path_parity_flags_binate_crossing() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let x = c.xor(&[g, a]);
        c.mark_output("f", x);
        let s = Structure::new(&c);
        let pp = s.path_parity(g, x);
        assert!(pp.crosses_binate);
        assert!(!pp.uniform());
    }

    #[test]
    fn empty_path_is_even() {
        let (c, _g, f) = unequal_parity_circuit();
        let s = Structure::new(&c);
        let pp = s.path_parity(f, f);
        assert!(pp.even && !pp.odd && pp.uniform());
    }

    #[test]
    fn single_unate_path_holds_on_chains() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g1 = c.nand(&[a, b]);
        let g2 = c.nor(&[g1, b]);
        let g3 = c.not(g2);
        c.mark_output("f", g3);
        let s = Structure::new(&c);
        assert!(s.single_unate_path(g1, g3));
        assert!(s.single_unate_path(g2, g3));
    }

    #[test]
    fn single_unate_path_fails_on_fanout_or_xor() {
        let (c, g, f) = unequal_parity_circuit();
        let s = Structure::new(&c);
        assert!(!s.single_unate_path(g, f));

        let mut c2 = Circuit::new();
        let a = c2.input("a");
        let b = c2.input("b");
        let g1 = c2.and(&[a, b]);
        let x = c2.xor(&[g1, a]);
        c2.mark_output("f", x);
        let s2 = Structure::new(&c2);
        assert!(!s2.single_unate_path(g1, x));
    }

    #[test]
    fn cone_restricts_fanout_for_path_rules() {
        // g fans out to output f1's cone once and output f2's cone once;
        // within each single cone it is fanout-free.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f1 = c.or(&[g, a]);
        let f2 = c.nor(&[g, b]);
        c.mark_output("f1", f1);
        c.mark_output("f2", f2);
        let s = Structure::new(&c);
        assert_eq!(s.fanout_count(g), 2);
        assert!(s.single_unate_path(g, f1));
        assert!(s.single_unate_path(g, f2));
    }

    #[test]
    fn minority_counts_as_inverting_unate() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("d");
        let m = c.gate(GateKind::Minority, &[a, b, d]);
        let f = c.not(m);
        c.mark_output("f", f);
        let s = Structure::new(&c);
        let pp = s.path_parity(m, f);
        assert!(pp.uniform() && pp.odd);
        assert!(s.single_unate_path(a, f));
        let pp_a = s.path_parity(a, f);
        assert!(pp_a.uniform() && pp_a.even); // minority (odd) + not (odd) = even
    }
}
