//! The [`Circuit`] netlist type and its builder API.

use crate::GateKind;
use std::fmt;

/// Identifier of a node (input, constant, gate, or flip-flop) in a
/// [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Crate-internal constructor used by the text parser.
pub(crate) fn node_id_from_index(idx: usize) -> NodeId {
    NodeId(u32::try_from(idx).expect("node index fits in u32"))
}

/// A named primary output of a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// User-facing name.
    pub name: String,
    /// The node whose value this output exposes.
    pub node: NodeId,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    Input,
    Const(bool),
    Gate(GateKind),
    Dff { init: bool },
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) fanins: Vec<NodeId>,
    pub(crate) name: Option<String>,
}

/// A read-only view of a node's kind, for pattern matching by analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeView {
    /// A primary input.
    Input,
    /// A constant source.
    Const(bool),
    /// A combinational gate.
    Gate(GateKind),
    /// A D flip-flop with the given power-up value.
    Dff {
        /// Power-up value.
        init: bool,
    },
}

/// Errors detected by [`Circuit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A flip-flop's D input was never connected.
    UnconnectedDff {
        /// The offending flip-flop.
        node: NodeId,
    },
    /// A combinational cycle exists (every feedback loop must pass through a
    /// flip-flop).
    CombinationalCycle,
    /// A gate has an arity its kind does not permit.
    BadArity {
        /// The offending gate.
        node: NodeId,
        /// Its kind.
        kind: GateKind,
        /// Its fanin count.
        arity: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnconnectedDff { node } => {
                write!(f, "flip-flop {node} has no D input connected")
            }
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetlistError::BadArity { node, kind, arity } => {
                write!(f, "gate {node} of kind {kind} has invalid arity {arity}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A gate-level netlist.
///
/// Nodes are created through the builder methods ([`Circuit::input`],
/// [`Circuit::gate`], [`Circuit::dff`], …) and referenced by [`NodeId`].
/// Feedback is expressed by creating a flip-flop first and wiring its D input
/// later with [`Circuit::connect_dff`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) dffs: Vec<NodeId>,
    pub(crate) outputs: Vec<Output>,
}

impl Circuit {
    /// Creates an empty circuit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: NodeKind, fanins: Vec<NodeId>, name: Option<String>) -> NodeId {
        for f in &fanins {
            assert!(
                f.index() < self.nodes.len(),
                "fanin {f} does not exist in this circuit"
            );
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits in u32"));
        self.nodes.push(Node { kind, fanins, name });
        id
    }

    /// Adds a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(NodeKind::Input, Vec::new(), Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds a constant source.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(NodeKind::Const(value), Vec::new(), None)
    }

    /// Adds a gate of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if the arity is invalid for `kind` or a fanin does not exist.
    pub fn gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> NodeId {
        assert!(
            kind.arity_ok(fanins.len()),
            "arity {} invalid for {kind}",
            fanins.len()
        );
        self.push(NodeKind::Gate(kind), fanins.to_vec(), None)
    }

    /// Convenience: inverter.
    pub fn not(&mut self, x: NodeId) -> NodeId {
        self.gate(GateKind::Not, &[x])
    }

    /// Convenience: buffer.
    pub fn buf(&mut self, x: NodeId) -> NodeId {
        self.gate(GateKind::Buf, &[x])
    }

    /// Convenience: n-ary AND.
    pub fn and(&mut self, xs: &[NodeId]) -> NodeId {
        self.gate(GateKind::And, xs)
    }

    /// Convenience: n-ary OR.
    pub fn or(&mut self, xs: &[NodeId]) -> NodeId {
        self.gate(GateKind::Or, xs)
    }

    /// Convenience: n-ary NAND.
    pub fn nand(&mut self, xs: &[NodeId]) -> NodeId {
        self.gate(GateKind::Nand, xs)
    }

    /// Convenience: n-ary NOR.
    pub fn nor(&mut self, xs: &[NodeId]) -> NodeId {
        self.gate(GateKind::Nor, xs)
    }

    /// Convenience: n-ary XOR.
    pub fn xor(&mut self, xs: &[NodeId]) -> NodeId {
        self.gate(GateKind::Xor, xs)
    }

    /// Adds a D flip-flop with power-up value `init`; wire its D input later
    /// with [`Circuit::connect_dff`].
    pub fn dff(&mut self, init: bool) -> NodeId {
        let id = self.push(NodeKind::Dff { init }, Vec::new(), None);
        self.dffs.push(id);
        id
    }

    /// Connects the D input of flip-flop `ff` to `d`.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop or is already connected.
    pub fn connect_dff(&mut self, ff: NodeId, d: NodeId) {
        assert!(d.index() < self.nodes.len(), "fanin {d} does not exist");
        let node = &mut self.nodes[ff.index()];
        assert!(
            matches!(node.kind, NodeKind::Dff { .. }),
            "{ff} is not a flip-flop"
        );
        assert!(node.fanins.is_empty(), "{ff} is already connected");
        node.fanins.push(d);
    }

    /// Rewires fanin pin `pin` of `node` to `new` (circuit surgery, used by
    /// the repair transforms). The caller must keep the graph acyclic;
    /// [`Circuit::validate`] detects violations.
    ///
    /// # Panics
    ///
    /// Panics if `node`/`new` do not exist or `pin` is out of range.
    pub fn replace_fanin(&mut self, node: NodeId, pin: usize, new: NodeId) {
        assert!(
            new.index() < self.nodes.len(),
            "replacement node must exist"
        );
        let fanins = &mut self.nodes[node.index()].fanins;
        assert!(pin < fanins.len(), "pin {pin} out of range for {node}");
        fanins[pin] = new;
    }

    /// Declares `node` a primary output under `name`.
    pub fn mark_output(&mut self, name: impl Into<String>, node: NodeId) {
        assert!(
            node.index() < self.nodes.len(),
            "output node does not exist"
        );
        self.outputs.push(Output {
            name: name.into(),
            node,
        });
    }

    /// Assigns a debug name to a node.
    pub fn set_name(&mut self, node: NodeId, name: impl Into<String>) {
        self.nodes[node.index()].name = Some(name.into());
    }

    /// The debug name of a node, if any.
    #[must_use]
    pub fn name(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()].name.as_deref()
    }

    /// The primary inputs, in creation order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The flip-flops, in creation order (this is also the state-vector
    /// layout used by [`crate::Sim`]).
    #[must_use]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// The primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Total node count (inputs, constants, gates, and flip-flops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the circuit has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The node with the given raw index, if it exists — the O(1) inverse of
    /// [`NodeId::index`] for callers resolving externally supplied indices
    /// (wire frames, CLI arguments).
    #[must_use]
    pub fn node_id(&self, index: usize) -> Option<NodeId> {
        (index < self.nodes.len()).then_some(NodeId(index as u32))
    }

    /// Read-only view of a node's kind.
    #[must_use]
    pub fn view(&self, node: NodeId) -> NodeView {
        match self.nodes[node.index()].kind {
            NodeKind::Input => NodeView::Input,
            NodeKind::Const(v) => NodeView::Const(v),
            NodeKind::Gate(k) => NodeView::Gate(k),
            NodeKind::Dff { init } => NodeView::Dff { init },
        }
    }

    /// Fanins of a node (a flip-flop's single fanin is its D input).
    #[must_use]
    pub fn fanins(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].fanins
    }

    /// `true` iff the circuit contains any flip-flops.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        !self.dffs.is_empty()
    }

    /// Checks structural well-formedness: every flip-flop connected, arities
    /// legal, no combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for &ff in &self.dffs {
            if self.nodes[ff.index()].fanins.is_empty() {
                return Err(NetlistError::UnconnectedDff { node: ff });
            }
        }
        for id in self.node_ids() {
            if let NodeKind::Gate(kind) = self.nodes[id.index()].kind {
                let arity = self.nodes[id.index()].fanins.len();
                if !kind.arity_ok(arity) {
                    return Err(NetlistError::BadArity {
                        node: id,
                        kind,
                        arity,
                    });
                }
            }
        }
        self.try_topo_order()
            .map(|_| ())
            .ok_or(NetlistError::CombinationalCycle)
    }

    /// Topological order of the combinational portion (inputs, constants and
    /// flip-flop *outputs* are sources; flip-flop D inputs are sinks).
    ///
    /// # Panics
    ///
    /// Panics on a combinational cycle; call [`Circuit::validate`] first.
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.try_topo_order()
            .expect("circuit contains a combinational cycle")
    }

    fn try_topo_order(&self) -> Option<Vec<NodeId>> {
        // Kahn's algorithm over a flat CSR consumer adjacency. The obvious
        // `Vec<Vec<u32>>` representation costs one heap allocation per node,
        // which dominates wall-clock on the 10⁵–10⁶-gate synthetic designs;
        // two counting passes into a single edge array keep this linear with
        // exactly three allocations regardless of circuit size.
        let n = self.nodes.len();
        let mut indegree = vec![0u32; n];
        let mut start = vec![0u32; n + 1];
        let mut edges = 0usize;
        for id in self.node_ids() {
            // A flip-flop's output does not depend combinationally on its D
            // input; its fanin edge is cut here.
            if matches!(self.nodes[id.index()].kind, NodeKind::Dff { .. }) {
                continue;
            }
            let fanins = &self.nodes[id.index()].fanins;
            indegree[id.index()] = fanins.len() as u32;
            edges += fanins.len();
            for f in fanins {
                start[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            start[i + 1] += start[i];
        }
        let mut cursor = start.clone();
        let mut consumers = vec![0u32; edges];
        for id in self.node_ids() {
            if matches!(self.nodes[id.index()].kind, NodeKind::Dff { .. }) {
                continue;
            }
            for f in &self.nodes[id.index()].fanins {
                consumers[cursor[f.index()] as usize] = id.0;
                cursor[f.index()] += 1;
            }
        }
        let mut queue: Vec<NodeId> = self
            .node_ids()
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for &c in &consumers[start[id.index()] as usize..start[id.index() + 1] as usize] {
                indegree[c as usize] -= 1;
                if indegree[c as usize] == 0 {
                    queue.push(NodeId(c));
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Copies every node of `other` into `self`, substituting `other`'s
    /// primary inputs with `input_map` (same order and length as
    /// `other.inputs()`), and returns the node ids corresponding to `other`'s
    /// declared outputs. Output names are *not* re-declared.
    ///
    /// # Panics
    ///
    /// Panics if `input_map.len() != other.inputs().len()`.
    pub fn import(&mut self, other: &Circuit, input_map: &[NodeId]) -> Vec<NodeId> {
        let map = self.import_mapped(other, input_map);
        other.outputs.iter().map(|o| map[o.node.index()]).collect()
    }

    /// As [`Circuit::import`], but returns the complete node mapping
    /// (indexed by `other`'s [`NodeId::index`]) — needed to translate fault
    /// sites from a standalone network into a composed system.
    ///
    /// # Panics
    ///
    /// Panics if `input_map.len() != other.inputs().len()`.
    pub fn import_mapped(&mut self, other: &Circuit, input_map: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(
            input_map.len(),
            other.inputs.len(),
            "input map length must match the imported circuit's input count"
        );
        let mut map: Vec<Option<NodeId>> = vec![None; other.nodes.len()];
        for (i, &inp) in other.inputs.iter().enumerate() {
            map[inp.index()] = Some(input_map[i]);
        }
        // First pass: create all nodes except inputs; flip-flops created
        // unconnected so feedback works.
        for id in other.node_ids() {
            if map[id.index()].is_some() {
                continue;
            }
            let new = match other.nodes[id.index()].kind {
                NodeKind::Input => unreachable!("inputs pre-mapped"),
                NodeKind::Const(v) => self.constant(v),
                NodeKind::Gate(k) => {
                    // Fanins are wired in a second pass; create with dummy
                    // fanins is not possible without validation issues, so we
                    // defer gates with unmapped fanins by processing in topo
                    // order below instead.
                    let _ = k;
                    continue;
                }
                NodeKind::Dff { init } => self.dff(init),
            };
            if let Some(name) = &other.nodes[id.index()].name {
                self.nodes[new.index()].name = Some(name.clone());
            }
            map[id.index()] = Some(new);
        }
        // Gates in combinational topological order so fanins are mapped.
        for id in other.topo_order() {
            if map[id.index()].is_some() {
                continue;
            }
            if let NodeKind::Gate(k) = other.nodes[id.index()].kind {
                let fanins: Vec<NodeId> = other.nodes[id.index()]
                    .fanins
                    .iter()
                    .map(|f| map[f.index()].expect("fanin mapped by topo order"))
                    .collect();
                let new = self.gate(k, &fanins);
                if let Some(name) = &other.nodes[id.index()].name {
                    self.nodes[new.index()].name = Some(name.clone());
                }
                map[id.index()] = Some(new);
            }
        }
        // Connect imported flip-flops.
        for &ff in &other.dffs {
            if let Some(&d) = other.nodes[ff.index()].fanins.first() {
                let new_ff = map[ff.index()].expect("dff mapped");
                let new_d = map[d.index()].expect("dff fanin mapped");
                self.connect_dff(new_ff, new_d);
            }
        }
        map.into_iter()
            .map(|m| m.expect("every node mapped"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let s = c.xor(&[a, b]);
        let co = c.and(&[a, b]);
        c.mark_output("s", s);
        c.mark_output("co", co);
        c
    }

    #[test]
    fn build_and_validate() {
        let c = half_adder();
        assert!(c.validate().is_ok());
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.len(), 4);
        assert!(!c.is_sequential());
    }

    #[test]
    fn views_and_fanins() {
        let c = half_adder();
        let s = c.outputs()[0].node;
        assert_eq!(c.view(s), NodeView::Gate(GateKind::Xor));
        assert_eq!(c.fanins(s).len(), 2);
        assert_eq!(c.view(c.inputs()[0]), NodeView::Input);
    }

    #[test]
    fn unconnected_dff_is_error() {
        let mut c = Circuit::new();
        let _ = c.dff(false);
        assert_eq!(
            c.validate(),
            Err(NetlistError::UnconnectedDff { node: NodeId(0) })
        );
    }

    #[test]
    fn dff_breaks_cycles() {
        // Toggle flip-flop: ff.d = NOT ff.q — a legal sequential loop.
        let mut c = Circuit::new();
        let ff = c.dff(false);
        let nq = c.not(ff);
        c.connect_dff(ff, nq);
        c.mark_output("q", ff);
        assert!(c.validate().is_ok());
        assert_eq!(c.topo_order().len(), 2);
    }

    #[test]
    fn combinational_cycle_rejected() {
        // Build a cycle by importing trickery is impossible through the
        // builder (fanins must pre-exist), which is itself the guarantee.
        // Verify the builder's precondition panics instead.
        let mut c = Circuit::new();
        let a = c.input("a");
        let g = c.and(&[a, a]);
        let _ = g;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn names() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let g = c.not(a);
        c.set_name(g, "na");
        assert_eq!(c.name(a), Some("a"));
        assert_eq!(c.name(g), Some("na"));
    }

    #[test]
    fn import_combinational() {
        let ha = half_adder();
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let outs = c.import(&ha, &[x, y]);
        assert_eq!(outs.len(), 2);
        c.mark_output("s", outs[0]);
        assert!(c.validate().is_ok());
        assert_eq!(c.eval(&[true, false]), vec![true]);
        assert_eq!(c.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn import_sequential() {
        // Toggle FF circuit imported twice -> two independent toggles.
        let mut t = Circuit::new();
        let en = t.input("en");
        let ff = t.dff(false);
        let nq = t.not(ff);
        // d = en ? ¬q : q
        let sel1 = t.and(&[en, nq]);
        let nen = t.not(en);
        let sel0 = t.and(&[nen, ff]);
        let d = t.or(&[sel1, sel0]);
        t.connect_dff(ff, d);
        t.mark_output("q", ff);

        let mut c = Circuit::new();
        let e1 = c.input("e1");
        let e2 = c.input("e2");
        let o1 = c.import(&t, &[e1]);
        let o2 = c.import(&t, &[e2]);
        c.mark_output("q1", o1[0]);
        c.mark_output("q2", o2[0]);
        assert!(c.validate().is_ok());
        assert_eq!(c.dffs().len(), 2);

        let mut sim = crate::Sim::new(&c);
        // Step with e1=1, e2=0: q1 toggles next cycle, q2 stays.
        let out = sim.step(&[true, false]);
        assert_eq!(out, vec![false, false]); // outputs before the edge
        let out = sim.step(&[false, false]);
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn display_ids_and_sites() {
        let c = half_adder();
        let id = c.inputs()[0];
        assert_eq!(id.to_string(), "n0");
        assert_eq!(crate::Site::Stem(id).to_string(), "stem(n0)");
        assert_eq!(
            crate::Site::Branch { node: id, pin: 1 }.to_string(),
            "branch(n0.1)"
        );
    }
}
