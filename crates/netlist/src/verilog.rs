//! A structural Verilog subset as a [`Circuit`] interchange format.
//!
//! The emitted dialect is deliberately small and fully round-trippable:
//!
//! ```verilog
//! // scal-netlist Verilog subset
//! module scal_netlist (n0, n1, o0);
//!   (* scal_name = "f" *) output o0;
//!   wire n2;
//!   wire n3;
//!   (* scal_name = "a" *) input n0;
//!   (* scal_name = "b" *) input n1;
//!   nand g2 (n2, n0, n1);
//!   scal_dff #(1'b0) g3 (n3, n2);
//!   assign o0 = n3;
//! endmodule
//! ```
//!
//! Gate primitives (`and`, `or`, `nand`, `nor`, `xor`, `xnor`, `not`,
//! `buf`) use the standard output-first port order; flip-flops and the
//! threshold gates are instances of `scal_dff` (init value as a `#(1'b_)`
//! parameter), `scal_minority` and `scal_majority`. Constants are literal
//! `assign`s. Exact node and output names ride in `(* scal_name = "…" *)`
//! attributes, so the reader reconstructs the circuit bit-identically —
//! node ids included, because creation statements appear in node-id order.
//!
//! The reader additionally accepts hand-written files in this subset:
//! statements in any order (resolved by a deferral worklist), multi-net
//! declarations, net-to-net `assign`s (read as buffers), and gates driving
//! output ports directly.

use crate::circuit::NodeView;
use crate::{Circuit, GateKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Error from the Verilog reader: the offending 1-based line and a
/// description of the first problem found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for VerilogError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, VerilogError> {
    Err(VerilogError {
        line,
        message: message.into(),
    })
}

fn prim_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Buf => "buf",
        GateKind::Not => "not",
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Nand => "nand",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
        GateKind::Minority => "scal_minority",
        GateKind::Majority => "scal_majority",
    }
}

fn prim_kind(name: &str) -> Option<GateKind> {
    Some(match name {
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "scal_minority" => GateKind::Minority,
        "scal_majority" => GateKind::Majority,
        _ => return None,
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            _ => out.push(ch),
        }
    }
    out
}

fn attr_prefix(name: &str) -> String {
    format!("(* scal_name = \"{}\" *) ", escape(name))
}

/// Serializes the circuit as the structural Verilog subset.
pub(crate) fn emit(c: &Circuit) -> String {
    let mut s = String::from("// scal-netlist Verilog subset\n");
    let mut ports: Vec<String> = c.inputs().iter().map(ToString::to_string).collect();
    for ord in 0..c.outputs().len() {
        ports.push(format!("o{ord}"));
    }
    let _ = writeln!(s, "module scal_netlist ({});", ports.join(", "));
    for (ord, o) in c.outputs().iter().enumerate() {
        let port = format!("o{ord}");
        let attr = if o.name == port {
            String::new()
        } else {
            attr_prefix(&o.name)
        };
        let _ = writeln!(s, "  {attr}output {port};");
    }
    for id in c.node_ids() {
        if c.view(id) != NodeView::Input {
            let _ = writeln!(s, "  wire {id};");
        }
    }
    // Creation statements in node-id order: the reader replays them in file
    // order, so node ids survive the round trip exactly.
    for id in c.node_ids() {
        let net = id.to_string();
        let attr = match c.name(id) {
            // An input's name defaults to its net name on read; everything
            // else defaults to unnamed.
            Some(n) if c.view(id) == NodeView::Input && n == net => String::new(),
            Some(n) => attr_prefix(n),
            None => String::new(),
        };
        match c.view(id) {
            NodeView::Input => {
                let _ = writeln!(s, "  {attr}input {net};");
            }
            NodeView::Const(v) => {
                let _ = writeln!(s, "  {attr}assign {net} = 1'b{};", u8::from(v));
            }
            NodeView::Gate(kind) => {
                let fanins: Vec<String> = c.fanins(id).iter().map(ToString::to_string).collect();
                let _ = writeln!(
                    s,
                    "  {attr}{} g{} ({net}, {});",
                    prim_name(kind),
                    id.index(),
                    fanins.join(", ")
                );
            }
            NodeView::Dff { init } => {
                let _ = writeln!(
                    s,
                    "  {attr}scal_dff #(1'b{}) g{} ({net}, {});",
                    u8::from(init),
                    id.index(),
                    c.fanins(id)
                        .first()
                        .map_or_else(|| "1'bx".to_owned(), ToString::to_string)
                );
            }
        }
    }
    for (ord, o) in c.outputs().iter().enumerate() {
        let _ = writeln!(s, "  assign o{ord} = {};", o.node);
    }
    s.push_str("endmodule\n");
    s
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Id(String),
    Lit(bool),
    Str(String),
    LPar,
    RPar,
    Comma,
    Semi,
    Eq,
    Hash,
    AttrOpen,
    AttrClose,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, VerilogError> {
    let mut toks = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    while let Some((i, ch)) = chars.next() {
        match ch {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' => match chars.peek() {
                Some((_, '/')) => {
                    for (_, c) in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                Some((_, '*')) => {
                    chars.next();
                    let mut closed = false;
                    while let Some((_, c)) = chars.next() {
                        if c == '\n' {
                            line += 1;
                        } else if c == '*' && matches!(chars.peek(), Some((_, '/'))) {
                            chars.next();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return err(line, "unterminated block comment");
                    }
                }
                _ => return err(line, "unexpected '/'"),
            },
            '(' => {
                if matches!(chars.peek(), Some((_, '*'))) {
                    chars.next();
                    toks.push((line, Tok::AttrOpen));
                } else {
                    toks.push((line, Tok::LPar));
                }
            }
            '*' => {
                if matches!(chars.peek(), Some((_, ')'))) {
                    chars.next();
                    toks.push((line, Tok::AttrClose));
                } else {
                    return err(line, "unexpected '*'");
                }
            }
            ')' => toks.push((line, Tok::RPar)),
            ',' => toks.push((line, Tok::Comma)),
            ';' => toks.push((line, Tok::Semi)),
            '=' => toks.push((line, Tok::Eq)),
            '#' => toks.push((line, Tok::Hash)),
            '"' => {
                let mut out = String::new();
                let mut closed = false;
                while let Some((_, c)) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some((_, e @ ('"' | '\\'))) => out.push(e),
                            _ => return err(line, "bad string escape"),
                        },
                        '\n' => return err(line, "unterminated string"),
                        c => out.push(c),
                    }
                }
                if !closed {
                    return err(line, "unterminated string");
                }
                toks.push((line, Tok::Str(out)));
            }
            c if c.is_ascii_digit() => {
                // Only the bit literals 1'b0 / 1'b1 exist in this subset.
                let start = i;
                let mut end = i + 1;
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '\'' || c2 == '_' {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                match &src[start..end] {
                    "1'b0" | "1'B0" => toks.push((line, Tok::Lit(false))),
                    "1'b1" | "1'B1" => toks.push((line, Tok::Lit(true))),
                    other => return err(line, format!("unsupported literal {other:?}")),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i + c.len_utf8();
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' || c2 == '$' {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((line, Tok::Id(src[start..end].to_owned())));
            }
            other => return err(line, format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

/// One parsed module item that can create or drive a net.
#[derive(Debug)]
enum Stmt {
    /// `input n0;` — creates a primary input.
    Input { net: String, attr: Option<String> },
    /// A gate-primitive or `scal_minority`/`scal_majority` instance.
    Gate {
        kind: GateKind,
        target: String,
        fanins: Vec<String>,
        attr: Option<String>,
    },
    /// A `scal_dff #(init)` instance; `d` resolves after creation.
    Dff {
        init: bool,
        target: String,
        d: String,
        attr: Option<String>,
    },
    /// `assign net = 1'b_;` — a constant source.
    Const {
        value: bool,
        target: String,
        attr: Option<String>,
    },
    /// `assign net = other;` — a buffer (or an output-port alias).
    Alias {
        target: String,
        src: String,
        attr: Option<String>,
    },
}

impl Stmt {
    fn target(&self) -> &str {
        match self {
            Stmt::Input { net, .. } => net,
            Stmt::Gate { target, .. }
            | Stmt::Dff { target, .. }
            | Stmt::Const { target, .. }
            | Stmt::Alias { target, .. } => target,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Net {
    Input,
    Wire,
    OutputPort,
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |(l, _)| *l)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t);
        self.pos += 1;
        t
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), VerilogError> {
        let line = self.line();
        if self.eat(want) {
            Ok(())
        } else {
            err(line, format!("expected {what}"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, VerilogError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Id(s)) => Ok(s.clone()),
            _ => err(line, format!("expected {what}")),
        }
    }

    /// Parses an attribute instance, returning its `scal_name` value if
    /// present; other attribute names are skipped.
    fn attribute(&mut self) -> Result<Option<String>, VerilogError> {
        let mut name = None;
        loop {
            let key = self.ident("attribute name")?;
            let mut value = None;
            if self.eat(&Tok::Eq) {
                let line = self.line();
                value = match self.next() {
                    Some(Tok::Str(s)) => Some(s.clone()),
                    Some(Tok::Lit(_) | Tok::Id(_)) => None,
                    _ => return err(line, "expected attribute value"),
                };
            }
            if key == "scal_name" {
                match value {
                    Some(v) => name = Some(v),
                    None => return err(self.line(), "scal_name needs a string value"),
                }
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::AttrClose, "*)")?;
        Ok(name)
    }
}

/// Parses the structural Verilog subset back into a [`Circuit`].
pub(crate) fn parse(src: &str) -> Result<Circuit, VerilogError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let line = p.line();
    if p.ident("keyword 'module'")? != "module" {
        return err(line, "expected 'module'");
    }
    let _module_name = p.ident("module name")?;
    if p.eat(&Tok::LPar) {
        // The port list is redundant with the declarations; skip it.
        let mut depth = 1usize;
        loop {
            let line = p.line();
            match p.next() {
                Some(Tok::LPar | Tok::AttrOpen) => depth += 1,
                Some(Tok::RPar | Tok::AttrClose) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Some(_) => {}
                None => return err(line, "unterminated port list"),
            }
        }
    }
    p.expect(&Tok::Semi, "';' after module header")?;

    let mut nets: HashMap<String, Net> = HashMap::new();
    let mut output_ports: Vec<(String, Option<String>)> = Vec::new();
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    let mut declare = |net: String, kind: Net, line: usize| -> Result<(), VerilogError> {
        if nets.insert(net.clone(), kind).is_some() {
            return err(line, format!("net {net:?} declared twice"));
        }
        Ok(())
    };

    loop {
        let mut attr = None;
        if p.eat(&Tok::AttrOpen) {
            attr = p.attribute()?;
        }
        let line = p.line();
        let kw = p.ident("module item")?;
        match kw.as_str() {
            "endmodule" => {
                if attr.is_some() {
                    return err(line, "attribute before endmodule");
                }
                break;
            }
            "input" | "output" | "wire" => {
                loop {
                    let line = p.line();
                    let net = p.ident("net name")?;
                    match kw.as_str() {
                        "input" => {
                            declare(net.clone(), Net::Input, line)?;
                            stmts.push((
                                line,
                                Stmt::Input {
                                    net,
                                    attr: attr.clone(),
                                },
                            ));
                        }
                        "output" => {
                            declare(net.clone(), Net::OutputPort, line)?;
                            output_ports.push((net, attr.clone()));
                        }
                        _ => declare(net, Net::Wire, line)?,
                    }
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                p.expect(&Tok::Semi, "';' after declaration")?;
            }
            "assign" => {
                let target = p.ident("assign target")?;
                p.expect(&Tok::Eq, "'=' in assign")?;
                let line2 = p.line();
                let stmt = match p.next() {
                    Some(Tok::Lit(v)) => Stmt::Const {
                        value: *v,
                        target,
                        attr,
                    },
                    Some(Tok::Id(src)) => Stmt::Alias {
                        target,
                        src: src.clone(),
                        attr,
                    },
                    _ => return err(line2, "expected net or literal on assign rhs"),
                };
                p.expect(&Tok::Semi, "';' after assign")?;
                stmts.push((line, stmt));
            }
            prim => {
                let is_dff = prim == "scal_dff";
                let kind = prim_kind(prim);
                if !is_dff && kind.is_none() {
                    return err(line, format!("unknown module item {prim:?}"));
                }
                let mut init = false;
                if p.eat(&Tok::Hash) {
                    if !is_dff {
                        return err(line, format!("{prim} takes no parameters"));
                    }
                    p.expect(&Tok::LPar, "'(' after '#'")?;
                    let line2 = p.line();
                    match p.next() {
                        Some(Tok::Lit(v)) => init = *v,
                        _ => return err(line2, "expected 1'b0 or 1'b1 init parameter"),
                    }
                    p.expect(&Tok::RPar, "')' after init parameter")?;
                }
                if matches!(p.peek(), Some(Tok::Id(_))) {
                    let _instance_name = p.ident("instance name")?;
                }
                p.expect(&Tok::LPar, "'(' starting port connections")?;
                let mut conns = Vec::new();
                loop {
                    conns.push(p.ident("port connection")?);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                p.expect(&Tok::RPar, "')' after port connections")?;
                p.expect(&Tok::Semi, "';' after instance")?;
                let target = conns.remove(0);
                let stmt = if is_dff {
                    if conns.len() != 1 {
                        return err(line, "scal_dff takes exactly (q, d)");
                    }
                    Stmt::Dff {
                        init,
                        target,
                        d: conns.remove(0),
                        attr,
                    }
                } else {
                    let kind = kind.expect("checked above");
                    if !kind.arity_ok(conns.len()) {
                        return err(line, format!("arity {} invalid for {prim}", conns.len()));
                    }
                    Stmt::Gate {
                        kind,
                        target,
                        fanins: conns,
                        attr,
                    }
                };
                stmts.push((line, stmt));
            }
        }
    }
    if p.peek().is_some() {
        return err(p.line(), "trailing tokens after endmodule");
    }

    build(&nets, &output_ports, stmts)
}

fn build(
    nets: &HashMap<String, Net>,
    output_ports: &[(String, Option<String>)],
    stmts: Vec<(usize, Stmt)>,
) -> Result<Circuit, VerilogError> {
    // Every net may have at most one driver; inputs have none.
    let mut driven: HashMap<&str, usize> = HashMap::new();
    for (line, s) in &stmts {
        let target = s.target();
        match (nets.get(target), s) {
            (None, _) => return err(*line, format!("net {target:?} is not declared")),
            (Some(Net::Input), Stmt::Input { .. }) => {}
            (Some(Net::Input), _) => return err(*line, format!("input {target:?} is driven")),
            (_, Stmt::Input { .. }) => {
                return err(*line, format!("{target:?} redeclared as input"))
            }
            (Some(Net::Wire | Net::OutputPort), _) => {
                if driven.insert(target, *line).is_some() {
                    return err(*line, format!("net {target:?} has two drivers"));
                }
            }
        }
    }

    // Replay creation statements in file order; statements whose fanins are
    // not resolved yet are deferred to the next sweep, so hand-written files
    // with forward references still build (at the cost of renumbered ids).
    let mut c = Circuit::new();
    let mut map: HashMap<String, crate::NodeId> = HashMap::new();
    let mut dff_connects: Vec<(usize, crate::NodeId, String)> = Vec::new();
    let mut pending: Vec<(usize, Stmt)> = stmts;
    while !pending.is_empty() {
        let mut next_round = Vec::new();
        let mut progressed = false;
        for (line, s) in pending {
            let ready = match &s {
                Stmt::Input { .. } | Stmt::Dff { .. } | Stmt::Const { .. } => true,
                Stmt::Gate { fanins, .. } => fanins.iter().all(|f| map.contains_key(f)),
                Stmt::Alias { src, .. } => map.contains_key(src),
            };
            if !ready {
                next_round.push((line, s));
                continue;
            }
            progressed = true;
            let target = s.target().to_owned();
            let is_output_port = nets.get(target.as_str()) == Some(&Net::OutputPort);
            let (id, attr) = match s {
                Stmt::Input { net, attr } => {
                    let name = attr.unwrap_or_else(|| net.clone());
                    (c.input(name), None)
                }
                Stmt::Gate {
                    kind, fanins, attr, ..
                } => {
                    let ids: Vec<_> = fanins.iter().map(|f| map[f.as_str()]).collect();
                    (c.gate(kind, &ids), attr)
                }
                Stmt::Dff { init, d, attr, .. } => {
                    let ff = c.dff(init);
                    dff_connects.push((line, ff, d));
                    (ff, attr)
                }
                Stmt::Const { value, attr, .. } => (c.constant(value), attr),
                Stmt::Alias { src, attr, .. } => {
                    if is_output_port {
                        // A pure port alias: no node, the port resolves to
                        // the source node.
                        map.insert(target, map[src.as_str()]);
                        continue;
                    }
                    (c.buf(map[src.as_str()]), attr)
                }
            };
            if let Some(name) = attr.or_else(|| {
                // Non-canonical net names on hand-written wires are worth
                // keeping as node names.
                (target != id.to_string() && !is_output_port).then(|| target.clone())
            }) {
                c.set_name(id, name);
            }
            map.insert(target, id);
        }
        if !progressed {
            let (line, s) = &next_round[0];
            return err(
                *line,
                format!(
                    "net {:?} is part of an undriven or cyclic chain",
                    s.target()
                ),
            );
        }
        pending = next_round;
    }

    for (line, ff, d) in dff_connects {
        match map.get(d.as_str()) {
            Some(&id) => c.connect_dff(ff, id),
            None => return err(line, format!("flip-flop D net {d:?} is never driven")),
        }
    }

    for (port, attr) in output_ports {
        match map.get(port.as_str()) {
            Some(&id) => {
                let name = attr.clone().unwrap_or_else(|| port.clone());
                c.mark_output(name, id);
            }
            None => {
                return err(1, format!("output {port:?} is never driven"));
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let one = c.constant(true);
        let g = c.nand(&[a, b, one]);
        c.set_name(g, "front");
        let ff = c.dff(true);
        let x = c.xor(&[g, ff]);
        c.connect_dff(ff, x);
        c.mark_output("q", x);
        c
    }

    #[test]
    fn writer_output_is_bit_stable() {
        let c = sample();
        let v = emit(&c);
        let back = parse(&v).unwrap_or_else(|e| panic!("{e}\n{v}"));
        assert_eq!(emit(&back), v);
        crate::io::assert_circuit_eq(&c, &back);
    }

    #[test]
    fn hand_written_forward_references_resolve() {
        let src = r#"
            // out-of-order hand-written file
            module adder (a, b, s);
              input a, b;
              output s;
              wire t;
              assign s = t;   /* forward reference */
              xor (t, a, b);
            endmodule
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.outputs()[0].name, "s");
        assert_eq!(c.eval(&[true, false]), vec![true]);
        assert_eq!(c.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn gate_driving_output_port_directly() {
        let src = "module m (a, y); input a; output y; not (y, a); endmodule";
        let c = parse(src).unwrap();
        assert_eq!(c.eval(&[false]), vec![true]);
    }

    #[test]
    fn wire_alias_becomes_buffer_and_keeps_net_name() {
        let src = "module m (a, y); input a; output y; wire stage1; \
                   assign stage1 = a; assign y = stage1; endmodule";
        let c = parse(src).unwrap();
        let buf = c
            .node_ids()
            .find(|&id| c.view(id) == NodeView::Gate(GateKind::Buf))
            .unwrap();
        assert_eq!(c.name(buf), Some("stage1"));
    }

    #[test]
    fn typed_errors_not_panics() {
        for (src, needle) in [
            ("", "module"),
            ("module m (; endmodule", "unterminated port list"),
            ("module m; wire w; endmodule trailing", "trailing"),
            ("module m; and (y, a); endmodule", "not declared"),
            ("module m; input a; assign a = 1'b0; endmodule", "driven"),
            (
                "module m; wire y; wire a; assign y = a; endmodule",
                "undriven or cyclic",
            ),
            (
                "module m; wire a; wire b; assign a = b; assign b = a; endmodule",
                "undriven or cyclic",
            ),
            (
                "module m; output y; input a; not (y, a); not g2 (y, a); endmodule",
                "two drivers",
            ),
            (
                "module m; input a; wire y; not #(1'b0) (y, a); endmodule",
                "parameters",
            ),
            (
                "module m; input a; wire y; not (y, a, a); endmodule",
                "arity",
            ),
            ("module m; output y; endmodule", "never driven"),
            ("module m; wire w; assign w = 2'b10; endmodule", "literal"),
            ("module m; wire w; @ endmodule", "unexpected character"),
            ("module m; /* unterminated", "unterminated block comment"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message.contains(needle) || e.to_string().contains(needle),
                "{src:?}: got {e}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn scal_name_attributes_survive_escaping() {
        let mut c = Circuit::new();
        let a = c.input("weird \"quoted\" \\ name");
        c.mark_output("out \"x\"", a);
        let v = emit(&c);
        let back = parse(&v).unwrap();
        crate::io::assert_circuit_eq(&c, &back);
    }

    #[test]
    fn unknown_attributes_are_skipped() {
        let src = "module m (a, y); (* keep, full_case = 1'b1 *) input a; \
                   output y; (* synth = x *) buf (y, a); endmodule";
        let c = parse(src).unwrap();
        assert_eq!(c.name(c.inputs()[0]), Some("a"));
    }
}
