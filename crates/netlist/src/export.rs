//! Reporting helpers: logic depth and Graphviz export.

use crate::circuit::NodeView;
use crate::{Circuit, NodeId};
use std::fmt::Write;

impl Circuit {
    /// Logic depth: the maximum number of gates (buffers excluded) on any
    /// combinational path from a source (input, constant, or flip-flop
    /// output) to any primary output or flip-flop D input — "the number of
    /// gate delays" the paper lists among the cost factors (§4.5).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.len()];
        for id in self.topo_order() {
            match self.view(id) {
                NodeView::Gate(kind) => {
                    let max_in = self
                        .fanins(id)
                        .iter()
                        .map(|f| level[f.index()])
                        .max()
                        .unwrap_or(0);
                    let own = usize::from(kind != crate::GateKind::Buf);
                    level[id.index()] = max_in + own;
                }
                _ => level[id.index()] = 0,
            }
        }
        let out_depth = self
            .outputs()
            .iter()
            .map(|o| level[o.node.index()])
            .max()
            .unwrap_or(0);
        let ff_depth = self
            .dffs()
            .iter()
            .filter_map(|&ff| self.fanins(ff).first())
            .map(|f| level[f.index()])
            .max()
            .unwrap_or(0);
        out_depth.max(ff_depth)
    }

    /// Renders the netlist in Graphviz DOT format (for documentation and
    /// debugging; `dot -Tsvg`).
    #[must_use]
    pub fn to_dot(&self, title: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{title}\" {{");
        let _ = writeln!(s, "  rankdir=LR;");
        for id in self.node_ids() {
            let (label, shape) = match self.view(id) {
                NodeView::Input => (self.name(id).unwrap_or("in").to_owned(), "invtriangle"),
                NodeView::Const(v) => (format!("const {}", u8::from(v)), "plaintext"),
                NodeView::Gate(k) => {
                    let base = k.mnemonic().to_uppercase();
                    let label = match self.name(id) {
                        Some(n) => format!("{base}\\n{n}"),
                        None => base,
                    };
                    (label, "box")
                }
                NodeView::Dff { init } => (format!("DFF init={}", u8::from(init)), "box3d"),
            };
            let _ = writeln!(s, "  {id} [label=\"{label}\", shape={shape}];");
        }
        for id in self.node_ids() {
            for (pin, f) in self.fanins(id).iter().enumerate() {
                let _ = writeln!(s, "  {f} -> {id} [taillabel=\"\", headlabel=\"{pin}\"];");
            }
        }
        for (k, o) in self.outputs().iter().enumerate() {
            let _ = writeln!(s, "  out{k} [label=\"{}\", shape=triangle];", o.name);
            let _ = writeln!(s, "  {} -> out{k};", o.node);
        }
        let _ = writeln!(s, "}}");
        s
    }
}

/// The level (depth from sources) of one node; exposed for analyses that
/// want per-node timing-ish data.
#[must_use]
pub fn node_level(circuit: &Circuit, node: NodeId) -> usize {
    let mut level = vec![0usize; circuit.len()];
    for id in circuit.topo_order() {
        if let NodeView::Gate(kind) = circuit.view(id) {
            let max_in = circuit
                .fanins(id)
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0);
            level[id.index()] = max_in + usize::from(kind != crate::GateKind::Buf);
        }
    }
    level[node.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let g1 = c.nand(&[a, b]);
        let g2 = c.nand(&[a, d]);
        let f = c.nand(&[g1, g2]);
        c.mark_output("f", f);
        c
    }

    #[test]
    fn depth_of_two_level_network_is_two() {
        assert_eq!(two_level().depth(), 2);
    }

    #[test]
    fn buffers_do_not_count() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b1 = c.buf(a);
        let b2 = c.buf(b1);
        let g = c.not(b2);
        c.mark_output("f", g);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn depth_counts_into_dff_inputs() {
        let mut c = Circuit::new();
        let ff = c.dff(false);
        let n1 = c.not(ff);
        let n2 = c.not(n1);
        let n3 = c.not(n2);
        c.connect_dff(ff, n3);
        c.mark_output("q", ff);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn node_level_matches_depth_at_output() {
        let c = two_level();
        let out = c.outputs()[0].node;
        assert_eq!(node_level(&c, out), c.depth());
    }

    #[test]
    fn dot_export_mentions_everything() {
        let mut c = two_level();
        let out0 = c.outputs()[0].node;
        let ff = c.dff(true);
        let one = c.constant(true);
        let g = c.and(&[out0, one]);
        c.connect_dff(ff, g);
        c.set_name(g, "gate_g");
        let dot = c.to_dot("demo");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("NAND"));
        assert!(dot.contains("DFF init=1"));
        assert!(dot.contains("const 1"));
        assert!(dot.contains("gate_g"));
        assert!(dot.contains("-> out0"));
        assert!(dot.ends_with("}\n"));
    }
}
