//! Alternating-pair fault simulation and the exhaustive campaign.
//!
//! Campaigns are launched through the [`crate::Campaign`] builder, which
//! carries observability and cancellation on both backends; this module holds
//! the pair/fault vocabulary and the scalar oracle backend.

use crate::Fault;
use scal_engine::{EngineError, EngineStats};
use scal_netlist::{Circuit, Override};
use scal_obs::{CampaignEvent, CampaignObserver, CancelToken, Phase};
use std::time::{Duration, Instant};

/// Behaviour of a *single output* over one alternating input pair, relative
/// to the fault-free response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOutcome {
    /// The output emitted the correct alternating pair.
    Correct,
    /// The output did not alternate — a non-code word, flagged by any
    /// alternation checker (marked `X` in the paper's Fig. 3.6).
    NonAlternating,
    /// The output alternated but with the wrong phase — Theorem 3.1's
    /// *incorrect alternating output* (marked `*` in Fig. 3.6).
    WrongAlternating,
}

/// Behaviour of the *whole network* (all outputs jointly) over one pair,
/// following the multiple-output code of Definition 3.3: the code space is
/// "every output alternates", so one non-alternating output makes the word
/// detectably non-code even if another output alternates incorrectly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairClass {
    /// All outputs correct.
    Correct,
    /// At least one output non-alternating: the fault is detected.
    Detected,
    /// All outputs alternate but at least one has the wrong value: an
    /// undetected wrong code word — a violation of the fault-secure
    /// property.
    Violation,
}

/// Drives the alternating pair `(X, X̄)` through a combinational circuit
/// under the given overrides and returns the two per-period output vectors.
///
/// # Panics
///
/// Panics if the circuit is sequential or `x.len()` mismatches the inputs.
#[must_use]
pub fn response_pair(
    circuit: &Circuit,
    overrides: &[Override],
    x: &[bool],
) -> (Vec<bool>, Vec<bool>) {
    let first = circuit.eval_with(x, overrides);
    let flipped: Vec<bool> = x.iter().map(|&b| !b).collect();
    let second = circuit.eval_with(&flipped, overrides);
    (first, second)
}

/// Classifies a faulty response pair against the fault-free one, per output
/// and in aggregate.
///
/// # Panics
///
/// Panics if the vectors disagree in length, or if the fault-free response
/// itself fails to alternate (the circuit is then not an alternating network
/// and pair classification is meaningless).
#[must_use]
pub fn classify_pair(
    normal: &(Vec<bool>, Vec<bool>),
    faulty: &(Vec<bool>, Vec<bool>),
) -> (Vec<PairOutcome>, PairClass) {
    assert_eq!(normal.0.len(), normal.1.len());
    assert_eq!(faulty.0.len(), faulty.1.len());
    assert_eq!(normal.0.len(), faulty.0.len());
    let mut outcomes = Vec::with_capacity(normal.0.len());
    for i in 0..normal.0.len() {
        assert_ne!(
            normal.0[i], normal.1[i],
            "fault-free output {i} does not alternate; the network is not alternating"
        );
        let o = if faulty.0[i] == faulty.1[i] {
            PairOutcome::NonAlternating
        } else if faulty.0[i] == normal.0[i] {
            PairOutcome::Correct
        } else {
            PairOutcome::WrongAlternating
        };
        outcomes.push(o);
    }
    let class = if outcomes.contains(&PairOutcome::NonAlternating) {
        PairClass::Detected
    } else if outcomes.contains(&PairOutcome::WrongAlternating) {
        PairClass::Violation
    } else {
        PairClass::Correct
    };
    (outcomes, class)
}

/// Result of simulating one fault against every alternating input pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// The simulated fault.
    pub fault: Fault,
    /// First-period inputs `X` (as minterm integers, with `X < X̄`
    /// numerically so each unordered pair appears once) at which the fault
    /// produced a detectable non-code word.
    pub detected_pairs: Vec<u32>,
    /// Pairs at which the fault produced an undetected wrong code word
    /// (fault-secure violations).
    pub violation_pairs: Vec<u32>,
    /// `true` iff the fault changed some output at some point in some pair
    /// (i.e. the fault is observable at all — the revised self-testing
    /// requirement of Definition 2.4(a)).
    pub observable: bool,
}

impl CampaignResult {
    /// `true` iff the fault never causes a wrong code word.
    #[must_use]
    pub fn fault_secure(&self) -> bool {
        self.violation_pairs.is_empty()
    }

    /// `true` iff some pair detects the fault with a non-code word.
    #[must_use]
    pub fn tested(&self) -> bool {
        !self.detected_pairs.is_empty()
    }
}

/// The scalar backend behind [`crate::Campaign::scalar`]: per-minterm
/// simulation with full observability and per-fault cancellation.
///
/// Event parity with the engine path: per-fault `FaultStart`/`FaultFinish`
/// events are buffered and replayed in fault order during the merge phase
/// (the scalar path is single-threaded, so `worker` is always 0 and there
/// are no `BatchDone` events — it sweeps whole truth tables, not 64-pair
/// batches).
pub(crate) fn try_run_scalar(
    circuit: &Circuit,
    faults: &[Fault],
    observer: &dyn CampaignObserver,
    cancel: Option<&CancelToken>,
) -> Result<(Vec<CampaignResult>, EngineStats, bool), EngineError> {
    if circuit.is_sequential() {
        return Err(EngineError::Sequential);
    }
    let n = circuit.inputs().len();
    if !(1..=24).contains(&n) {
        return Err(EngineError::UnsupportedInputs { inputs: n });
    }
    let obs = observer.enabled();
    let total_t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::CampaignStart {
            campaign: "pair_scalar",
            faults: faults.len(),
            inputs: n,
            outputs: circuit.outputs().len(),
            threads: 1,
        });
    }

    let outputs: Vec<usize> = circuit.outputs().iter().map(|o| o.node.index()).collect();
    let total = 1u32 << n;
    let words_per_sweep = u64::from(total).div_ceil(64);
    let pairs_per_fault = u64::from(total / 2);
    let mut stats = EngineStats::default();

    // Fault-free responses for every minterm, packed 64 at a time.
    let t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Golden,
        });
    }
    let mut normal = vec![vec![false; outputs.len()]; total as usize];
    sweep(circuit, &[], n, |m, vals| {
        normal[m as usize].copy_from_slice(vals);
    });

    let mask = total - 1;
    // Sanity: alternation of the fault-free network.
    for m in 0..total {
        for (k, &v) in normal[m as usize].iter().enumerate() {
            if v == normal[(!m & mask) as usize][k] {
                return Err(EngineError::NotAlternating { output: k, pair: m });
            }
        }
    }
    stats.golden_time = t.elapsed();
    stats.words_evaluated = words_per_sweep;
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Golden,
            micros: duration_micros(stats.golden_time),
        });
    }

    let t = Instant::now();
    if obs {
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::FaultSim,
        });
    }
    let mut results = Vec::with_capacity(faults.len());
    let mut fault_events: Vec<CampaignEvent> = Vec::new();
    let mut cancelled = false;
    for (i, &fault) in faults.iter().enumerate() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            cancelled = true;
            break;
        }
        let sweep_t = Instant::now();
        let ov = [fault.to_override()];
        let mut faulty = vec![vec![false; outputs.len()]; total as usize];
        sweep(circuit, &ov, n, |m, vals| {
            faulty[m as usize].copy_from_slice(vals);
        });
        let mut detected = Vec::new();
        let mut violations = Vec::new();
        let mut observable = false;
        for m in 0..total {
            let m2 = !m & mask;
            if m > m2 {
                continue;
            }
            let nrm = (normal[m as usize].clone(), normal[m2 as usize].clone());
            let fty = (faulty[m as usize].clone(), faulty[m2 as usize].clone());
            if fty.0 != nrm.0 || fty.1 != nrm.1 {
                observable = true;
            }
            let (_, class) = classify_pair(&nrm, &fty);
            match class {
                PairClass::Correct => {}
                PairClass::Detected => detected.push(m),
                PairClass::Violation => violations.push(m),
            }
        }
        stats.pairs_evaluated += pairs_per_fault;
        stats.words_evaluated += words_per_sweep;
        let eval_micros = duration_micros(sweep_t.elapsed());
        stats.eval_time += Duration::from_micros(eval_micros);
        if obs {
            fault_events.push(CampaignEvent::FaultStart {
                fault: i,
                worker: 0,
            });
            fault_events.push(CampaignEvent::Span {
                name: "eval_batch",
                parent: "fault_sim",
                micros: eval_micros,
                count: words_per_sweep,
                items: pairs_per_fault,
            });
            fault_events.push(CampaignEvent::FaultFinish {
                fault: i,
                worker: 0,
                detected: detected.len(),
                violations: violations.len(),
                observable,
                dropped: false,
                pairs: pairs_per_fault,
                // The scalar sweep visits canonical minterms in ascending
                // order, matching the engine's pair ordering exactly.
                first_detected: detected.first().copied(),
            });
            observer.on_event(&CampaignEvent::Progress {
                done: i + 1,
                total: faults.len(),
            });
        }
        results.push(CampaignResult {
            fault,
            detected_pairs: detected,
            violation_pairs: violations,
            observable,
        });
    }
    stats.fault_sim_time = t.elapsed();
    stats.faults = results.len();
    if obs {
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::FaultSim,
            micros: duration_micros(stats.fault_sim_time),
        });
        let merge_t = Instant::now();
        observer.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Merge,
        });
        for e in &fault_events {
            observer.on_event(e);
        }
        observer.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Merge,
            micros: duration_micros(merge_t.elapsed()),
        });
        if cancelled {
            observer.on_event(&CampaignEvent::Cancelled {
                completed: results.len(),
            });
        }
        observer.on_event(&CampaignEvent::CampaignEnd {
            faults: results.len(),
            dropped: 0,
            pairs: stats.pairs_evaluated,
            words: stats.words_evaluated,
            micros: duration_micros(total_t.elapsed()),
            cancelled,
        });
    }
    Ok((results, stats, cancelled))
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Evaluates output values for every minterm using 64-lane sweeps, invoking
/// `sink(minterm, output_values)`.
fn sweep<F: FnMut(u32, &[bool])>(circuit: &Circuit, overrides: &[Override], n: usize, mut sink: F) {
    let total = 1usize << n;
    let out_nodes: Vec<usize> = circuit.outputs().iter().map(|o| o.node.index()).collect();
    let mut words = vec![0u64; n];
    let mut outvals = vec![false; out_nodes.len()];
    let mut base = 0usize;
    while base < total {
        let lanes = (total - base).min(64);
        for (i, w) in words.iter_mut().enumerate() {
            *w = 0;
            for lane in 0..lanes {
                let m = base + lane;
                if (m >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        let values = circuit.eval_nodes64(&words, &[], overrides);
        for lane in 0..lanes {
            for (k, &oi) in out_nodes.iter().enumerate() {
                outvals[k] = (values[oi] >> lane) & 1 == 1;
            }
            sink((base + lane) as u32, &outvals);
        }
        base += lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{GateKind, Site};

    /// Two-level self-dual network: XOR3 as a single gate.
    fn xor3() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        c
    }

    /// MAJ(a,b,c) from NANDs — the two-level (plus collection) self-dual
    /// form Yamamoto's theorem says is self-checking.
    fn maj_nand() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let f = c.nand(&[nab, nac, nbc]);
        c.mark_output("f", f);
        c
    }

    /// w = a XOR b (single gate) feeding two unequal-parity reconvergent
    /// paths: f = (w AND ¬c) OR (¬w AND c) = w ⊕ c. Faults on w's stem
    /// produce incorrect alternating outputs (the paper's "line 20"
    /// mechanism).
    fn unequal_parity_xor() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let w = c.xor(&[a, b]);
        let nd = c.not(d);
        let nw = c.not(w);
        let t1 = c.and(&[w, nd]);
        let t2 = c.and(&[nw, d]);
        let f = c.or(&[t1, t2]);
        c.mark_output("f", f);
        c
    }

    #[test]
    fn response_pair_alternates_when_fault_free() {
        let c = xor3();
        for m in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let (p1, p2) = response_pair(&c, &[], &x);
            assert_ne!(p1[0], p2[0]);
        }
    }

    #[test]
    fn classify_detects_nonalternating() {
        let normal = (vec![true], vec![false]);
        let (o, cls) = classify_pair(&normal, &(vec![true], vec![true]));
        assert_eq!(o, vec![PairOutcome::NonAlternating]);
        assert_eq!(cls, PairClass::Detected);
    }

    #[test]
    fn classify_flags_wrong_alternation() {
        let normal = (vec![true], vec![false]);
        let (o, cls) = classify_pair(&normal, &(vec![false], vec![true]));
        assert_eq!(o, vec![PairOutcome::WrongAlternating]);
        assert_eq!(cls, PairClass::Violation);
    }

    #[test]
    fn classify_multiple_outputs_follow_definition_3_3() {
        // One output wrong-alternating, another non-alternating -> Detected.
        let normal = (vec![true, false], vec![false, true]);
        let faulty = (vec![false, true], vec![true, true]);
        let (o, cls) = classify_pair(&normal, &faulty);
        assert_eq!(o[0], PairOutcome::WrongAlternating);
        assert_eq!(o[1], PairOutcome::NonAlternating);
        assert_eq!(cls, PairClass::Detected);
    }

    #[test]
    #[should_panic(expected = "does not alternate")]
    fn classify_rejects_nonalternating_reference() {
        let normal = (vec![true], vec![true]);
        let _ = classify_pair(&normal, &(vec![true], vec![true]));
    }

    #[test]
    fn two_level_self_dual_network_is_self_checking() {
        // Yamamoto's result (via Theorem 3.7): two-level self-dual networks
        // with monotonic gates are self-checking.
        let c = maj_nand();
        for r in crate::Campaign::new(&c).run().unwrap().results {
            assert!(r.fault_secure(), "violation for {}", r.fault);
            assert!(r.tested(), "untested fault {}", r.fault);
        }
    }

    #[test]
    fn single_xor_gate_network_is_self_checking() {
        let c = xor3();
        for r in crate::Campaign::new(&c).run().unwrap().results {
            assert!(r.fault_secure());
            assert!(r.tested());
        }
    }

    #[test]
    fn unequal_parity_reconvergence_violates_fault_security() {
        let c = unequal_parity_xor();
        let results = crate::Campaign::new(&c).run().unwrap().results;
        // The XOR stem (w) fans out with unequal parity; its stuck faults
        // must yield incorrect alternating outputs.
        let w_site = {
            // w is node index 3 (after inputs a,b,c).
            let w = c
                .node_ids()
                .find(|&id| c.view(id) == scal_netlist::NodeView::Gate(GateKind::Xor))
                .unwrap();
            Site::Stem(w)
        };
        let w_results: Vec<_> = results.iter().filter(|r| r.fault.site == w_site).collect();
        assert_eq!(w_results.len(), 2);
        for r in w_results {
            assert!(
                !r.fault_secure(),
                "expected fault-secure violation for {}",
                r.fault
            );
        }
    }

    #[test]
    fn campaign_covers_collapsed_universe() {
        let c = maj_nand();
        let res = crate::Campaign::new(&c).run().unwrap().results;
        assert_eq!(res.len(), crate::enumerate_faults(&c).len());
        assert!(res.iter().all(|r| r.observable));
    }

    #[test]
    fn campaign_pairs_enumerated_once() {
        let c = xor3();
        let res = crate::Campaign::new(&c).run().unwrap().results;
        for r in &res {
            for &m in r.detected_pairs.iter().chain(&r.violation_pairs) {
                assert!(m <= (!m & 0b111), "pair {m} not canonical");
            }
        }
    }
}
