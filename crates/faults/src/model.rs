//! Fault types and fault-universe enumeration.

use scal_netlist::{Circuit, NodeView, Override, Site, Structure};
use std::fmt;

/// A single stuck-at fault (paper Definition 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The faulted line.
    pub site: Site,
    /// The stuck value: `false` = s-a-0, `true` = s-a-1.
    pub stuck: bool,
}

impl Fault {
    /// Creates a stuck-at fault.
    #[must_use]
    pub fn new(site: Site, stuck: bool) -> Self {
        Fault { site, stuck }
    }

    /// The [`Override`] that injects this fault into an evaluation.
    #[must_use]
    pub fn to_override(self) -> Override {
        Override {
            site: self.site,
            value: self.stuck,
        }
    }

    /// Describes the fault using `circuit`'s line names — the label coverage
    /// reports cross-reference against the netlist. Named nodes print their
    /// name (`"carry s-a-0"`); unnamed ones fall back to the positional
    /// [`Site`] rendering. Branch faults name both ends of the line
    /// (`"a->sum[0] s-a-1"`).
    #[must_use]
    pub fn describe(&self, circuit: &Circuit) -> String {
        let name_of = |id: scal_netlist::NodeId| {
            circuit
                .name(id)
                .map_or_else(|| format!("n{}", id.index()), str::to_string)
        };
        let site = match self.site {
            Site::Stem(id) => name_of(id),
            Site::Branch { node, pin } => match circuit.fanins(node).get(pin) {
                Some(&src) => format!("{}->{}[{pin}]", name_of(src), name_of(node)),
                None => self.site.to_string(),
            },
        };
        format!("{site} s-a-{}", u8::from(self.stuck))
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s-a-{}", self.site, u8::from(self.stuck))
    }
}

/// A set of simultaneous stuck-at faults — the multiple-fault condition of
/// Definition 2.3. A single fault and a unidirectional fault (Definition
/// 2.2) are its degenerate cases, mirroring the containment the paper notes
/// under Fig. 2.1.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSet {
    faults: Vec<Fault>,
}

impl FaultSet {
    /// Creates an empty (fault-free) set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from faults, dropping exact duplicates.
    #[must_use]
    pub fn from_faults(faults: impl IntoIterator<Item = Fault>) -> Self {
        let mut v: Vec<Fault> = faults.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        FaultSet { faults: v }
    }

    /// Adds a fault.
    pub fn insert(&mut self, fault: Fault) {
        if !self.faults.contains(&fault) {
            self.faults.push(fault);
            self.faults.sort_unstable();
        }
    }

    /// The contained faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of simultaneous faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` iff fault-free.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `true` iff all stuck values agree — the *unidirectional* fault of
    /// Definition 2.2.
    #[must_use]
    pub fn is_unidirectional(&self) -> bool {
        self.faults.windows(2).all(|w| w[0].stuck == w[1].stuck)
    }

    /// `true` iff this is a single fault (Definition 2.1).
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.faults.len() == 1
    }

    /// The overrides injecting this fault set.
    #[must_use]
    pub fn to_overrides(&self) -> Vec<Override> {
        self.faults.iter().map(|f| f.to_override()).collect()
    }
}

/// Enumerates the collapsed single-fault universe of a circuit:
///
/// * a stuck-at-0 and stuck-at-1 fault on every node output stem (inputs,
///   gates and flip-flop outputs alike; constants excluded — a stuck constant
///   is indistinguishable from a design change and untestable by definition);
/// * a stuck-at fault on every fanout *branch* whose stem drives two or more
///   pins (a single-fanout branch is fault-equivalent to its stem, the
///   "equivalent pairs of lines" collapsing used in the worked example of
///   §3.6 step 2).
#[must_use]
pub fn enumerate_faults(circuit: &Circuit) -> Vec<Fault> {
    build_universe(circuit, true)
}

/// Enumerates the *uncollapsed* universe: every stem and every branch, even
/// when equivalent. Matches the raw line numbering style of Fig. 3.4.
#[must_use]
pub fn enumerate_faults_uncollapsed(circuit: &Circuit) -> Vec<Fault> {
    build_universe(circuit, false)
}

fn build_universe(circuit: &Circuit, collapse: bool) -> Vec<Fault> {
    let structure = Structure::new(circuit);
    let mut out = Vec::new();
    for id in circuit.node_ids() {
        if matches!(circuit.view(id), NodeView::Const(_)) {
            continue;
        }
        for stuck in [false, true] {
            out.push(Fault::new(Site::Stem(id), stuck));
        }
    }
    for id in circuit.node_ids() {
        for (pin, &src) in circuit.fanins(id).iter().enumerate() {
            if matches!(circuit.view(src), NodeView::Const(_)) {
                continue;
            }
            if collapse && structure.stem_equals_branch(src) {
                continue;
            }
            for stuck in [false, true] {
                out.push(Fault::new(Site::Branch { node: id, pin }, stuck));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate() -> Circuit {
        // g = AND(a,b); f1 = OR(g,a); f2 = NOR(g,b): g fans out twice, a and
        // b fan out twice.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f1 = c.or(&[g, a]);
        let f2 = c.nor(&[g, b]);
        c.mark_output("f1", f1);
        c.mark_output("f2", f2);
        c
    }

    #[test]
    fn collapsed_universe_counts() {
        let c = two_gate();
        // Stems: a, b, g, f1, f2 -> 5 * 2 = 10 faults.
        // Branches: a->g, a->f1, b->g, b->f2, g->f1, g->f2 (all stems fan out
        // twice) -> 6 * 2 = 12 faults.
        let faults = enumerate_faults(&c);
        assert_eq!(faults.len(), 22);
    }

    #[test]
    fn collapsing_removes_single_fanout_branches() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let g = c.not(a);
        let h = c.not(g);
        c.mark_output("f", h);
        // Chain: every stem has fanout 1 -> branch faults all collapse.
        let collapsed = enumerate_faults(&c);
        assert_eq!(collapsed.len(), 6); // stems a, g, h
        let full = enumerate_faults_uncollapsed(&c);
        assert_eq!(full.len(), 10); // + branches a->g, g->h
    }

    #[test]
    fn constants_excluded() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let one = c.constant(true);
        let g = c.and(&[a, one]);
        c.mark_output("f", g);
        let faults = enumerate_faults(&c);
        // Stems a and g only; the branch from `one` is skipped, and a's
        // single-fanout branch collapses.
        assert_eq!(faults.len(), 4);
        assert!(faults
            .iter()
            .all(|f| f.site != scal_netlist::Site::Stem(one)));
    }

    #[test]
    fn fault_display() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let f = Fault::new(Site::Stem(a), true);
        assert_eq!(f.to_string(), "stem(n0) s-a-1");
        assert!(f.to_override().value);
    }

    #[test]
    fn describe_uses_line_names() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        c.set_name(g, "carry");
        c.mark_output("f", g);
        assert_eq!(Fault::new(Site::Stem(g), false).describe(&c), "carry s-a-0");
        assert_eq!(
            Fault::new(Site::Branch { node: g, pin: 1 }, true).describe(&c),
            "b->carry[1] s-a-1"
        );
        // Unnamed nodes fall back to positional names.
        let mut plain = Circuit::new();
        let x = plain.input("x");
        let h = plain.not(x);
        plain.mark_output("f", h);
        assert_eq!(
            Fault::new(Site::Stem(h), true).describe(&plain),
            format!("n{} s-a-1", h.index())
        );
    }

    #[test]
    fn fault_set_classification() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let single = FaultSet::from_faults([Fault::new(Site::Stem(a), false)]);
        assert!(single.is_single() && single.is_unidirectional());
        let uni = FaultSet::from_faults([
            Fault::new(Site::Stem(a), true),
            Fault::new(Site::Stem(b), true),
        ]);
        assert!(!uni.is_single() && uni.is_unidirectional());
        let multi = FaultSet::from_faults([
            Fault::new(Site::Stem(a), true),
            Fault::new(Site::Stem(b), false),
        ]);
        assert!(!multi.is_unidirectional());
        assert_eq!(multi.to_overrides().len(), 2);
        assert!(FaultSet::new().is_empty());
    }

    #[test]
    fn fault_set_dedups() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let f = Fault::new(Site::Stem(a), true);
        let mut s = FaultSet::from_faults([f, f]);
        assert_eq!(s.len(), 1);
        s.insert(f);
        assert_eq!(s.len(), 1);
    }
}
