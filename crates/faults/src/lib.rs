//! Stuck-at fault model and alternating-pair fault simulation.
//!
//! Implements the paper's failure model (§1.2, §2.2): a **single fault** is a
//! network condition in which one *line* is stuck-at-0 or stuck-at-1
//! (Definition 2.1), where lines include both gate-output stems and the
//! branches they fan out into. [`enumerate_faults`] lists the collapsed fault
//! universe of a circuit; [`response_pair`] drives an alternating input pair
//! `(X, X̄)` through a faulted combinational network; [`classify_pair`]
//! decides whether the observed output pair is the correct code word, a
//! detectable non-code word, or the dangerous *incorrect alternating output*
//! of Theorem 3.1; and the [`Campaign`] builder sweeps every fault against
//! every input pair — the exhaustive ground truth against which the analytic
//! machinery of `scal-analysis` is checked.
//!
//! The crate also models the wider fault classes of Definitions 2.2/2.3
//! ([`FaultSet`], unidirectional and multiple faults) used by the Table 5.1
//! experiment.
//!
//! # Example
//!
//! ```
//! use scal_netlist::{Circuit, GateKind};
//! use scal_faults::{enumerate_faults, Campaign};
//!
//! // XOR3 is self-dual; a two-level realization is self-checking.
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let d = c.input("c");
//! let x = c.gate(GateKind::Xor, &[a, b, d]);
//! c.mark_output("f", x);
//!
//! let report = Campaign::new(&c).run().unwrap();
//! assert_eq!(report.results.len(), enumerate_faults(&c).len());
//! assert!(report.all_fault_secure());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod campaign;
mod model;

pub use builder::{Campaign, CampaignReport};
pub use campaign::{classify_pair, response_pair, CampaignResult, PairClass, PairOutcome};
pub use model::{enumerate_faults, enumerate_faults_uncollapsed, Fault, FaultSet};
