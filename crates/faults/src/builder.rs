//! The unified campaign entry point.
//!
//! [`Campaign`] is a builder that configures and launches an
//! alternating-pair fault campaign in one fluent call chain:
//!
//! ```
//! use scal_netlist::{Circuit, GateKind};
//! use scal_faults::Campaign;
//!
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let d = c.input("c");
//! let x = c.gate(GateKind::Xor, &[a, b, d]);
//! c.mark_output("f", x);
//!
//! let report = Campaign::new(&c).run().unwrap();
//! assert!(report.all_fault_secure() && report.all_tested());
//! ```
//!
//! The builder defaults to the whole collapsed fault universe, the packed
//! engine backend, no observer and no cancellation; every knob is opt-in.

use crate::campaign::{try_run_scalar, CampaignResult};
use crate::{enumerate_faults, Fault};
use scal_engine::{try_run_pair_campaign, EngineConfig, EngineError, EngineStats, EvalMode};
use scal_netlist::{Circuit, Override};
use scal_obs::{CampaignObserver, CancelToken, CoverageObserver, MultiObserver};

/// Which simulation backend a [`Campaign`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// The packed 64-pair `scal-engine` path (default).
    Engine,
    /// The original per-minterm scalar path, retained as the differential
    /// oracle.
    Scalar,
}

/// Builder for an alternating-pair fault campaign over a combinational
/// circuit.
///
/// See the crate docs for an example. `run` consumes the builder
/// and returns a [`CampaignReport`].
pub struct Campaign<'a> {
    circuit: &'a Circuit,
    faults: Option<Vec<Fault>>,
    config: EngineConfig,
    observer: Option<&'a dyn CampaignObserver>,
    coverage: Option<&'a CoverageObserver>,
    cancel: Option<&'a CancelToken>,
    backend: Backend,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("faults", &self.faults.as_ref().map(Vec::len))
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .field("coverage", &self.coverage.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl<'a> Campaign<'a> {
    /// Starts a campaign over `circuit` with all defaults: the collapsed
    /// fault universe, the packed engine backend, default
    /// [`EngineConfig`], no observer, no cancellation.
    #[must_use]
    pub fn new(circuit: &'a Circuit) -> Self {
        Campaign {
            circuit,
            faults: None,
            config: EngineConfig::default(),
            observer: None,
            coverage: None,
            cancel: None,
            backend: Backend::Engine,
        }
    }

    /// Simulates exactly this fault list (in this order) instead of the
    /// circuit's collapsed fault universe.
    #[must_use]
    pub fn faults(mut self, faults: Vec<Fault>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Replaces the whole engine configuration (thread count, fault
    /// dropping). The scalar backend ignores engine knobs.
    #[must_use]
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Worker-thread count; `0` = auto. Shorthand for the corresponding
    /// [`EngineConfig`] field.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables classic fault dropping (see
    /// [`EngineConfig::drop_after_detection`]).
    #[must_use]
    pub fn drop_after_detection(mut self, on: bool) -> Self {
        self.config.drop_after_detection = on;
        self
    }

    /// Selects the faulty-sweep evaluation strategy on the engine backend:
    /// cone-restricted incremental evaluation ([`EvalMode::Cone`], the
    /// default) or full-schedule re-evaluation ([`EvalMode::Full`], the
    /// differential oracle). Both are bit-identical in every report; the
    /// scalar backend ignores this knob.
    #[must_use]
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.config.eval_mode = mode;
        self
    }

    /// Evaluation word width in 64-bit sub-words (`1`, `4` or `8`); `0`
    /// (the default) resolves through the `SCAL_WORD_WIDTH` environment
    /// variable and then CPU-feature detection. Shorthand for the
    /// corresponding [`EngineConfig`] field; all widths are bit-identical
    /// in every report. The scalar backend ignores this knob.
    #[must_use]
    pub fn word_width(mut self, width: usize) -> Self {
        self.config.word_width = width;
        self
    }

    /// Forces 2-D fault-lane packing on or off (see
    /// [`EngineConfig::fault_packing`]): one sweep then classifies
    /// `63 × W` (fault, pattern) cells at once. Left untouched, the engine
    /// picks the lane geometry from the fault/pattern ratio. Reports stay
    /// bit-identical; the scalar backend ignores this knob.
    #[must_use]
    pub fn fault_packing(mut self, on: bool) -> Self {
        self.config.fault_packing = on.into();
        self
    }

    /// Forces compile-time fault collapsing on or off (see
    /// [`EngineConfig::fault_collapse`]; the default resolves through the
    /// `SCAL_FAULT_COLLAPSE` environment variable and is otherwise on).
    /// Only class representatives are simulated; verdicts are expanded back
    /// over every original fault at merge time, so reports and coverage
    /// maps stay bit-identical. The scalar backend ignores this knob.
    #[must_use]
    pub fn fault_collapse(mut self, on: bool) -> Self {
        self.config.fault_collapse = on.into();
        self
    }

    /// Streams every [`scal_obs::CampaignEvent`] of the run to `observer`.
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn CampaignObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Builds a per-fault [`scal_obs::CoverageMap`] into `coverage`, labelled
    /// with [`Fault::describe`] line names, alongside any plain
    /// [`Campaign::observer`]. Read `coverage.latest()` after the run.
    #[must_use]
    pub fn coverage(mut self, coverage: &'a CoverageObserver) -> Self {
        self.coverage = Some(coverage);
        self
    }

    /// Makes the run cancellable through `token`: once cancelled, the
    /// campaign stops at the next batch (engine) or fault (scalar) boundary
    /// and returns the completed fault-ordered prefix with
    /// [`CampaignReport::cancelled`] set.
    #[must_use]
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Runs on the original per-minterm scalar backend (the differential
    /// oracle) instead of the packed engine.
    #[must_use]
    pub fn scalar(mut self) -> Self {
        self.backend = Backend::Scalar;
        self
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Propagates every [`EngineError`] of the underlying backend:
    /// `Sequential` for sequential circuits, `UnsupportedInputs` outside
    /// `1..=24` inputs, `NotAlternating` if a fault-free output fails to
    /// alternate, plus compile errors on the engine path.
    pub fn run(self) -> Result<CampaignReport, EngineError> {
        let faults = match self.faults {
            Some(f) => f,
            None => enumerate_faults(self.circuit),
        };
        // Fan out to the plain observer and/or the coverage map. An empty
        // fan-out reports enabled() == false, preserving the no-observer
        // fast path.
        let mut fan = MultiObserver::new();
        if let Some(o) = self.observer {
            fan.push(o);
        }
        if let Some(cov) = self.coverage {
            cov.set_labels(faults.iter().map(|f| f.describe(self.circuit)).collect());
            fan.push(cov);
        }
        let observer: &dyn CampaignObserver = &fan;
        match self.backend {
            Backend::Scalar => {
                let (results, stats, cancelled) =
                    try_run_scalar(self.circuit, &faults, observer, self.cancel)?;
                Ok(CampaignReport {
                    results,
                    stats,
                    cancelled,
                })
            }
            Backend::Engine => {
                let overrides: Vec<Override> = faults.iter().map(|f| f.to_override()).collect();
                let run = try_run_pair_campaign(
                    self.circuit,
                    &overrides,
                    &self.config,
                    observer,
                    self.cancel,
                )?;
                // On cancellation `run.reports` is a prefix; zip truncates
                // the fault list to match.
                let results = faults
                    .iter()
                    .zip(run.reports)
                    .map(|(&fault, r)| CampaignResult {
                        fault,
                        detected_pairs: r.detected_pairs,
                        violation_pairs: r.violation_pairs,
                        observable: r.observable,
                    })
                    .collect();
                Ok(CampaignReport {
                    results,
                    stats: run.stats,
                    cancelled: run.cancelled,
                })
            }
        }
    }
}

/// Everything a [`Campaign`] run produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-fault results in fault order; a contiguous prefix of the
    /// requested fault list when [`CampaignReport::cancelled`].
    pub results: Vec<CampaignResult>,
    /// Aggregate counters and per-phase wall times.
    pub stats: EngineStats,
    /// `true` iff a [`CancelToken`] stopped the run early.
    pub cancelled: bool,
}

impl CampaignReport {
    /// `true` iff no simulated fault ever produced a wrong code word.
    #[must_use]
    pub fn all_fault_secure(&self) -> bool {
        self.results.iter().all(CampaignResult::fault_secure)
    }

    /// `true` iff every simulated fault is detected by some pair.
    #[must_use]
    pub fn all_tested(&self) -> bool {
        self.results.iter().all(CampaignResult::tested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::GateKind;
    use scal_obs::{CampaignEvent, CollectObserver};

    fn xor3() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        c
    }

    #[test]
    fn builder_defaults_cover_collapsed_universe() {
        let c = xor3();
        let report = Campaign::new(&c).run().unwrap();
        assert_eq!(report.results.len(), enumerate_faults(&c).len());
        assert!(report.all_fault_secure());
        assert!(report.all_tested());
        assert!(!report.cancelled);
        assert_eq!(report.stats.faults, report.results.len());
    }

    #[test]
    fn backends_and_eval_modes_agree() {
        let c = xor3();
        let report = Campaign::new(&c).run().unwrap();
        let full = Campaign::new(&c).eval_mode(EvalMode::Full).run().unwrap();
        assert_eq!(report.results, full.results);
        let scalar = Campaign::new(&c).scalar().run().unwrap();
        assert_eq!(scalar.results, report.results);
    }

    #[test]
    fn word_width_and_fault_packing_agree_with_defaults() {
        let c = xor3();
        let base = Campaign::new(&c).word_width(1).run().unwrap();
        for width in [4, 8] {
            let wide = Campaign::new(&c).word_width(width).run().unwrap();
            assert_eq!(base.results, wide.results, "W={width}");
        }
        for width in [1, 8] {
            let packed = Campaign::new(&c)
                .word_width(width)
                .fault_packing(true)
                .run()
                .unwrap();
            assert_eq!(base.results, packed.results, "packed W={width}");
            assert_eq!(base.stats.pairs_evaluated, packed.stats.pairs_evaluated);
        }
    }

    #[test]
    fn fault_collapse_matches_uncollapsed_results() {
        let c = xor3();
        let collapsed = Campaign::new(&c).run().unwrap();
        let plain = Campaign::new(&c).fault_collapse(false).run().unwrap();
        assert_eq!(collapsed.results, plain.results);
        assert_eq!(collapsed.stats.faults, plain.stats.faults);
        assert!(collapsed.stats.pairs_evaluated <= plain.stats.pairs_evaluated);
    }

    #[test]
    fn scalar_backend_honors_observer_and_cancel() {
        let c = xor3();
        let collect = CollectObserver::default();
        let report = Campaign::new(&c).scalar().observer(&collect).run().unwrap();
        let events = collect.events();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::CampaignStart {
                campaign: "pair_scalar",
                ..
            })
        ));
        let finishes = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::FaultFinish { .. }))
            .count();
        assert_eq!(finishes, report.results.len());

        let token = CancelToken::new();
        token.cancel();
        let cancelled = Campaign::new(&c).scalar().cancel(&token).run().unwrap();
        assert!(cancelled.cancelled);
        assert!(cancelled.results.is_empty());
    }

    #[test]
    fn coverage_hook_builds_labelled_maps_on_both_backends() {
        let c = xor3();
        let cov = scal_obs::CoverageObserver::new();
        // Pin the unpacked, uncollapsed cone path: auto-packing forces full
        // mode (no cone stats) and collapsing leaves class members without
        // per-fault cone annotations.
        let report = Campaign::new(&c)
            .fault_packing(false)
            .fault_collapse(false)
            .coverage(&cov)
            .run()
            .unwrap();
        let map = cov.latest().expect("coverage map");
        assert_eq!(map.records.len(), report.results.len());
        assert!((map.coverage_fraction() - 1.0).abs() < 1e-12);
        // Labels come from Fault::describe and use the circuit's names.
        assert!(map.records.iter().all(|r| !r.label.is_empty()));
        assert!(map.records.iter().any(|r| r.label.starts_with("a s-a-")));
        // Cone mode attaches per-fault cone stats; the scalar oracle has
        // none to report.
        assert!(map.records.iter().all(|r| r.cone_ops.is_some()));
        // The scalar oracle produces the identical verdicts (bit-for-bit,
        // modulo the campaign tag and the cone annotations).
        let cov2 = scal_obs::CoverageObserver::new();
        let _ = Campaign::new(&c).scalar().coverage(&cov2).run().unwrap();
        let smap = cov2.latest().expect("scalar map");
        let strip = |records: &[scal_obs::FaultRecord]| {
            records
                .iter()
                .map(|r| scal_obs::FaultRecord {
                    cone_ops: None,
                    ops_skipped: None,
                    frontier_died_at_level: None,
                    ..r.clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(smap.records, strip(&map.records));
    }

    #[test]
    fn coverage_composes_with_a_plain_observer() {
        let c = xor3();
        let cov = scal_obs::CoverageObserver::new();
        let collect = CollectObserver::default();
        let _ = Campaign::new(&c)
            .observer(&collect)
            .coverage(&cov)
            .run()
            .unwrap();
        assert!(cov.latest().is_some());
        assert!(!collect.is_empty());
    }

    #[test]
    fn sequential_circuits_are_rejected_not_panicked() {
        let mut c = Circuit::new();
        let ff = c.dff(false);
        let nq = c.not(ff);
        c.connect_dff(ff, nq);
        c.mark_output("q", ff);
        assert!(matches!(
            Campaign::new(&c).run(),
            Err(EngineError::Sequential)
        ));
        assert!(matches!(
            Campaign::new(&c).scalar().run(),
            Err(EngineError::Sequential)
        ));
    }
}
