//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors an
//! API-compatible subset of proptest 1.x: the [`Strategy`](strategy::Strategy)
//! trait and the combinators this repository uses (`prop_map`,
//! `prop_recursive`, ranges, tuples, `collection::vec`, `Just`, `any`,
//! `prop_oneof!`), plus the `proptest!` / `prop_assert*!` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! stand-in:
//!
//! * **no shrinking** — a failing case reports its generated inputs verbatim;
//! * **deterministic seeding** — each `proptest!` test derives its RNG seed
//!   from its source location, so failures reproduce across runs;
//! * no persistence (`.proptest-regressions` files are ignored).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, RNG, and the error type test cases return.

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Limit on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 65_536,
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Retries generation until `f` accepts the value. `whence` labels
        /// the filter in exhaustion panics.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategies: `self` generates leaves, and `f` wraps an
        /// inner strategy into a one-level-deeper one, up to `depth` levels.
        /// The `_desired_size` / `_expected_branch_size` tuning knobs of real
        /// proptest are accepted and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                // 2:1 odds of recursing keep trees non-trivial while the
                // iteration count bounds their depth.
                current = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
            }
            current
        }
    }

    /// Object-safe type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_new_value(rng)
        }
    }

    trait DynStrategy<T> {
        fn dyn_new_value(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 10000 values in a row",
                self.whence
            );
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics later if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! Canonical strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples the full domain uniformly.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_excl - self.size.min;
            let len = self.size.min + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec` etc.).
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current inputs (the case is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr);
     $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Location-derived seed: deterministic, distinct per test.
                let mut rng = $crate::test_runner::TestRng::new(
                    0x5CA1_AB1E_u64
                        .wrapping_mul(0x100_0000_01B3)
                        .wrapping_add((line!() as u64) << 16)
                        .wrapping_add(column!() as u64),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < config.max_global_rejects,
                                "{}: too many prop_assume! rejections",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {} failed after {} passing cases: {}\n  inputs: {}",
                                stringify!($name),
                                passed,
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, w in any::<u32>()) {
            prop_assert!((3..9).contains(&n));
            let _ = w;
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_retries(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), Just(2u32)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(bool),
        Node(Vec<Tree>),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_terminate(
            t in prop_oneof![any::<bool>().prop_map(Tree::Leaf)]
                .prop_recursive(4, 16, 3, |inner| {
                    prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
                })
        ) {
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            prop_assert!(depth(&t) <= 6);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(n in 0usize..4) {
                prop_assert!(n < 2, "n too big: {}", n);
            }
        }
        inner();
    }
}
