//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal benchmark harness with criterion's macro and builder surface:
//! `criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], and [`BenchmarkId`].
//!
//! Statistics are intentionally simple: after a warm-up, each benchmark is
//! sampled up to `sample_size` times (bounded by `measurement_time`) and the
//! minimum / mean / maximum per-iteration wall times are printed. No HTML
//! reports, no outlier analysis, no saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batching policy for [`Bencher::iter_batched`] (accepted for API parity;
/// this harness always uses one batch per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Two-part benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    label: String,
}

impl Bencher<'_> {
    /// Benchmarks `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Benchmarks `routine` on inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    /// As [`Bencher::iter_batched`] but passing the input by mutable
    /// reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.run(|| {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            start.elapsed()
        });
    }

    fn run(&mut self, mut sample: impl FnMut() -> Duration) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_up_start = Instant::now();
        loop {
            sample();
            if warm_up_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        // Measurement: up to sample_size samples within the time budget.
        let mut times = Vec::with_capacity(self.config.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.config.sample_size {
            times.push(sample());
            if measure_start.elapsed() >= self.config.measurement_time {
                break;
            }
        }
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mean = times.iter().sum::<Duration>() / times.len().max(1) as u32;
        println!(
            "{:<44} time: [{} {} {}]  ({} samples)",
            self.label,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            times.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark manager: collects configuration and runs benchmarks.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the per-benchmark measurement time budget.
    #[must_use]
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.config.measurement_time = dur;
        self
    }

    /// Sets the warm-up time budget.
    #[must_use]
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.config.warm_up_time = dur;
        self
    }

    /// Sets the target number of samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: &self.config,
            label: id.into().to_string(),
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time for the rest of this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.config.measurement_time = dur;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: &self.criterion.config,
            label: format!("{}/{}", self.name, id.into()),
        };
        f(&mut b);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions; both the plain and the
/// `name/config/targets` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        tiny().bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 2, "warm-up + at least one sample");
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = tiny();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("add", 4), |b| {
            b.iter_batched(
                || vec![1u32; 4],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
