//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the handful of [`Rng`] methods the
//! repository actually calls. The generator is SplitMix64 — deterministic,
//! fast, and statistically adequate for test-input generation (it is *not*
//! cryptographic, and neither caller here needs it to be).

#![forbid(unsafe_code)]

/// Core trait for generators: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 bits of mantissa precision, as rand does.
        let scale = (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) < p * scale
    }

    /// Samples a value of type `T` uniformly.
    fn gen<T: Generatable>(&mut self) -> T {
        T::generate(self)
    }

    /// Samples uniformly from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T: UniformRange>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Generatable {
    /// Samples one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generatable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Generatable for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Generatable for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types [`Rng::gen_range`] can sample from a half-open range.
pub trait UniformRange: Sized {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is < 2^-32 for the spans used here.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }
}
