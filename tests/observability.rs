//! Observability-layer integration: the event stream is deterministic and
//! golden-file-stable, cancellation yields a fault-ordered prefix that is
//! bit-identical to the uncancelled run, and the `Campaign` builder's
//! backends and eval modes all agree.

use scal::core::paper;
use scal::faults::{enumerate_faults, Campaign};
use scal::obs::json::validate_jsonl;
use scal::obs::{CampaignEvent, CampaignObserver, CancelToken, JsonlTrace};

/// Zeroes the value of a `"micros":<n>` field so wall-clock noise does not
/// break golden comparisons.
fn zero_micros(line: &str) -> String {
    const KEY: &str = "\"micros\":";
    match line.find(KEY) {
        None => line.to_owned(),
        Some(i) => {
            let start = i + KEY.len();
            let end = line[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(line.len(), |j| start + j);
            format!("{}0{}", &line[..start], &line[end..])
        }
    }
}

fn normalized_fig3_4_trace() -> String {
    let fig = paper::fig3_4();
    let trace = JsonlTrace::new(Vec::new());
    // Width 1 pins the lane_geometry payload; the auto width is
    // CPU-feature-dependent and would vary the golden machine-to-machine.
    // Packing and collapsing are pinned off for the same reason: the golden
    // pins the pattern-major per-fault cone trace, and collapsed traces are
    // differentially asserted identical in tests/collapse.rs.
    let report = Campaign::new(&fig.circuit)
        .threads(1)
        .word_width(1)
        .fault_packing(false)
        .fault_collapse(false)
        .observer(&trace)
        .run()
        .expect("fig 3.4 network is alternating");
    assert!(!report.cancelled);
    let text = String::from_utf8(trace.into_inner()).expect("utf8 trace");
    let mut out = String::new();
    for line in text.lines() {
        out.push_str(&zero_micros(line));
        out.push('\n');
    }
    out
}

/// Single-threaded campaigns produce a bit-stable event stream: same
/// events, same order, same payloads on every run and every machine. The
/// golden file pins the whole fig 3.4 trace (wall-times zeroed).
///
/// Regenerate after intentional schema changes with
/// `UPDATE_GOLDEN=1 cargo test --test observability`.
#[test]
fn fig3_4_trace_matches_golden_file() {
    let got = normalized_fig3_4_trace();
    assert!(validate_jsonl(&got).expect("well-formed JSONL") > 0);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig3_4_trace.jsonl"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = include_str!("golden/fig3_4_trace.jsonl");
    assert_eq!(
        got, want,
        "event stream drifted from tests/golden/fig3_4_trace.jsonl; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The trace is identical run-to-run (determinism does not depend on the
/// golden file being up to date).
#[test]
fn fig3_4_trace_is_deterministic_run_to_run() {
    assert_eq!(normalized_fig3_4_trace(), normalized_fig3_4_trace());
}

struct CancelAfter<'a> {
    token: &'a CancelToken,
    after: usize,
}

impl CampaignObserver for CancelAfter<'_> {
    fn on_event(&self, event: &CampaignEvent) {
        if let CampaignEvent::Progress { done, .. } = event {
            if *done >= self.after {
                self.token.cancel();
            }
        }
    }
}

/// Cancelling mid-run returns a deterministic, fault-ordered prefix whose
/// reports are bit-identical to the same prefix of an uncancelled run.
#[test]
fn cancelled_campaign_returns_bit_identical_prefix() {
    let c = paper::ripple_adder(4);
    let faults = enumerate_faults(&c);
    let full = Campaign::new(&c)
        .faults(faults.clone())
        .run()
        .expect("full campaign");
    assert!(!full.cancelled);

    let cancel = CancelToken::new();
    let observer = CancelAfter {
        token: &cancel,
        after: 5,
    };
    let partial = Campaign::new(&c)
        .faults(faults)
        .observer(&observer)
        .cancel(&cancel)
        .run()
        .expect("cancelled campaign");
    assert!(partial.cancelled, "token must cancel the run");
    let k = partial.results.len();
    assert!(
        k < full.results.len(),
        "cancellation must stop before the end ({k} of {})",
        full.results.len()
    );
    assert_eq!(
        partial.results[..],
        full.results[..k],
        "partial results must be the exact prefix of the full run"
    );
}

/// Every path through the builder — packed engine in cone and full eval
/// modes, plus the scalar oracle — produces bit-identical results.
#[test]
fn builder_backends_and_eval_modes_agree() {
    use scal::engine::EvalMode;
    let c = paper::fig3_7().circuit;
    let cone = Campaign::new(&c).run().expect("cone campaign");
    let full = Campaign::new(&c)
        .eval_mode(EvalMode::Full)
        .run()
        .expect("full campaign");
    assert_eq!(cone.results, full.results, "cone vs full eval");

    let faults = enumerate_faults(&c);
    let scalar = Campaign::new(&c)
        .faults(faults)
        .scalar()
        .run()
        .expect("scalar builder campaign");
    assert_eq!(cone.results, scalar.results, "engine vs scalar oracle");
}
