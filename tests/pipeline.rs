//! Cross-crate integration: the full design pipeline from a plain function
//! to a verified SCAL system.

use scal::analysis::analyze;
use scal::core::{dualize_synthesized, verify};
use scal::faults::Campaign;
use scal::minority::convert_to_alternating;
use scal::netlist::Circuit;
use scal::seq::dual_ff::AltSeqDriver;
use scal::seq::{code_conversion_machine, dual_ff_machine, StateMachine};

/// A plain multi-output design used across the pipeline tests.
fn plain_design() -> Circuit {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let d = c.input("c");
    let g1 = c.and(&[a, b]);
    let g2 = c.or(&[g1, d]);
    let g3 = c.xor(&[a, d]);
    c.mark_output("f1", g2);
    c.mark_output("f2", g3);
    c
}

#[test]
fn combinational_pipeline_dualize_analyze_verify() {
    let design = plain_design();
    let alternating = dualize_synthesized(&design);

    // Theorem 2.1: alternating network iff self-dual.
    for tt in alternating.output_tts() {
        assert!(tt.is_self_dual());
    }

    // Algorithm 3.1 and the exhaustive campaign agree line by line.
    let report = analyze(&alternating).expect("analyzable");
    let verdict = verify(&alternating).expect("verifiable");
    assert_eq!(report.self_checking, verdict.is_self_checking());
    assert!(verdict.is_self_checking());

    let campaign = Campaign::new(&alternating).run().unwrap().results;
    for line in &report.lines {
        let sim_secure = campaign
            .iter()
            .filter(|r| r.fault.site == line.site)
            .all(scal::faults::CampaignResult::fault_secure);
        assert_eq!(line.fault_secure, sim_secure, "line {}", line.site);
    }
}

#[test]
fn nand_pipeline_through_minority_modules() {
    // Build a pure-NAND version of a function, convert to minority modules,
    // verify equivalence and self-checking.
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let d = c.input("c");
    let g1 = c.nand(&[a, b]);
    let g2 = c.nand(&[g1, d]);
    let g3 = c.nand(&[g1, g2]);
    c.mark_output("f", g3);

    let alt = convert_to_alternating(&c).expect("pure NAND net");
    // Period-1 restriction equals the original.
    let orig = c.output_tt(0);
    let tt = alt.output_tt(0);
    for m in 0..8u32 {
        assert_eq!(tt.eval(m), orig.eval(m));
    }
    // Verified SCAL.
    let verdict = verify(&alt).expect("verifiable");
    assert!(verdict.is_self_checking());
}

#[test]
fn sequential_pipeline_both_designs_agree_with_the_machine() {
    // A 3-state machine exercising unused-state codes.
    let mut m = StateMachine::new("mod3-counter", 3, 1, 2);
    for s in 0..3 {
        let out = [(s & 1) == 1, (s >> 1) == 1];
        m.set(s, 0, s, &out); // hold
        m.set(s, 1, (s + 1) % 3, &out); // count
    }

    let inputs = [1u32, 1, 0, 1, 1, 1, 0, 0, 1, 1];
    let golden = m.run(&inputs);

    for scal_machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
        let mut drv = AltSeqDriver::new(&scal_machine);
        for (i, &s) in inputs.iter().enumerate() {
            let (o1, o2) = drv.apply(&[s == 1]);
            assert_eq!(o1[0], golden[i][0], "{} z0 word {i}", scal_machine.design);
            assert_eq!(o1[1], golden[i][1], "{} z1 word {i}", scal_machine.design);
            for k in scal_machine.monitored() {
                assert_ne!(o1[k], o2[k], "{} line {k} word {i}", scal_machine.design);
            }
        }
    }
}

#[test]
fn sequential_fault_security_holds_for_both_designs() {
    let mut m = StateMachine::new("toggle", 2, 1, 1);
    m.set(0, 0, 0, &[false]);
    m.set(0, 1, 1, &[false]);
    m.set(1, 0, 1, &[true]);
    m.set(1, 1, 0, &[true]);

    let words: Vec<Vec<bool>> = [1u32, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0]
        .iter()
        .map(|&s| vec![s == 1])
        .collect();

    for scal_machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
        let mut golden = Vec::new();
        {
            let mut drv = AltSeqDriver::new(&scal_machine);
            for w in &words {
                golden.push(drv.apply(w));
            }
        }
        for fault in scal_machine.checkable_faults() {
            let mut drv = AltSeqDriver::new(&scal_machine);
            drv.attach(fault.to_override());
            for (i, w) in words.iter().enumerate() {
                let (o1, o2) = drv.apply(w);
                let mon = scal_machine.monitored();
                let wrong = mon
                    .clone()
                    .any(|k| o1[k] != golden[i].0[k] || o2[k] != golden[i].1[k]);
                if wrong {
                    let nonalt = mon.clone().any(|k| o1[k] == o2[k]);
                    let code_bad = scal_machine
                        .code_pair
                        .map(|(f, g)| o1[f] == o1[g] || o2[f] == o2[g])
                        .unwrap_or(false);
                    assert!(
                        nonalt || code_bad,
                        "{}: fault {fault} slipped a wrong code word at word {i}",
                        scal_machine.design
                    );
                    break;
                }
            }
        }
    }
}

#[test]
fn checker_closes_the_loop_on_a_scal_network() {
    // Feed a verified SCAL network's outputs into the Reynolds dual-rail
    // checker: fault-free words check valid, an injected network fault is
    // flagged by the checker (not just by inspection).
    use scal::checkers::two_rail::reynolds_checker;
    use scal::netlist::Sim;

    let design = plain_design();
    let network = dualize_synthesized(&design);
    let n_out = network.outputs().len();
    let checker = reynolds_checker(n_out);

    let drive = |ov: &[scal::netlist::Override], m: u32| -> (Vec<bool>, Vec<bool>) {
        let n = network.inputs().len();
        let x: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
        let y: Vec<bool> = x.iter().map(|&b| !b).collect();
        (network.eval_with(&x, ov), network.eval_with(&y, ov))
    };

    // Fault-free: checker validates every pair.
    for m in 0..8u32 {
        let (o1, o2) = drive(&[], m);
        let mut sim = Sim::new(&checker);
        sim.step(&o1);
        let out = sim.step(&o2);
        assert_ne!(out[0], out[1], "pair {m} must check valid");
    }

    // Every detectable fault raises a non-code checker word on some pair.
    for fault in scal::faults::enumerate_faults(&network) {
        let ov = [fault.to_override()];
        let mut flagged = false;
        for m in 0..8u32 {
            let (o1, o2) = drive(&ov, m);
            let mut sim = Sim::new(&checker);
            sim.step(&o1);
            let out = sim.step(&o2);
            if out[0] == out[1] {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "fault {fault} never flagged by the checker");
    }
}
