//! The paper's headline claims, asserted end to end (the machine-checked
//! counterpart of EXPERIMENTS.md).

use scal::checkers::mixed::{dual_rail_only_cost, mixed_cost, partition};
use scal::core::paper;
use scal::core::verify;
use scal::seq::kohavi::{table_4_1, table_4_1_general};
use scal::system::adr::CostModel;
use scal::system::econ;

/// §2.4 merit (1): "some basic functions are already self-dual and involve
/// no hardware cost" — the adder.
#[test]
fn claim_adder_is_scal_for_free() {
    let adder = paper::self_dual_adder();
    assert!(adder.output_tts().iter().all(scal::logic::Tt::is_self_dual));
    assert!(verify(&adder).unwrap().is_self_checking());
}

/// §2.4 merit (4) and disadvantage (1): redundancy in time, not space — the
/// alternating designs add no extra output connections, at twice the time.
#[test]
fn claim_time_for_space_trade() {
    use scal::system::{Cpu, CpuMode};
    let p = scal::system::adr::sum_program(10);
    let mut normal = Cpu::new(CpuMode::Normal);
    normal.run(&p, 100_000).unwrap();
    let mut alt = Cpu::new(CpuMode::Alternating);
    alt.run(&p, 100_000).unwrap();
    assert_eq!(alt.stats().periods, 2 * normal.stats().periods);
}

/// Chapter 3: the worked example's self-checking verdicts (Figs 3.4/3.7).
#[test]
fn claim_example_network_verdicts() {
    let broken = paper::fig3_4();
    let v = verify(&broken.circuit).unwrap();
    assert!(!v.fault_secure, "line 20 must defeat self-checking");
    let fixed = paper::fig3_7();
    let v = verify(&fixed.circuit).unwrap();
    assert!(
        v.is_self_checking(),
        "the Fig 3.7 fix restores self-checking"
    );
}

/// Chapter 4: memory cost — translator `n+1` vs dual flip-flop `2n`.
#[test]
fn claim_table_4_1_memory() {
    let rows = table_4_1();
    assert_eq!(rows[0].measured_flip_flops, 2);
    assert_eq!(rows[1].measured_flip_flops, 4);
    assert_eq!(rows[2].measured_flip_flops, 3);
    // "this cost effectiveness becomes even more apparent the larger the
    // machine is": at n = 32 the translator saves 31 flip-flops.
    let g = table_4_1_general(32, 400);
    assert_eq!(g[1].1 - g[2].1, 31.0);
}

/// Chapter 5: the mixed checker costs "about one-half" of dual-rail-only on
/// the nine-output example.
#[test]
fn claim_mixed_checker_halves_cost() {
    let share = vec![vec![3, 4, 5], vec![5, 6], vec![7, 8]];
    let p = partition(9, &share, &[4, 7]);
    let dr = dual_rail_only_cost(9);
    let mx = mixed_cost(&p);
    assert_eq!(dr.two_input_gates, 48);
    assert_eq!(mx.two_input_gates, 24);
}

/// Chapter 5: Theorem 5.2's witness — the clock-disable module has a fault
/// invisible in code operation but fatal afterwards, so no standard-gate
/// hardcore is self-checking; replication is the answer.
#[test]
fn claim_hardcore_impossibility_witness_and_replication() {
    use scal::checkers::hardcore::{
        clock_disable_module, dangerous_inputs, dormant_faults, replicated_clock_disable,
    };
    let m = clock_disable_module();
    let dormant = dormant_faults(&m);
    assert!(!dormant.is_empty());
    assert!(dormant.iter().any(|f| !dangerous_inputs(&m, *f).is_empty()));
    let m3 = replicated_clock_disable(3);
    assert!(dormant_faults(&m3)
        .iter()
        .all(|f| dangerous_inputs(&m3, *f).is_empty()));
}

/// Chapter 6: minority modules suffice to convert any NAND or NOR network
/// (the abstract's final claim), with the Fig 6.2 costs.
#[test]
fn claim_minority_sufficiency() {
    let fig = scal::minority::fig6_2_example();
    assert_eq!(fig.direct.cost().threshold_modules, 4);
    assert_eq!(fig.direct.cost().gate_inputs, 14);
    // The realized function (3-input minority) is itself self-dual, which
    // makes the added period clock logically vacuous; its stem belongs to
    // the hardcore clock distribution, so it is excluded from the module's
    // fault universe (the paper's common-clock-node assumption).
    let faults = scal::core::faults_excluding_clock(&fig.direct, "phi");
    let verdict = scal::core::verify_with(&fig.direct, &faults).unwrap();
    assert!(verdict.is_self_checking());
    assert!(verify(&fig.minimal).unwrap().is_self_checking());
}

/// Chapter 7: the economics peak at single-fault protection, and the
/// Fig 7.5 configuration beats TMR exactly when A < 2.
#[test]
fn claim_system_economics() {
    assert_eq!(econ::optimal_degree(5.0), econ::Protection::SingleFault);
    let m = CostModel { a: 1.8, s: 2.0 };
    assert!(m.parallel_scal_factor() < m.tmr_factor());
    assert!(m.adr_factor() > m.tmr_factor());
    let m2 = CostModel { a: 2.1, s: 2.0 };
    assert!(m2.parallel_scal_factor() > m2.tmr_factor());
}

/// The experiment harness itself stays green: every registered experiment
/// renders without panicking and mentions its figure/table.
#[test]
fn claim_all_experiments_regenerate() {
    let ctx = scal_bench::ExperimentCtx::new();
    for (id, f) in scal_bench_experiments() {
        let report = f(&ctx);
        assert!(!report.is_empty(), "{id} produced an empty report");
        assert!(report.contains("=="), "{id} lacks a header");
    }
}

fn scal_bench_experiments() -> &'static [scal_bench::Experiment] {
    // Re-exported through a tiny indirection so the dev-dependency stays in
    // one place.
    scal_bench::EXPERIMENTS
}
