//! Golden wire-schema test: pins the JSON shape of every `scal-obs`
//! campaign-event variant and every `scal-serve` response frame.
//!
//! The serialized forms below are the service's wire contract — remote
//! consumers parse these exact field names. Any drift (renamed field,
//! changed optionality, new variant) must show up as a diff against
//! `tests/golden/wire_schema.jsonl` and be committed deliberately:
//! regenerate with `UPDATE_GOLDEN=1 cargo test --test wire_schema`.

use scal::obs::json::validate_jsonl;
use scal::obs::{CampaignEvent, Phase};
use scal::serve::proto::{
    frame_accepted, frame_cancel_ack, frame_dump, frame_error, frame_event, frame_result,
    frame_shutdown_ack, frame_status, StatusInfo,
};
use scal::serve::telemetry::FlightEvent;
use scal::serve::{client::demo, run_job, JobKind};
use scal_netlist::NetlistFormat;
use scal_obs::NullObserver;

/// One instance of every event variant, with optional fields *present* so
/// the golden file shows the full shape (omission when `None` is pinned by
/// separate assertions below).
fn all_events() -> Vec<CampaignEvent> {
    vec![
        CampaignEvent::CampaignStart {
            campaign: "pair",
            faults: 10,
            inputs: 3,
            outputs: 1,
            threads: 2,
        },
        CampaignEvent::EvalMode { mode: "cone" },
        CampaignEvent::LaneGeometry {
            width: 8,
            fault_lanes: 63,
            pattern_lanes: 8,
            packing: "fault",
        },
        CampaignEvent::PhaseStart {
            phase: Phase::Compile,
        },
        CampaignEvent::PhaseEnd {
            phase: Phase::FaultSim,
            micros: 1234,
        },
        CampaignEvent::Span {
            name: "levelize",
            parent: "compile",
            micros: 56,
            count: 1,
            items: 12,
        },
        CampaignEvent::LevelGates { level: 2, gates: 5 },
        CampaignEvent::FaultCollapse {
            faults: 10,
            representatives: 6,
            dominance_edges: 2,
            micros: 7,
        },
        CampaignEvent::FaultClass {
            fault: 3,
            representative: 1,
            size: 2,
        },
        CampaignEvent::FaultStart {
            fault: 3,
            worker: 1,
        },
        CampaignEvent::BatchDone {
            fault: 3,
            worker: 1,
            batch: 0,
            pairs: 64,
        },
        CampaignEvent::LaneBatch {
            batch: 1,
            worker: 0,
            lanes: 63,
            words: 16,
            retired: 40,
        },
        CampaignEvent::FaultDropped {
            fault: 3,
            worker: 1,
            batch: 2,
        },
        CampaignEvent::ConeStats {
            fault: 3,
            worker: 1,
            cone_ops: 9,
            ops_evaluated: 40,
            ops_skipped: 88,
            frontier_died_at_level: Some(2),
        },
        CampaignEvent::FaultFinish {
            fault: 3,
            worker: 1,
            detected: 4,
            violations: 0,
            observable: true,
            dropped: false,
            pairs: 4,
            first_detected: Some(1),
        },
        CampaignEvent::Progress { done: 7, total: 10 },
        CampaignEvent::Cancelled { completed: 7 },
        CampaignEvent::CampaignEnd {
            faults: 10,
            dropped: 1,
            pairs: 40,
            words: 22,
            micros: 9876,
            cancelled: false,
        },
    ]
}

/// The full wire surface as one JSONL document: every event (bare and
/// wrapped in an `event` frame for one sample), then every frame type. The
/// result frame embeds a real single-threaded xor3 pair campaign, so the
/// report and coverage-record schemas are pinned too.
fn wire_surface() -> String {
    let mut lines: Vec<String> = all_events().iter().map(CampaignEvent::to_json).collect();
    lines.push(frame_accepted(7, 42, "pair", 4, 3));
    lines.push(frame_event(7, 42, &all_events()[0]));
    let spec = demo::pair_spec(4, false);
    let out = run_job(&spec.kind, 1, None, &NullObserver, None).expect("demo campaign");
    lines.push(frame_result(7, 42, &out.report, &out.coverage, 0));
    lines.push(frame_error(
        Some(7),
        Some(42),
        "bad_request",
        "missing \"kind\"",
    ));
    lines.push(frame_error(
        None,
        None,
        "bad_json",
        "line 1: expected value",
    ));
    lines.push(frame_cancel_ack(7, true));
    let mut status = StatusInfo {
        workers: 4,
        queued: 2,
        running: 1,
        done: 9,
        shutting_down: false,
        uptime_ms: 120_000,
        jobs_accepted: 12,
        jobs_finished: 9,
        jobs_cancelled: 2,
        jobs_timed_out: 1,
        jobs_panicked: 0,
        ..StatusInfo::default()
    };
    status.queue_depths[4] = 2;
    lines.push(frame_status(&status));
    lines.push(frame_dump(&[
        FlightEvent {
            ms: 5,
            id: 7,
            trace: 42,
            state: "submit",
            detail: "kind=pair priority=4 queued=3".to_owned(),
        }
        .to_json(),
        FlightEvent {
            ms: 9,
            id: 7,
            trace: 42,
            state: "start",
            detail: String::new(),
        }
        .to_json(),
    ]));
    lines.push(frame_shutdown_ack());
    // Submit request lines, one per netlist interchange format. The text
    // line must stay byte-identical to pre-format clients (no
    // "netlist_format" member); verilog/bench lines pin the opt-in field.
    for format in [
        NetlistFormat::ScalText,
        NetlistFormat::Verilog,
        NetlistFormat::Bench,
    ] {
        let mut spec = demo::pair_spec(4, false);
        spec.netlist_format = format;
        lines.push(spec.to_request_line());
    }
    // The fault-collapse submit knob is opt-in on the wire: absent means
    // the backend default, a boolean pins the job's behavior.
    let mut spec = demo::pair_spec(4, false);
    spec.fault_collapse = Some(false);
    lines.push(spec.to_request_line());
    let mut text = lines.join("\n");
    text.push('\n');
    text
}

#[test]
fn wire_surface_matches_golden_file() {
    let got = wire_surface();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/wire_schema.jsonl"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = include_str!("golden/wire_schema.jsonl");
    assert_eq!(
        got, want,
        "wire schema drifted from tests/golden/wire_schema.jsonl; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn wire_surface_is_valid_jsonl_and_covers_every_variant() {
    let text = wire_surface();
    validate_jsonl(&text).expect("valid JSONL");
    let events = all_events();
    assert_eq!(events.len(), 18, "new event variant? extend all_events()");
    for e in &events {
        assert!(
            text.contains(&format!("\"ev\":\"{}\"", e.name())),
            "missing {}",
            e.name()
        );
    }
    for frame in [
        "accepted",
        "event",
        "result",
        "error",
        "cancel_ack",
        "status",
        "dump",
        "shutdown_ack",
    ] {
        assert!(
            text.contains(&format!("\"frame\":\"{frame}\"")),
            "missing frame {frame}"
        );
    }
    // Non-default formats announce themselves; the text default stays silent
    // so pre-format request lines remain byte-identical.
    assert!(text.contains("\"netlist_format\":\"verilog\""));
    assert!(text.contains("\"netlist_format\":\"bench\""));
    assert!(!text.contains("\"netlist_format\":\"text\""));
    // The collapse knob is pinned by the final submit line; the default
    // lines before it must not carry the field.
    assert!(text.contains("\"fault_collapse\":false"));
    assert!(!text.contains("\"fault_collapse\":true"));
}

#[test]
fn optional_fields_are_omitted_when_absent() {
    let undetected = CampaignEvent::FaultFinish {
        fault: 0,
        worker: 0,
        detected: 0,
        violations: 2,
        observable: true,
        dropped: false,
        pairs: 4,
        first_detected: None,
    };
    assert!(!undetected.to_json().contains("first_detected"));
    let live_frontier = CampaignEvent::ConeStats {
        fault: 0,
        worker: 0,
        cone_ops: 9,
        ops_evaluated: 40,
        ops_skipped: 0,
        frontier_died_at_level: None,
    };
    assert!(!live_frontier.to_json().contains("frontier_died_at_level"));
    let anonymous = frame_error(None, None, "bad_json", "x");
    assert!(!anonymous.contains("\"id\""));
    assert!(!anonymous.contains("\"trace\""));
}

#[test]
fn cpu_and_seq_reports_match_pinned_field_sets() {
    // The per-kind report objects are part of the result-frame contract;
    // pin their key sets (values vary with the demo circuits).
    let keys = |report: &str| -> Vec<String> {
        match scal::obs::json::parse(report).expect("report json") {
            scal::obs::json::JsonValue::Object(members) => {
                members.into_iter().map(|(k, _)| k).collect()
            }
            other => panic!("report not an object: {other:?}"),
        }
    };
    let spec = demo::seq_spec(4, scal::seq::SeqBackend::Packed, 8);
    let out = run_job(&spec.kind, 1, None, &NullObserver, None).expect("seq campaign");
    // `first_violation_word` rides along only when a violation occurred.
    let mut seq_keys = keys(&out.report);
    seq_keys.retain(|k| k != "first_violation_word");
    assert_eq!(
        seq_keys,
        [
            "campaign",
            "faults",
            "total_faults",
            "dormant",
            "detected",
            "violations",
            "fault_secure",
            "cancelled",
            "collapse_faults",
            "collapse_representatives",
            "collapse_ratio",
        ],
        "seq report schema drifted"
    );
    let spec = demo::cpu_spec(4);
    let JobKind::Cpu { .. } = spec.kind else {
        panic!("demo cpu spec changed kind")
    };
    let out = run_job(&spec.kind, 1, None, &NullObserver, None).expect("cpu campaign");
    assert_eq!(
        keys(&out.report),
        [
            "campaign",
            "faults",
            "undetected_wrong",
            "periods",
            "cancelled",
            "collapse_faults",
            "collapse_representatives",
            "collapse_ratio",
        ],
        "cpu report schema drifted"
    );
    // Forcing the knob off restores the pre-collapse report shape.
    let out = run_job(&spec.kind, 1, Some(false), &NullObserver, None).expect("cpu campaign");
    assert!(!out.report.contains("collapse_ratio"));
}
