//! Differential tests for compile-time fault collapsing: a collapsed
//! campaign simulates only equivalence-class representatives, but its
//! coverage map must stay one-record-per-original-fault and bit-identical
//! (modulo the class annotations themselves) to the uncollapsed sweep — on
//! the paper fixtures, on random self-dual networks across every engine
//! configuration axis (threads × dropping × eval mode × word width), and
//! on a 100k-gate synthetic design.

use proptest::prelude::*;
use scal::core::paper;
use scal::engine::EvalMode;
use scal::faults::{enumerate_faults, Campaign};
use scal::netlist::synth::{self, random_selfdual, SynthKind};
use scal::netlist::Circuit;
use scal::obs::{CoverageMap, CoverageObserver};

/// Runs one pair campaign and returns its coverage map. `max_faults`
/// truncates the enumerated universe (same prefix on both sides of a
/// differential pair, so identity still holds fault-for-fault).
fn run_map(
    circuit: &Circuit,
    max_faults: Option<usize>,
    threads: usize,
    drop: bool,
    mode: EvalMode,
    width: usize,
    collapse: bool,
) -> CoverageMap {
    let mut faults = enumerate_faults(circuit);
    if let Some(n) = max_faults {
        faults.truncate(n);
    }
    let cov = CoverageObserver::new();
    Campaign::new(circuit)
        .faults(faults)
        .threads(threads)
        .drop_after_detection(drop)
        .eval_mode(mode)
        .word_width(width)
        .fault_collapse(collapse)
        .coverage(&cov)
        .run()
        .expect("campaign");
    cov.latest().expect("finished map")
}

/// The paper fixtures collapse without changing a single verdict, first
/// detecting pair, or violation count.
#[test]
fn paper_fixtures_collapse_to_identical_maps() {
    let fixtures: Vec<(&str, Circuit)> = vec![
        ("fig3_4", paper::fig3_4().circuit),
        ("fig3_7", paper::fig3_7().circuit),
        ("adder4", paper::ripple_adder(4)),
    ];
    for (name, circuit) in &fixtures {
        for drop in [false, true] {
            let collapsed = run_map(circuit, None, 1, drop, EvalMode::Cone, 0, true);
            let plain = run_map(circuit, None, 1, drop, EvalMode::Cone, 0, false);
            assert_eq!(collapsed.records.len(), plain.records.len(), "{name}");
            assert_eq!(
                collapsed.without_annotations(),
                plain.without_annotations(),
                "{name} drop={drop}"
            );
        }
    }
}

/// Collapsing actually merges classes on the adder (every gate's
/// controlling-value faults fold into the output fault) and annotates the
/// members with their representative.
#[test]
fn adder_collapse_annotates_classes() {
    let adder = paper::ripple_adder(4);
    let collapsed = run_map(&adder, None, 1, false, EvalMode::Cone, 0, true);
    let members: Vec<_> = collapsed
        .records
        .iter()
        .filter(|r| r.class_size.is_some_and(|s| s > 1))
        .collect();
    assert!(!members.is_empty(), "adder must have non-trivial classes");
    for r in &members {
        let rep = r.class_rep.expect("member carries its representative");
        assert!(rep < collapsed.records.len());
    }
    // The uncollapsed sweep never annotates.
    let plain = run_map(&adder, None, 1, false, EvalMode::Cone, 0, false);
    assert!(plain
        .records
        .iter()
        .all(|r| r.class_rep.is_none() && r.class_size.is_none()));
}

/// A 100k-gate random self-dual design (the large-tier smoke fixture)
/// collapses to the identical truncated-universe coverage map.
#[test]
fn hundred_k_selfdual_collapse_identity() {
    // 48 faults keep both sides inside one packed 63-lane batch, so the
    // debug-build test stays compile-dominated rather than sim-dominated.
    let circuit = synth::generate(SynthKind::RandomSelfDual, 100_000, 42);
    let collapsed = run_map(&circuit, Some(48), 2, false, EvalMode::Cone, 0, true);
    let plain = run_map(&circuit, Some(48), 2, false, EvalMode::Cone, 0, false);
    assert_eq!(collapsed.without_annotations(), plain.without_annotations());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Collapsed and uncollapsed campaigns agree on random self-dual
    /// networks across the full engine configuration grid. The builder
    /// pins the toggle explicitly, so this holds regardless of any
    /// `SCAL_FAULT_COLLAPSE` in the environment.
    #[test]
    fn random_selfdual_collapse_identity(
        seed in any::<u64>(),
        inputs in 5usize..9,
        core_gates in 16usize..64,
        threads in 1usize..4,
        drop in any::<bool>(),
        full_mode in any::<bool>(),
        width_idx in 0usize..4,
    ) {
        let width = [0usize, 1, 4, 8][width_idx];
        let mode = if full_mode { EvalMode::Full } else { EvalMode::Cone };
        let circuit = random_selfdual(inputs, core_gates, seed);
        let collapsed = run_map(&circuit, Some(64), threads, drop, mode, width, true);
        let plain = run_map(&circuit, Some(64), threads, drop, mode, width, false);
        prop_assert_eq!(collapsed.without_annotations(), plain.without_annotations());
    }
}
