//! Persistence integration: every canonical circuit of the reproduction
//! survives the text interchange format with behaviour intact, and the DOT
//! export stays well-formed.

use scal::core::paper;
use scal::netlist::{Circuit, NetlistFormat};

/// Round-trips a circuit through the text interchange format.
fn round_trip(c: &Circuit) -> Result<Circuit, scal::netlist::IoError> {
    Circuit::read(
        &c.write_string(NetlistFormat::ScalText),
        NetlistFormat::ScalText,
    )
}

fn all_paper_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("self_dual_adder", paper::self_dual_adder()),
        ("ripple_adder_2", paper::ripple_adder(2)),
        ("fig3_4", paper::fig3_4().circuit),
        ("fig3_7", paper::fig3_7().circuit),
        ("fig3_1_example", paper::fig3_1_example().0),
        ("kohavi", scal::seq::kohavi::kohavi_circuit()),
        ("reynolds", scal::seq::kohavi::reynolds_circuit().circuit),
        (
            "translator",
            scal::seq::kohavi::translator_circuit().circuit,
        ),
        ("alpt_4", scal::seq::alpt(4)),
        ("palt_4", scal::seq::palt(4)),
        ("checker_8", scal::checkers::two_rail::reynolds_checker(8)),
        ("minority_direct", scal::minority::fig6_2_example().direct),
    ]
}

#[test]
fn text_round_trip_preserves_combinational_behaviour() {
    for (name, c) in all_paper_circuits() {
        let back = round_trip(&c).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back.len(), c.len(), "{name}: node count");
        assert_eq!(back.cost(), c.cost(), "{name}: cost");
        assert!(back.validate().is_ok(), "{name}: validity");
        if !c.is_sequential() && c.inputs().len() <= 12 {
            assert_eq!(back.output_tts(), c.output_tts(), "{name}: function");
        }
    }
}

#[test]
fn text_round_trip_preserves_sequential_behaviour() {
    for (name, c) in all_paper_circuits() {
        if !c.is_sequential() {
            continue;
        }
        let back = round_trip(&c).unwrap();
        let mut s1 = scal::netlist::Sim::new(&c);
        let mut s2 = scal::netlist::Sim::new(&back);
        let n = c.inputs().len();
        for step in 0..24u32 {
            let ins: Vec<bool> = (0..n)
                .map(|i| (step.wrapping_mul(7).wrapping_add(i as u32)) % 3 == 0)
                .collect();
            assert_eq!(s1.step(&ins), s2.step(&ins), "{name} step {step}");
        }
    }
}

#[test]
fn verification_verdicts_survive_round_trip() {
    // The broken network stays broken, the fixed one stays fixed, through
    // serialization.
    let broken = paper::fig3_4().circuit;
    let back = round_trip(&broken).unwrap();
    assert!(!scal::core::verify(&back).unwrap().fault_secure);

    let fixed = paper::fig3_7().circuit;
    let back = round_trip(&fixed).unwrap();
    assert!(scal::core::verify(&back).unwrap().is_self_checking());
}

#[test]
fn dot_export_is_well_formed_for_all_circuits() {
    for (name, c) in all_paper_circuits() {
        let dot = c.to_dot(name);
        assert!(dot.starts_with("digraph"), "{name}");
        assert!(dot.trim_end().ends_with('}'), "{name}");
        // Every node and output must be mentioned.
        assert_eq!(
            dot.matches(" -> out").count(),
            c.outputs().len(),
            "{name}: output edges"
        );
        // Balanced braces (single digraph block).
        assert_eq!(dot.matches('{').count(), 1, "{name}");
        assert_eq!(dot.matches('}').count(), 1, "{name}");
    }
}

#[test]
fn depth_accounting_is_stable_across_round_trip() {
    for (name, c) in all_paper_circuits() {
        let back = round_trip(&c).unwrap();
        assert_eq!(back.depth(), c.depth(), "{name}");
    }
}
