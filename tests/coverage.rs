//! Coverage-map integration: the fig 3.4 per-fault map is golden-file
//! stable (every fault classified detected/undetected with its first
//! detecting pair), maps are bit-identical across backends and thread
//! counts, and a cancelled campaign yields the exact prefix map with
//! `dropped_at` populated under fault dropping.

use scal::core::paper;
use scal::faults::{enumerate_faults, Campaign};
use scal::obs::json::validate_jsonl;
use scal::obs::{CampaignEvent, CampaignObserver, CancelToken, CoverageMap, CoverageObserver};

fn fig3_4_map(scalar: bool, threads: usize) -> CoverageMap {
    let fig = paper::fig3_4();
    let cov = CoverageObserver::new();
    // Pin the unpacked, uncollapsed cone path: the golden file pins the
    // per-fault cone annotations, which auto-packing (full mode) and
    // collapsing (representatives only) would thin out. Collapsed runs are
    // differentially asserted identical in tests/collapse.rs.
    let mut campaign = Campaign::new(&fig.circuit)
        .threads(threads)
        .fault_packing(false)
        .fault_collapse(false)
        .coverage(&cov);
    if scalar {
        campaign = campaign.scalar();
    }
    campaign.run().expect("fig 3.4 network is alternating");
    cov.latest().expect("finished map")
}

/// The fig 3.4 coverage map is pinned as a golden file: per-fault verdicts,
/// first detecting pair indices, violation counts and labels.
///
/// Regenerate after intentional schema changes with
/// `UPDATE_GOLDEN=1 cargo test --test coverage`.
#[test]
fn fig3_4_coverage_map_matches_golden_file() {
    let map = fig3_4_map(false, 1);
    // Every fault is classified, and detected faults carry their first
    // detecting pair.
    assert_eq!(map.records.len(), map.total_faults);
    for r in &map.records {
        assert!(!r.label.is_empty(), "fault #{} has no label", r.fault);
        assert_eq!(r.is_detected(), r.first_detected.is_some());
    }
    // Fig. 3.4's undetected faults are exactly the paper's problem sites:
    // the fanned-out XOR stem ("line 20") and its feeders.
    let undetected: Vec<&str> = map.undetected().map(|r| r.label.as_str()).collect();
    assert_eq!(
        undetected,
        [
            "line13 s-a-0",
            "line14 s-a-0",
            "line20 s-a-0",
            "line20 s-a-1"
        ]
    );
    let got = map.to_json() + "\n";
    assert_eq!(validate_jsonl(&got), Ok(1));
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig3_4_coverage.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = include_str!("golden/fig3_4_coverage.json");
    assert_eq!(
        got, want,
        "coverage map drifted from tests/golden/fig3_4_coverage.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Strips the engine-only cone annotations so records can be compared
/// against the scalar oracle, which has no cone path.
fn strip_cone(records: &[scal::obs::FaultRecord]) -> Vec<scal::obs::FaultRecord> {
    records
        .iter()
        .map(|r| scal::obs::FaultRecord {
            cone_ops: None,
            ops_skipped: None,
            frontier_died_at_level: None,
            ..r.clone()
        })
        .collect()
}

/// Coverage maps are bit-identical across the packed engine and the scalar
/// oracle, and across thread counts (fault events are replayed in fault
/// order at merge). Engine maps additionally carry per-fault cone
/// annotations, which the scalar comparison strips.
#[test]
fn coverage_maps_identical_across_backends_and_threads() {
    let engine1 = fig3_4_map(false, 1);
    let engine4 = fig3_4_map(false, 4);
    let scalar = fig3_4_map(true, 1);
    assert_eq!(engine1.records, engine4.records, "1 vs 4 threads");
    assert!(
        engine1.records.iter().all(|r| r.cone_ops.is_some()),
        "cone eval must annotate every engine record"
    );
    assert_eq!(
        strip_cone(&engine1.records),
        scalar.records,
        "engine vs scalar oracle"
    );
    // The adder exercises wider sweeps and multiple detecting pairs.
    let adder = paper::ripple_adder(4);
    let mut maps = Vec::new();
    for threads in [1, 4] {
        let cov = CoverageObserver::new();
        Campaign::new(&adder)
            .threads(threads)
            .fault_packing(false)
            .fault_collapse(false)
            .coverage(&cov)
            .run()
            .expect("adder campaign");
        maps.push(cov.latest().expect("map").records);
    }
    let cov = CoverageObserver::new();
    Campaign::new(&adder)
        .scalar()
        .coverage(&cov)
        .run()
        .expect("scalar adder campaign");
    maps.push(cov.latest().expect("map").records);
    assert_eq!(maps[0], maps[1], "adder 1 vs 4 threads");
    assert_eq!(strip_cone(&maps[0]), maps[2], "adder engine vs scalar");
}

struct CancelAfter<'a> {
    token: &'a CancelToken,
    after: usize,
}

impl CampaignObserver for CancelAfter<'_> {
    fn on_event(&self, event: &CampaignEvent) {
        if let CampaignEvent::Progress { done, .. } = event {
            if *done >= self.after {
                self.token.cancel();
            }
        }
    }
}

/// Cancelling mid-campaign yields a valid prefix coverage map — records are
/// bit-identical to the same prefix of the uncancelled run, and fault
/// dropping populates `dropped_at` in both.
#[test]
fn cancelled_campaign_yields_prefix_coverage_map() {
    let c = paper::ripple_adder(4);
    let faults = enumerate_faults(&c);
    let full_cov = CoverageObserver::new();
    Campaign::new(&c)
        .faults(faults.clone())
        .drop_after_detection(true)
        .coverage(&full_cov)
        .run()
        .expect("full campaign");
    let full = full_cov.latest().expect("full map");
    assert!(!full.cancelled);
    // Fault dropping cut sweeps short, recording where each one stopped.
    assert!(
        full.records
            .iter()
            .any(|r| r.dropped && r.dropped_at.is_some()),
        "dropping must populate dropped_at"
    );

    let token = CancelToken::new();
    let observer = CancelAfter {
        token: &token,
        after: 5,
    };
    let partial_cov = CoverageObserver::new();
    Campaign::new(&c)
        .faults(faults)
        .drop_after_detection(true)
        .observer(&observer)
        .coverage(&partial_cov)
        .cancel(&token)
        .run()
        .expect("cancelled campaign");
    let partial = partial_cov.latest().expect("prefix map");
    assert!(partial.cancelled, "token must cancel the run");
    let k = partial.records.len();
    assert!(
        k < full.records.len(),
        "cancellation must stop before the end ({k} of {})",
        full.records.len()
    );
    assert_eq!(
        partial.records[..],
        full.records[..k],
        "prefix map must be bit-identical to the uncancelled prefix"
    );
    assert_eq!(partial.total_faults, full.total_faults);
}
