//! Property-based hardening of the `netlist::text` parser: random valid
//! circuits round-trip exactly, and arbitrary mutations of valid text —
//! the classic way hand-edited netlist files go wrong — always produce a
//! typed `TextError` or a valid circuit, never a panic.

use proptest::prelude::*;
use scal::netlist::{Circuit, GateKind};

fn from_text(text: &str) -> Result<Circuit, scal::netlist::TextError> {
    Circuit::from_text(text)
}

const KINDS: [GateKind; 10] = [
    GateKind::Buf,
    GateKind::Not,
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Minority,
    GateKind::Majority,
];

/// A recipe for one random DAG circuit: per-gate (kind index, fanin picks).
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    gates: Vec<(usize, Vec<usize>)>,
    outputs: Vec<usize>,
}

fn build(recipe: &Recipe) -> Circuit {
    let mut c = Circuit::new();
    let mut nodes = Vec::new();
    for i in 0..recipe.inputs {
        nodes.push(c.input(format!("i{i}")));
    }
    for (kind_ix, picks) in &recipe.gates {
        let kind = KINDS[kind_ix % KINDS.len()];
        // Respect each kind's arity constraints: 1 input for Buf/Not, an
        // odd count ≥ 3 for the threshold modules.
        let wanted = match kind {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Minority | GateKind::Majority => 3,
            _ => 1 + picks.len() % 3,
        };
        let fanins: Vec<_> = (0..wanted)
            .map(|k| nodes[picks[k % picks.len()] % nodes.len()])
            .collect();
        nodes.push(c.gate(kind, &fanins));
    }
    for (ord, pick) in recipe.outputs.iter().enumerate() {
        c.mark_output(format!("o{ord}"), nodes[pick % nodes.len()]);
    }
    c
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        1usize..5,
        prop::collection::vec(
            (0usize..KINDS.len(), prop::collection::vec(0usize..64, 3)),
            1..12,
        ),
        prop::collection::vec(0usize..64, 1..4),
    )
        .prop_map(|(inputs, gates, outputs)| Recipe {
            inputs,
            gates,
            outputs,
        })
}

/// One text mutation: (what, position seed, payload byte).
#[derive(Debug, Clone, Copy)]
enum Edit {
    Replace(usize, u8),
    Insert(usize, u8),
    Delete(usize),
    Truncate(usize),
    DuplicateLine(usize),
    SwapLines(usize, usize),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (any::<usize>(), any::<u8>()).prop_map(|(p, b)| Edit::Replace(p, b)),
        (any::<usize>(), any::<u8>()).prop_map(|(p, b)| Edit::Insert(p, b)),
        any::<usize>().prop_map(Edit::Delete),
        any::<usize>().prop_map(Edit::Truncate),
        any::<usize>().prop_map(Edit::DuplicateLine),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Edit::SwapLines(a, b)),
    ]
}

fn apply(text: &str, edit: Edit) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match edit {
        Edit::Replace(p, b) if !bytes.is_empty() => {
            let at = p % bytes.len();
            bytes[at] = b;
        }
        Edit::Replace(..) => {}
        Edit::Insert(p, b) => {
            let at = p % (bytes.len() + 1);
            bytes.insert(at, b);
        }
        Edit::Delete(p) if !bytes.is_empty() => {
            let at = p % bytes.len();
            bytes.remove(at);
        }
        Edit::Delete(_) => {}
        Edit::Truncate(p) if !bytes.is_empty() => bytes.truncate(p % bytes.len()),
        Edit::Truncate(_) => {}
        Edit::DuplicateLine(p) => {
            let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
            if !lines.is_empty() {
                let at = p % lines.len();
                lines.insert(at, lines[at]);
            }
            bytes = lines.join(&b'\n');
        }
        Edit::SwapLines(a, b) => {
            let mut lines: Vec<&[u8]> = bytes.split(|&x| x == b'\n').collect();
            if !lines.is_empty() {
                let (a, b) = (a % lines.len(), b % lines.len());
                lines.swap(a, b);
            }
            bytes = lines.join(&b'\n');
        }
    }
    // Mutations can split UTF-8 sequences; the parser must survive that
    // too, so feed it back lossily (all valid netlist text is ASCII).
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every generated circuit prints to text that parses back to a
    /// circuit printing identically — `to_text ∘ from_text` is the
    /// identity on the printer's image.
    #[test]
    fn valid_circuits_round_trip(recipe in arb_recipe()) {
        let circuit = build(&recipe);
        let text = circuit.to_text();
        let reparsed = from_text(&text).expect("printer output must parse");
        prop_assert_eq!(reparsed.to_text(), text);
    }

    /// A burst of arbitrary edits to valid text never panics the parser,
    /// and whatever it accepts must itself round-trip cleanly.
    #[test]
    fn mutated_text_never_panics(
        recipe in arb_recipe(),
        edits in prop::collection::vec(arb_edit(), 1..8),
    ) {
        let mut text = build(&recipe).to_text();
        for edit in edits {
            text = apply(&text, edit);
        }
        if let Ok(circuit) = from_text(&text) {
            let reprinted = circuit.to_text();
            let again = from_text(&reprinted).expect("accepted text must reprint parseably");
            prop_assert_eq!(again.to_text(), reprinted);
        }
    }

    /// Pure noise (not derived from any valid netlist) is also safe.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = from_text(&String::from_utf8_lossy(&bytes));
    }
}
