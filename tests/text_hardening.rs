//! Property-based hardening of the netlist interchange parsers: random
//! valid circuits — gates, constants, flip-flops, exotic names — round-trip
//! exactly through every [`NetlistFormat`], and arbitrary mutations of
//! valid files — the classic way hand-edited netlists go wrong — always
//! produce a typed error or a valid circuit, never a panic.

use proptest::prelude::*;
use scal::netlist::{circuit_eq, Circuit, GateKind, IoError, NetlistFormat};

const FORMATS: [NetlistFormat; 3] = [
    NetlistFormat::ScalText,
    NetlistFormat::Verilog,
    NetlistFormat::Bench,
];

fn read(text: &str, format: NetlistFormat) -> Result<Circuit, IoError> {
    Circuit::read(text, format)
}

const KINDS: [GateKind; 10] = [
    GateKind::Buf,
    GateKind::Not,
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Minority,
    GateKind::Majority,
];

/// A recipe for one random circuit: constants, flip-flops (init, driver
/// pick), per-gate (kind index, fanin picks), extra node names, outputs.
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    consts: Vec<bool>,
    dffs: Vec<(bool, usize)>,
    gates: Vec<(usize, Vec<usize>)>,
    names: Vec<(usize, String)>,
    outputs: Vec<usize>,
}

fn build(recipe: &Recipe) -> Circuit {
    let mut c = Circuit::new();
    let mut nodes = Vec::new();
    for i in 0..recipe.inputs {
        nodes.push(c.input(format!("i{i}")));
    }
    for &value in &recipe.consts {
        nodes.push(c.constant(value));
    }
    for &(init, _) in &recipe.dffs {
        nodes.push(c.dff(init));
    }
    for (kind_ix, picks) in &recipe.gates {
        let kind = KINDS[kind_ix % KINDS.len()];
        // Respect each kind's arity constraints: 1 input for Buf/Not, an
        // odd count ≥ 3 for the threshold modules.
        let wanted = match kind {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Minority | GateKind::Majority => 3,
            _ => 1 + picks.len() % 3,
        };
        let fanins: Vec<_> = (0..wanted)
            .map(|k| nodes[picks[k % picks.len()] % nodes.len()])
            .collect();
        nodes.push(c.gate(kind, &fanins));
    }
    // Flip-flop drivers can be any node, forward references included.
    for (k, &(_, driver)) in recipe.dffs.iter().enumerate() {
        let ff = nodes[recipe.inputs + recipe.consts.len() + k];
        c.connect_dff(ff, nodes[driver % nodes.len()]);
    }
    for (pick, name) in &recipe.names {
        c.set_name(nodes[pick % nodes.len()], name);
    }
    for (ord, pick) in recipe.outputs.iter().enumerate() {
        c.mark_output(format!("o{ord}"), nodes[pick % nodes.len()]);
    }
    c
}

/// Node names stressing the fidelity side channels: spaces and dots force
/// the bench `#@name` directive and the Verilog `scal_name` attribute.
fn arb_name() -> impl Strategy<Value = String> {
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    (
        0usize..4,
        0usize..26,
        prop::collection::vec(0usize..TAIL.len(), 0..6),
    )
        .prop_map(|(flavour, head, tail)| {
            let head = (b'a' + head as u8) as char;
            let tail: String = tail.iter().map(|&i| TAIL[i] as char).collect();
            match flavour {
                // Plain identifier — representable as a net/signal name.
                0 => format!("{head}{tail}"),
                // Interior space ("line 20"-style) — side channel only.
                1 if !tail.is_empty() => format!("{head} {tail}"),
                1 => head.to_string(),
                // Canonical-looking N<digits> — must NOT claim that signal.
                2 => format!("N{}", tail.len()),
                // Dotted hierarchical name — side channel only.
                _ => format!("{head}.{tail}"),
            }
        })
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        (
            1usize..5,
            prop::collection::vec(any::<bool>(), 0..3),
            prop::collection::vec((any::<bool>(), 0usize..64), 0..3),
        ),
        (
            prop::collection::vec(
                (0usize..KINDS.len(), prop::collection::vec(0usize..64, 3)),
                1..12,
            ),
            prop::collection::vec((0usize..64, arb_name()), 0..4),
            prop::collection::vec(0usize..64, 1..4),
        ),
    )
        .prop_map(|((inputs, consts, dffs), (gates, names, outputs))| Recipe {
            inputs,
            consts,
            dffs,
            gates,
            names,
            outputs,
        })
}

/// One text mutation: (what, position seed, payload byte).
#[derive(Debug, Clone, Copy)]
enum Edit {
    Replace(usize, u8),
    Insert(usize, u8),
    Delete(usize),
    Truncate(usize),
    DuplicateLine(usize),
    SwapLines(usize, usize),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (any::<usize>(), any::<u8>()).prop_map(|(p, b)| Edit::Replace(p, b)),
        (any::<usize>(), any::<u8>()).prop_map(|(p, b)| Edit::Insert(p, b)),
        any::<usize>().prop_map(Edit::Delete),
        any::<usize>().prop_map(Edit::Truncate),
        any::<usize>().prop_map(Edit::DuplicateLine),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Edit::SwapLines(a, b)),
    ]
}

fn apply(text: &str, edit: Edit) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match edit {
        Edit::Replace(p, b) if !bytes.is_empty() => {
            let at = p % bytes.len();
            bytes[at] = b;
        }
        Edit::Replace(..) => {}
        Edit::Insert(p, b) => {
            let at = p % (bytes.len() + 1);
            bytes.insert(at, b);
        }
        Edit::Delete(p) if !bytes.is_empty() => {
            let at = p % bytes.len();
            bytes.remove(at);
        }
        Edit::Delete(_) => {}
        Edit::Truncate(p) if !bytes.is_empty() => bytes.truncate(p % bytes.len()),
        Edit::Truncate(_) => {}
        Edit::DuplicateLine(p) => {
            let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
            if !lines.is_empty() {
                let at = p % lines.len();
                lines.insert(at, lines[at]);
            }
            bytes = lines.join(&b'\n');
        }
        Edit::SwapLines(a, b) => {
            let mut lines: Vec<&[u8]> = bytes.split(|&x| x == b'\n').collect();
            if !lines.is_empty() {
                let (a, b) = (a % lines.len(), b % lines.len());
                lines.swap(a, b);
            }
            bytes = lines.join(&b'\n');
        }
    }
    // Mutations can split UTF-8 sequences; the parsers must survive that
    // too, so feed it back lossily (all valid netlist text is ASCII).
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every generated circuit prints, in every format, to text that
    /// parses back to the same circuit and reprints bit-identically —
    /// `write ∘ read` is the identity on each printer's image.
    #[test]
    fn valid_circuits_round_trip(recipe in arb_recipe()) {
        let circuit = build(&recipe);
        for format in FORMATS {
            let text = circuit.write_string(format);
            let reparsed = read(&text, format)
                .unwrap_or_else(|e| panic!("{} output must parse: {e}\n{text}", format.name()));
            prop_assert!(
                circuit_eq(&circuit, &reparsed).is_ok(),
                "{}: {:?}",
                format.name(),
                circuit_eq(&circuit, &reparsed)
            );
            prop_assert_eq!(reparsed.write_string(format), text, "{}", format.name());
        }
    }

    /// A burst of arbitrary edits to a valid file never panics any parser,
    /// and whatever a parser accepts must itself round-trip cleanly.
    #[test]
    fn mutated_text_never_panics(
        recipe in arb_recipe(),
        edits in prop::collection::vec(arb_edit(), 1..8),
    ) {
        let circuit = build(&recipe);
        for format in FORMATS {
            let mut text = circuit.write_string(format);
            for &edit in &edits {
                text = apply(&text, edit);
            }
            if let Ok(parsed) = read(&text, format) {
                let reprinted = parsed.write_string(format);
                let again = read(&reprinted, format)
                    .expect("accepted text must reprint parseably");
                prop_assert_eq!(again.write_string(format), reprinted, "{}", format.name());
            }
        }
    }

    /// Pure noise (not derived from any valid netlist) is also safe, in
    /// every format and through the content sniffer.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        for format in FORMATS {
            let _ = read(&text, format);
        }
        let _ = read(&text, NetlistFormat::sniff(&text));
    }
}
