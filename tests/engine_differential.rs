//! Engine-vs-scalar differential coverage: the compiled `scal-engine`
//! campaign must be bit-identical — same pairs, same order, same flags — to
//! the original graph-walking scalar campaign on every canonical circuit of
//! the reproduction, and on randomly generated alternating networks.
//! Cone-restricted evaluation (`EvalMode::Cone`) is held to the same bar
//! against full evaluation, across thread counts, fault dropping, the
//! streaming golden fallback, cancellation, and sequential replay.

use proptest::prelude::*;
use scal::core::{dualize_synthesized, paper};
use scal::engine::{CompiledCircuit, CompiledSim, EvalMode};
use scal::faults::{enumerate_faults, Campaign};
use scal::netlist::{Circuit, Sim};

fn all_paper_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("self_dual_adder", paper::self_dual_adder()),
        ("ripple_adder_2", paper::ripple_adder(2)),
        ("fig3_4", paper::fig3_4().circuit),
        ("fig3_7", paper::fig3_7().circuit),
        ("fig3_1_example", paper::fig3_1_example().0),
        ("kohavi", scal::seq::kohavi::kohavi_circuit()),
        ("reynolds", scal::seq::kohavi::reynolds_circuit().circuit),
        (
            "translator",
            scal::seq::kohavi::translator_circuit().circuit,
        ),
        ("alpt_4", scal::seq::alpt(4)),
        ("palt_4", scal::seq::palt(4)),
        ("checker_8", scal::checkers::two_rail::reynolds_checker(8)),
        ("minority_direct", scal::minority::fig6_2_example().direct),
    ]
}

fn is_alternating(c: &Circuit) -> bool {
    c.output_tts().iter().all(scal::logic::Tt::is_self_dual)
}

/// Eval mode for the engine side of the engine-vs-scalar differentials.
/// CI sets `SCAL_EVAL_MODE=full|cone` to run the suite once per mode;
/// unset runs the default (cone).
fn mode_under_test() -> EvalMode {
    match std::env::var("SCAL_EVAL_MODE") {
        Ok(s) => s.parse().expect("SCAL_EVAL_MODE must be full|cone"),
        Err(_) => EvalMode::default(),
    }
}

/// Backend for the sequential campaigns under differential test. CI sets
/// `SCAL_SEQ_BACKEND=packed|scalar` to run the suite once per backend;
/// unset runs the default (packed).
fn seq_backend_under_test() -> scal::seq::SeqBackend {
    match std::env::var("SCAL_SEQ_BACKEND") {
        Ok(s) => s
            .parse()
            .expect("SCAL_SEQ_BACKEND must be packed|scalar|graph"),
        Err(_) => scal::seq::SeqBackend::default(),
    }
}

/// Every combinational alternating paper circuit: full collapsed fault
/// universe through both campaigns, results compared including ordering.
#[test]
fn engine_campaign_matches_scalar_on_paper_circuits() {
    let mut checked = 0;
    for (name, c) in all_paper_circuits() {
        if c.is_sequential() || c.inputs().len() > 12 || !is_alternating(&c) {
            continue;
        }
        let faults = enumerate_faults(&c);
        let engine = Campaign::new(&c)
            .faults(faults.clone())
            .eval_mode(mode_under_test())
            .run()
            .expect("engine campaign")
            .results;
        let scalar = Campaign::new(&c)
            .faults(faults)
            .scalar()
            .run()
            .expect("scalar campaign")
            .results;
        assert_eq!(engine.len(), scalar.len(), "{name}: result count");
        for (e, s) in engine.iter().zip(&scalar) {
            assert_eq!(e, s, "{name}: fault {:?}", e.fault);
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "too few campaign-eligible circuits: {checked}"
    );
}

/// Attaching an observer must not perturb a campaign: the observed run's
/// results are bit-identical to the unobserved run's on every eligible
/// circuit, and events actually flow.
#[test]
fn observed_campaign_is_bit_identical_to_unobserved() {
    use scal::obs::CollectObserver;
    for (name, c) in all_paper_circuits() {
        if c.is_sequential() || c.inputs().len() > 12 || !is_alternating(&c) {
            continue;
        }
        let faults = enumerate_faults(&c);
        let bare = Campaign::new(&c)
            .faults(faults.clone())
            .eval_mode(mode_under_test())
            .run()
            .expect("campaign")
            .results;
        let collect = CollectObserver::default();
        let observed = Campaign::new(&c)
            .faults(faults)
            .eval_mode(mode_under_test())
            .observer(&collect)
            .run()
            .expect("campaign");
        assert_eq!(bare, observed.results, "{name}: observer changed results");
        assert!(!collect.events().is_empty(), "{name}: no events flowed");
    }
}

/// Sequential (and non-alternating) paper circuits: the compiled simulator
/// must track the graph simulator step-for-step under every collapsed fault.
#[test]
fn compiled_sim_matches_graph_sim_on_paper_circuits() {
    for (name, c) in all_paper_circuits() {
        let n = c.inputs().len();
        if n > 12 {
            continue;
        }
        let compiled = CompiledCircuit::compile(&c);
        let drive: Vec<Vec<bool>> = (0..16u32)
            .map(|step| {
                (0..n)
                    .map(|i| (step.wrapping_mul(5).wrapping_add(i as u32 * 3)) % 4 < 2)
                    .collect()
            })
            .collect();
        for fault in enumerate_faults(&c) {
            let mut fast = CompiledSim::new(&compiled);
            fast.attach(&[fault.to_override()]);
            let mut slow = Sim::new(&c);
            slow.attach(fault.to_override());
            for (step, ins) in drive.iter().enumerate() {
                assert_eq!(
                    fast.step(ins),
                    slow.step(ins),
                    "{name}: fault {fault:?} step {step}"
                );
            }
        }
    }
}

/// Cone-restricted evaluation is a pure optimisation: on every
/// campaign-eligible paper circuit it is bit-identical to full evaluation
/// across thread counts and fault dropping, including the streaming
/// fallback when the golden slot cache cannot fit.
#[test]
fn cone_eval_matches_full_on_paper_circuits() {
    use scal::engine::EngineConfig;
    let mut checked = 0;
    for (name, c) in all_paper_circuits() {
        if c.is_sequential() || c.inputs().len() > 12 || !is_alternating(&c) {
            continue;
        }
        let faults = enumerate_faults(&c);
        for threads in [1, 2, 4] {
            for drop in [false, true] {
                let full = Campaign::new(&c)
                    .faults(faults.clone())
                    .threads(threads)
                    .drop_after_detection(drop)
                    .eval_mode(EvalMode::Full)
                    .run()
                    .expect("full campaign")
                    .results;
                let cone = Campaign::new(&c)
                    .faults(faults.clone())
                    .threads(threads)
                    .drop_after_detection(drop)
                    .run()
                    .expect("cone campaign")
                    .results;
                assert_eq!(full, cone, "{name}: threads {threads}, drop {drop}");
            }
        }
        // A 1-byte cache budget cannot hold any batch, forcing per-batch
        // golden streaming — still bit-identical to full evaluation.
        let config = EngineConfig::builder()
            .threads(1)
            .golden_cache_bytes(1)
            .build()
            .expect("valid config");
        let streamed = Campaign::new(&c)
            .faults(faults.clone())
            .config(config)
            .run()
            .expect("streaming cone campaign")
            .results;
        let full = Campaign::new(&c)
            .faults(faults)
            .threads(1)
            .eval_mode(EvalMode::Full)
            .run()
            .expect("full campaign")
            .results;
        assert_eq!(full, streamed, "{name}: streaming fallback");
        checked += 1;
    }
    assert!(
        checked >= 4,
        "too few campaign-eligible circuits: {checked}"
    );
}

/// Wide evaluation words are a pure optimisation: every width is
/// bit-identical to the scalar `u64` path on every campaign-eligible paper
/// circuit, across thread counts, fault dropping, and the eval mode under
/// test — results, aggregate pair counts, and drop totals alike.
#[test]
fn wide_word_widths_match_scalar_on_paper_circuits() {
    let mut checked = 0;
    for (name, c) in all_paper_circuits() {
        if c.is_sequential() || c.inputs().len() > 12 || !is_alternating(&c) {
            continue;
        }
        let faults = enumerate_faults(&c);
        for threads in [1, 4] {
            for drop in [false, true] {
                let scalar = Campaign::new(&c)
                    .faults(faults.clone())
                    .threads(threads)
                    .drop_after_detection(drop)
                    .eval_mode(mode_under_test())
                    .word_width(1)
                    .run()
                    .expect("scalar-width campaign");
                for width in [4usize, 8] {
                    let wide = Campaign::new(&c)
                        .faults(faults.clone())
                        .threads(threads)
                        .drop_after_detection(drop)
                        .eval_mode(mode_under_test())
                        .word_width(width)
                        .run()
                        .expect("wide campaign");
                    assert_eq!(
                        scalar.results, wide.results,
                        "{name}: W={width}, threads {threads}, drop {drop}"
                    );
                    assert_eq!(
                        scalar.stats.pairs_evaluated, wide.stats.pairs_evaluated,
                        "{name}: W={width} pair accounting"
                    );
                    assert_eq!(
                        scalar.stats.faults_dropped, wide.stats.faults_dropped,
                        "{name}: W={width} drop accounting"
                    );
                }
            }
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "too few campaign-eligible circuits: {checked}"
    );
}

/// Fault-per-lane packing on pair campaigns (the 2-D configuration) is
/// bit-identical to the unpacked path at every width, with and without
/// fault dropping, pair accounting included.
#[test]
fn fault_packed_campaign_matches_unpacked_on_paper_circuits() {
    let mut checked = 0;
    for (name, c) in all_paper_circuits() {
        if c.is_sequential() || c.inputs().len() > 12 || !is_alternating(&c) {
            continue;
        }
        let faults = enumerate_faults(&c);
        for drop in [false, true] {
            let plain = Campaign::new(&c)
                .faults(faults.clone())
                .threads(1)
                .drop_after_detection(drop)
                .word_width(1)
                .run()
                .expect("unpacked campaign");
            for width in [1usize, 8] {
                let packed = Campaign::new(&c)
                    .faults(faults.clone())
                    .threads(1)
                    .drop_after_detection(drop)
                    .word_width(width)
                    .fault_packing(true)
                    .run()
                    .expect("fault-packed campaign");
                assert_eq!(
                    plain.results, packed.results,
                    "{name}: packed W={width}, drop {drop}"
                );
                assert_eq!(
                    plain.stats.pairs_evaluated, packed.stats.pairs_evaluated,
                    "{name}: packed W={width} pair accounting"
                );
                assert_eq!(
                    plain.stats.faults_dropped, packed.stats.faults_dropped,
                    "{name}: packed W={width} drop accounting"
                );
            }
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "too few campaign-eligible circuits: {checked}"
    );
}

/// A cancelled fault-packed campaign returns a whole-chunk fault-ordered
/// prefix that is bit-identical to the same prefix of an uncancelled
/// unpacked run.
#[test]
fn cancelled_fault_packed_prefix_matches_unpacked_run() {
    use scal::obs::{CampaignEvent, CampaignObserver, CancelToken};
    struct CancelAfter<'a> {
        token: &'a CancelToken,
        after: usize,
    }
    impl CampaignObserver for CancelAfter<'_> {
        fn on_event(&self, event: &CampaignEvent) {
            if let CampaignEvent::Progress { done, .. } = event {
                if *done >= self.after {
                    self.token.cancel();
                }
            }
        }
    }
    let c = paper::ripple_adder(4);
    let faults = enumerate_faults(&c);
    assert!(faults.len() > 63, "want multiple chunks: {}", faults.len());
    let full = Campaign::new(&c)
        .faults(faults.clone())
        .threads(1)
        .word_width(1)
        .run()
        .expect("unpacked campaign")
        .results;
    let token = CancelToken::new();
    let observer = CancelAfter {
        token: &token,
        after: 1,
    };
    // Collapsing is pinned off: the chunk-granularity assertion below
    // counts original faults, which under collapsing no longer arrive in
    // 63-fault chunks (representative chunks expand to ragged prefixes).
    let partial = Campaign::new(&c)
        .faults(faults)
        .threads(1)
        .fault_packing(true)
        .fault_collapse(false)
        .observer(&observer)
        .cancel(&token)
        .run()
        .expect("cancelled fault-packed campaign");
    assert!(partial.cancelled, "token must cancel the run");
    let k = partial.results.len();
    assert!(k > 0 && k < full.len(), "must stop early ({k})");
    assert_eq!(k % 63, 0, "fault-packed cancellation is chunk-granular");
    assert_eq!(
        partial.results[..],
        full[..k],
        "packed prefix must match the unpacked run"
    );
}

/// Sequential campaigns: cone replay over the cached golden trace is
/// bit-identical to full per-fault re-simulation on both Chapter-4 SCAL
/// designs, across thread counts.
#[test]
fn seq_cone_eval_matches_full_on_kohavi_designs() {
    use scal::seq::SeqBackend;
    let m = scal::seq::kohavi::kohavi_0101();
    let words: Vec<Vec<bool>> = [0u32, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0]
        .iter()
        .map(|&s| vec![s == 1])
        .collect();
    for machine in [
        scal::seq::dual_ff_machine(&m),
        scal::seq::code_conversion_machine(&m),
    ] {
        for threads in [1, 2, 4] {
            let full = scal::seq::Campaign::new(&machine, &words)
                .threads(threads)
                .backend(SeqBackend::Scalar)
                .eval_mode(EvalMode::Full)
                .run()
                .expect("full seq campaign");
            let cone = scal::seq::Campaign::new(&machine, &words)
                .threads(threads)
                .backend(SeqBackend::Scalar)
                .run()
                .expect("cone seq campaign");
            assert_eq!(full, cone, "{}: threads {threads}", machine.design);
        }
    }
}

/// The Chapter-4 sequential machines and the 4-bit up/down counter under
/// both SCAL conversions.
fn seq_differential_machines() -> Vec<scal::seq::ScalMachine> {
    let m = scal::seq::kohavi::kohavi_0101();
    let counter = scal::seq::counters::up_down_counter(4);
    vec![
        scal::seq::dual_ff_machine(&m),
        scal::seq::code_conversion_machine(&m),
        scal::seq::dual_ff_machine(&counter),
        scal::seq::code_conversion_machine(&counter),
    ]
}

/// A driven word sequence of `width`-bit words exercising every machine.
fn seq_drive(width: usize) -> Vec<Vec<bool>> {
    (0..14u32)
        .map(|step| {
            (0..width)
                .map(|i| (step.wrapping_mul(7).wrapping_add(i as u32 * 5)) % 4 < 2)
                .collect()
        })
        .collect()
}

/// The packed fault-per-lane backend is bit-identical to the per-fault
/// scalar backend — outcomes, `first_detected` words, and coverage maps —
/// on every sequential design, across thread counts and both scalar-oracle
/// eval modes. (Sequential campaigns have no fault-dropping knob — a
/// classified fault inherently stops consuming words — so the scalar
/// oracle's eval-mode axis stands in for the pair campaign's drop axis.)
#[test]
fn seq_packed_matches_scalar_backend() {
    use scal::obs::CoverageObserver;
    use scal::seq::SeqBackend;
    for machine in seq_differential_machines() {
        let words = seq_drive(machine.circuit.inputs().len() - 1);
        for threads in [1, 2, 4] {
            for oracle_mode in [EvalMode::Full, EvalMode::Cone] {
                let packed_cov = CoverageObserver::new();
                let packed = scal::seq::Campaign::new(&machine, &words)
                    .threads(threads)
                    .backend(seq_backend_under_test())
                    .coverage(&packed_cov)
                    .run()
                    .expect("packed seq campaign");
                let scalar_cov = CoverageObserver::new();
                let scalar = scal::seq::Campaign::new(&machine, &words)
                    .threads(threads)
                    .backend(SeqBackend::Scalar)
                    .eval_mode(oracle_mode)
                    .coverage(&scalar_cov)
                    .run()
                    .expect("scalar seq campaign");
                assert_eq!(
                    packed, scalar,
                    "{}: threads {threads}, oracle {oracle_mode}",
                    machine.design
                );
                for ((p, s), (fault, _)) in packed_cov
                    .latest()
                    .expect("packed map")
                    .records
                    .iter()
                    .zip(&scalar_cov.latest().expect("scalar map").records)
                    .zip(&packed.outcomes)
                {
                    assert_eq!(p.first_detected, s.first_detected, "{fault:?}");
                    assert_eq!(p.detected, s.detected, "{fault:?}");
                    assert_eq!(p.violations, s.violations, "{fault:?}");
                    assert_eq!(p.observable, s.observable, "{fault:?}");
                    assert_eq!(p.pairs, s.pairs, "{fault:?}");
                    assert_eq!(p.label, s.label, "{fault:?}");
                }
            }
        }
    }
}

/// A cancelled packed campaign's fault-ordered prefix is bit-identical to
/// the same prefix of an uncancelled scalar-backend run; packed
/// cancellation lands on a whole-batch boundary.
#[test]
fn cancelled_packed_seq_prefix_matches_scalar_run() {
    use scal::obs::{CampaignEvent, CampaignObserver, CancelToken};
    use scal::seq::SeqBackend;
    struct CancelAfter<'a> {
        token: &'a CancelToken,
        after: usize,
    }
    impl CampaignObserver for CancelAfter<'_> {
        fn on_event(&self, event: &CampaignEvent) {
            if let CampaignEvent::Progress { done, .. } = event {
                if *done >= self.after {
                    self.token.cancel();
                }
            }
        }
    }
    let m = scal::seq::kohavi::kohavi_0101();
    let machine = scal::seq::code_conversion_machine(&m);
    let words = seq_drive(machine.circuit.inputs().len() - 1);
    let total = machine.checkable_faults().len();
    assert!(total > 63, "want multiple packed batches, got {total}");
    let full = scal::seq::Campaign::new(&machine, &words)
        .threads(1)
        .backend(SeqBackend::Scalar)
        .run()
        .expect("scalar seq campaign");
    let token = CancelToken::new();
    let observer = CancelAfter {
        token: &token,
        after: 1,
    };
    // Width 1 pins the 63-fault batch geometry the boundary assertion
    // below relies on; wider words pack whole batches into one word.
    // Collapsing is pinned off: the boundary assertion counts original
    // faults, which under collapsing no longer arrive in 63-fault batches.
    let partial = scal::seq::Campaign::new(&machine, &words)
        .threads(1)
        .word_width(1)
        .fault_collapse(false)
        .observer(&observer)
        .cancel(&token)
        .run()
        .expect("cancelled packed campaign");
    assert!(partial.cancelled, "token must cancel the run");
    let k = partial.outcomes.len();
    assert!(k > 0 && k < total, "cancellation must stop early ({k})");
    assert_eq!(k % 63, 0, "packed cancellation lands on a batch boundary");
    assert_eq!(
        partial.outcomes[..],
        full.outcomes[..k],
        "packed prefix must match the scalar run"
    );
}

/// A cancelled cone campaign's fault-ordered prefix is bit-identical to the
/// same prefix of an uncancelled *full*-mode run — cancellation and eval
/// mode compose without perturbing results.
#[test]
fn cancelled_cone_prefix_matches_full_run() {
    use scal::obs::{CampaignEvent, CampaignObserver, CancelToken};
    struct CancelAfter<'a> {
        token: &'a CancelToken,
        after: usize,
    }
    impl CampaignObserver for CancelAfter<'_> {
        fn on_event(&self, event: &CampaignEvent) {
            if let CampaignEvent::Progress { done, .. } = event {
                if *done >= self.after {
                    self.token.cancel();
                }
            }
        }
    }
    let c = paper::ripple_adder(4);
    let faults = enumerate_faults(&c);
    let full = Campaign::new(&c)
        .faults(faults.clone())
        .drop_after_detection(true)
        .eval_mode(EvalMode::Full)
        .run()
        .expect("full campaign")
        .results;
    let token = CancelToken::new();
    let observer = CancelAfter {
        token: &token,
        after: 5,
    };
    let partial = Campaign::new(&c)
        .faults(faults)
        .drop_after_detection(true)
        .observer(&observer)
        .cancel(&token)
        .run()
        .expect("cancelled cone campaign");
    assert!(partial.cancelled, "token must cancel the run");
    let k = partial.results.len();
    assert!(k < full.len(), "cancellation must stop early ({k})");
    assert_eq!(
        partial.results[..],
        full[..k],
        "cone prefix must match the full-mode run"
    );
}

/// Builds a random combinational circuit from a gate recipe, then makes it
/// alternating via the paper's synthesized self-dual extension.
fn random_alternating(n_inputs: usize, recipe: &[(u8, u8, u8)]) -> Circuit {
    let mut c = Circuit::new();
    let mut nodes = Vec::new();
    for i in 0..n_inputs {
        nodes.push(c.input(format!("x{i}")));
    }
    for &(kind, a, b) in recipe {
        let fa = nodes[a as usize % nodes.len()];
        let fb = nodes[b as usize % nodes.len()];
        let g = match kind % 6 {
            0 => c.and(&[fa, fb]),
            1 => c.or(&[fa, fb]),
            2 => c.nand(&[fa, fb]),
            3 => c.nor(&[fa, fb]),
            4 => c.xor(&[fa, fb]),
            _ => c.not(fa),
        };
        nodes.push(g);
    }
    c.mark_output("f", *nodes.last().expect("at least one node"));
    dualize_synthesized(&c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random alternating networks: engine and scalar campaigns agree on the
    /// full collapsed fault universe, ordering included.
    #[test]
    fn engine_campaign_matches_scalar_on_random_circuits(
        n_inputs in 2usize..4,
        recipe in proptest::collection::vec((0u8..6, 0u8..8, 0u8..8), 1..6),
    ) {
        let alt = random_alternating(n_inputs, &recipe);
        let faults = enumerate_faults(&alt);
        let engine = Campaign::new(&alt)
            .faults(faults.clone())
            .eval_mode(mode_under_test())
            .run()
            .expect("engine campaign")
            .results;
        let scalar = Campaign::new(&alt)
            .faults(faults)
            .scalar()
            .run()
            .expect("scalar campaign")
            .results;
        prop_assert_eq!(engine, scalar);
    }

    /// Random sequential circuits (no alternation requirement): compiled and
    /// graph simulators agree fault-free and under a stem fault.
    #[test]
    fn compiled_sim_matches_graph_sim_on_random_sequential(
        n_inputs in 1usize..3,
        n_dffs in 1usize..3,
        recipe in proptest::collection::vec((0u8..6, 0u8..8, 0u8..8), 1..6),
        drive in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 2), 4..10),
    ) {
        let mut c = Circuit::new();
        let mut nodes = Vec::new();
        for i in 0..n_inputs {
            nodes.push(c.input(format!("x{i}")));
        }
        let dffs: Vec<_> = (0..n_dffs).map(|i| c.dff(i % 2 == 0)).collect();
        nodes.extend(&dffs);
        for &(kind, a, b) in &recipe {
            let fa = nodes[a as usize % nodes.len()];
            let fb = nodes[b as usize % nodes.len()];
            let g = match kind % 6 {
                0 => c.and(&[fa, fb]),
                1 => c.or(&[fa, fb]),
                2 => c.nand(&[fa, fb]),
                3 => c.nor(&[fa, fb]),
                4 => c.xor(&[fa, fb]),
                _ => c.not(fa),
            };
            nodes.push(g);
        }
        let last = *nodes.last().expect("nodes");
        for (i, &q) in dffs.iter().enumerate() {
            c.connect_dff(q, if i == 0 { last } else { nodes[i % nodes.len()] });
        }
        c.mark_output("f", last);
        prop_assume!(c.validate().is_ok());

        let compiled = CompiledCircuit::compile(&c);
        for overrides in [vec![], vec![scal::netlist::Override {
            site: scal::netlist::Site::Stem(last),
            value: true,
        }]] {
            let mut fast = CompiledSim::new(&compiled);
            fast.attach(&overrides);
            let mut slow = Sim::new(&c);
            for ov in &overrides {
                slow.attach(*ov);
            }
            for ins in &drive {
                let w = &ins[..n_inputs];
                prop_assert_eq!(fast.step(w), slow.step(w));
            }
        }
    }
}
