//! Netlist interchange integration: every fixture of the reproduction and
//! every synthetic generator round-trips bit-identically through all three
//! formats (scal text, structural Verilog, ISCAS-style bench), `read_path`
//! auto-detects formats, and a ≥100k-gate generated design flows through
//! the whole pipeline — serialize, reparse, compile, fault campaign —
//! fast enough to prove the linear validate/topo passes.

use scal::core::paper;
use scal::netlist::synth::{self, SynthKind};
use scal::netlist::{assert_circuit_eq, Circuit, NetlistFormat};
use std::time::{Duration, Instant};

const FORMATS: [NetlistFormat; 3] = [
    NetlistFormat::ScalText,
    NetlistFormat::Verilog,
    NetlistFormat::Bench,
];

fn fixtures() -> Vec<(&'static str, Circuit)> {
    vec![
        ("fig3_4", paper::fig3_4().circuit),
        (
            "kohavi_codeconv",
            scal::seq::code_conversion_machine(&scal::seq::kohavi::kohavi_0101()).circuit,
        ),
        ("adder8", paper::ripple_adder(8)),
        ("cpu_adder", scal::system::Datapath::new().adder),
    ]
}

/// write → read → write is bit-stable and read reproduces the circuit.
fn check_round_trip(name: &str, circuit: &Circuit, format: NetlistFormat) {
    let text = circuit.write_string(format);
    let back =
        Circuit::read(&text, format).unwrap_or_else(|e| panic!("{name}/{}: {e}", format.name()));
    assert_circuit_eq(circuit, &back);
    assert_eq!(
        back.write_string(format),
        text,
        "{name}/{}: reprint drifted",
        format.name()
    );
}

#[test]
fn fixtures_round_trip_bit_identically_in_every_format() {
    for (name, circuit) in fixtures() {
        for format in FORMATS {
            check_round_trip(name, &circuit, format);
        }
    }
}

#[test]
fn seeded_synthetics_round_trip_in_every_format() {
    for kind in SynthKind::ALL {
        for seed in [1u64, 99] {
            let circuit = synth::generate(kind, 10_000, seed);
            circuit.validate().expect("generated circuits are valid");
            for format in FORMATS {
                check_round_trip(kind.name(), &circuit, format);
            }
        }
    }
}

#[test]
fn generators_are_seed_deterministic_across_serialization() {
    // Same (kind, size, seed) → byte-identical files; different seed →
    // different bytes for the randomized generator.
    let a = synth::generate(SynthKind::RandomSelfDual, 5_000, 7);
    let b = synth::generate(SynthKind::RandomSelfDual, 5_000, 7);
    let c = synth::generate(SynthKind::RandomSelfDual, 5_000, 8);
    for format in FORMATS {
        assert_eq!(a.write_string(format), b.write_string(format));
        assert_ne!(a.write_string(format), c.write_string(format));
    }
}

#[test]
fn read_path_autodetects_every_extension_and_sniffs_unknown_ones() {
    let dir = std::env::temp_dir().join(format!("scal_interchange_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let circuit = paper::ripple_adder(4);
    for (file, format) in [
        ("adder.scal", NetlistFormat::ScalText),
        ("adder.txt", NetlistFormat::ScalText),
        ("adder.v", NetlistFormat::Verilog),
        ("adder.bench", NetlistFormat::Bench),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, circuit.write_string(format)).expect("write fixture");
        let back = Circuit::read_path(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_circuit_eq(&circuit, &back);
    }
    // No recognized extension: content sniffing decides.
    for format in FORMATS {
        let path = dir.join(format!("sniffed_{}", format.name()));
        std::fs::write(&path, circuit.write_string(format)).expect("write fixture");
        let back =
            Circuit::read_path(&path).unwrap_or_else(|e| panic!("sniff {}: {e}", format.name()));
        assert_circuit_eq(&circuit, &back);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[allow(deprecated)]
fn deprecated_text_wrappers_stay_equivalent() {
    let circuit = paper::fig3_4().circuit;
    assert_eq!(
        circuit.to_text(),
        circuit.write_string(NetlistFormat::ScalText)
    );
    let back = Circuit::from_text(&circuit.to_text()).expect("wrapper parses");
    assert_circuit_eq(&circuit, &back);
}

#[test]
fn hundred_k_gate_design_flows_through_the_whole_pipeline() {
    let circuit = synth::generate(SynthKind::RandomSelfDual, 100_000, 42);
    assert!(
        circuit.len() >= 100_000,
        "generator undershot: {} nodes",
        circuit.len()
    );

    // The linear CSR passes must stay linear: on 100k nodes a quadratic
    // scan takes minutes even in release builds, so a generous wall-clock
    // bound still catches the regression reliably.
    let t = Instant::now();
    circuit.validate().expect("valid at 100k gates");
    let order = circuit.topo_order();
    assert_eq!(order.len(), circuit.len());
    let structural = t.elapsed();
    assert!(
        structural < Duration::from_secs(10),
        "validate + topo_order took {structural:?} on 100k nodes — quadratic scan regression?"
    );

    // All three formats survive the size and stay bit-identical.
    for format in FORMATS {
        check_round_trip("selfdual_100k", &circuit, format);
    }

    // The standard campaign builder compiles it and completes a truncated
    // fault sweep.
    let faults: Vec<_> = scal::faults::enumerate_faults(&circuit)
        .into_iter()
        .take(64)
        .collect();
    let report = scal::faults::Campaign::new(&circuit)
        .faults(faults)
        .threads(1)
        .run()
        .expect("100k-gate campaign runs");
    assert_eq!(report.results.len(), 64);
}
