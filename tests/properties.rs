//! Property-based tests (proptest) over the core invariants of the SCAL
//! theory: self-dualization, the self-checking theorems, translators, and
//! the minority-module conversion.

use proptest::prelude::*;
use scal::core::{dualize_synthesized, verify};
use scal::logic::{qm, self_dualize, Expr, Tt};
use scal::minority::convert_to_alternating;
use scal::netlist::Circuit;

fn arb_tt(nvars: usize) -> impl Strategy<Value = Tt> {
    prop::collection::vec(any::<bool>(), 1 << nvars)
        .prop_map(move |bits| Tt::from_fn(nvars, |m| bits[m as usize]))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(|v| Expr::Var(v.to_owned())),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            prop::collection::vec(inner, 2..4).prop_map(Expr::Xor),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Yamamoto's construction always yields a self-dual function whose
    /// φ = 0 restriction is the original (Theorem 2.1's enabler).
    #[test]
    fn self_dualize_is_self_dual_and_conservative(tt in arb_tt(4)) {
        let sd = self_dualize(&tt);
        prop_assert!(sd.is_self_dual());
        for m in 0..16u32 {
            prop_assert_eq!(sd.eval(m), tt.eval(m));
        }
    }

    /// Quine–McCluskey covers are exact and contain only prime implicants.
    #[test]
    fn qm_cover_is_exact(tt in arb_tt(4)) {
        let cover = qm::minimize(&tt, None);
        let realized = qm::cover_to_tt(4, &cover);
        prop_assert_eq!(&realized, &tt);
        let primes = qm::prime_implicants(&tt, None);
        for c in &cover {
            prop_assert!(primes.contains(c), "cover cube {c} is not prime");
        }
    }

    /// The dual is an involution and anti-monotone w.r.t. complement.
    #[test]
    fn dual_involution(tt in arb_tt(5)) {
        prop_assert_eq!(tt.dual().dual(), tt.clone());
        prop_assert_eq!(!&tt.dual(), (!&tt).dual().flip_inputs().flip_inputs());
    }

    /// Any single-output function, two-level self-dualized, verifies as a
    /// strict SCAL network (Yamamoto's theorem, end to end).
    #[test]
    fn two_level_self_dualization_is_scal(tt in arb_tt(3)) {
        // Skip degenerate constants whose dualization is just φ (still fine,
        // but the circuit degenerates to a wire), and functions vacuous in
        // some input (whose input-stem faults are unobservable by
        // definition — the paper's redundant-line caveat).
        prop_assume!(!tt.is_zero() && !tt.is_one());
        prop_assume!((0..3).all(|v| !tt.is_vacuous_in(v)));
        let mut c = Circuit::new();
        let inputs: Vec<_> = (0..3).map(|i| c.input(format!("x{i}"))).collect();
        // Build a (possibly sloppy) AND/OR realization; dualize re-synthesizes.
        let mut terms = Vec::new();
        for m in tt.minterms() {
            let lits: Vec<_> = (0..3)
                .map(|i| {
                    if (m >> i) & 1 == 1 {
                        inputs[i]
                    } else {
                        c.not(inputs[i])
                    }
                })
                .collect();
            terms.push(c.and(&lits));
        }
        let f = if terms.len() == 1 { terms[0] } else { c.or(&terms) };
        c.mark_output("f", f);

        let alt = dualize_synthesized(&c);
        // The clock stem is hardcore (and logically vacuous when the
        // function happens to be self-dual already), so exclude it from the
        // testability requirement; fault security must hold regardless.
        let full = verify(&alt).expect("verifiable");
        prop_assert!(full.fault_secure, "violations: {:?}", full.violations);
        let faults = scal::core::faults_excluding_clock(&alt, "phi");
        let verdict = scal::core::verify_with(&alt, &faults).expect("verifiable");
        prop_assert!(verdict.self_testing, "untested: {:?}", verdict.untested);
    }

    /// Random NAND networks convert to minority-module networks that are
    /// functionally identical in period 1, alternating, and self-checking.
    #[test]
    fn minority_conversion_is_sound(
        structure in prop::collection::vec((0usize..6, 0usize..6), 2..6)
    ) {
        let mut c = Circuit::new();
        let mut pool: Vec<_> = (0..3).map(|i| c.input(format!("x{i}"))).collect();
        for (i, j) in structure {
            let a = pool[i % pool.len()];
            let b = pool[j % pool.len()];
            let g = if a == b { c.nand(&[a]) } else { c.nand(&[a, b]) };
            pool.push(g);
        }
        let out = *pool.last().expect("nonempty");
        c.mark_output("f", out);

        let alt = convert_to_alternating(&c).expect("pure NAND network");
        let orig = c.output_tt(0);
        let tt = alt.output_tt(0);
        prop_assert!(tt.is_self_dual());
        for m in 0..8u32 {
            prop_assert_eq!(tt.eval(m), orig.eval(m));
        }
        // Campaign: every fault secure (all lines alternate).
        for r in scal::faults::Campaign::new(&alt).run().unwrap().results {
            prop_assert!(r.fault_secure(), "violation at {}", r.fault);
        }
    }

    /// The ALPT/PALT pair round-trips every word and flags every single-bit
    /// corruption, for word sizes 2–5 (odd sizes fold the clock in).
    #[test]
    fn translator_round_trip_and_coverage(n in 2usize..6, word in any::<u32>()) {
        use scal::netlist::Sim;
        let word = word & ((1 << n) - 1);
        let a = scal::seq::alpt(n);
        let p = scal::seq::palt(n);
        let mut sim = Sim::new(&a);
        let w: Vec<bool> = (0..n).map(|i| (word >> i) & 1 == 1).collect();
        let mut p1 = w.clone();
        p1.push(false);
        sim.step(&p1);
        let mut p2: Vec<bool> = w.iter().map(|&b| !b).collect();
        p2.push(true);
        sim.step(&p2);
        let stored: Vec<bool> = sim.state().to_vec();

        let read = |bits: &[bool]| -> (u32, bool) {
            let mut ok = true;
            let mut val = 0u32;
            for phi in [false, true] {
                let mut ins = bits.to_vec();
                ins.push(phi);
                let out = p.eval(&ins);
                if !phi {
                    for (i, &b) in out.iter().take(n).enumerate() {
                        val |= u32::from(b) << i;
                    }
                }
                ok &= out[n] != out[n + 1];
            }
            (val, ok)
        };
        let (val, ok) = read(&stored);
        prop_assert_eq!(val, word);
        prop_assert!(ok);
        for bit in 0..=n {
            let mut bad = stored.clone();
            bad[bit] = !bad[bit];
            let (_, ok) = read(&bad);
            prop_assert!(!ok, "bit {bit} corruption must be flagged");
        }
    }

    /// Structural soundness of Theorems 3.6–3.9: on random self-dualized
    /// networks, any line certified by conditions A–D also satisfies the
    /// exact condition E.
    #[test]
    fn structural_conditions_sound(tt in arb_tt(3)) {
        prop_assume!(!tt.is_zero() && !tt.is_one());
        let mut c = Circuit::new();
        let _: Vec<_> = (0..3).map(|i| c.input(format!("x{i}"))).collect();
        let c = {
            let mut base = Circuit::new();
            let xs: Vec<_> = (0..3).map(|i| base.input(format!("x{i}"))).collect();
            let mut inv = Vec::new();
            for &x in &xs {
                inv.push(base.not(x));
            }
            let mut terms = Vec::new();
            for m in tt.minterms() {
                let lits: Vec<_> = (0..3)
                    .map(|i| if (m >> i) & 1 == 1 { xs[i] } else { inv[i] })
                    .collect();
                terms.push(base.and(&lits));
            }
            let f = if terms.len() == 1 { terms[0] } else { base.or(&terms) };
            base.mark_output("f", f);
            dualize_synthesized(&base)
        };
        let report = scal::analysis::analyze(&c).expect("analyzable");
        for line in &report.lines {
            for oc in &line.outputs {
                if oc.a || oc.b || oc.c || oc.d {
                    prop_assert!(
                        oc.e,
                        "structural condition passed but E failed at {} output {}",
                        line.site,
                        oc.output
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is a semantic identity for expressions.
    #[test]
    fn expr_display_parse_round_trip(e in arb_expr()) {
        let printed = e.to_string();
        let parsed: Expr = printed.parse().expect("printed form parses");
        let order = ["a", "b", "c"];
        prop_assert_eq!(e.to_tt(&order).unwrap(), parsed.to_tt(&order).unwrap());
    }

    /// Building a circuit from an expression realizes the same function.
    #[test]
    fn expr_circuit_matches_truth_table(e in arb_expr()) {
        let circuit = Circuit::from_exprs(&[("f", &e)]).expect("buildable");
        let vars = e.vars();
        let order: Vec<&str> = vars.iter().map(String::as_str).collect();
        let want = e.to_tt(&order).unwrap();
        if order.is_empty() {
            // Constant expression: evaluate the 0-input circuit directly.
            let got = circuit.eval(&[]);
            prop_assert_eq!(got[0], want.eval(0));
        } else {
            prop_assert_eq!(circuit.output_tt(0), want);
        }
    }

    /// Netlist text serialization round-trips functionally.
    #[test]
    fn netlist_text_round_trip(e in arb_expr()) {
        use scal::netlist::NetlistFormat;
        let circuit = Circuit::from_exprs(&[("f", &e)]).expect("buildable");
        let text = circuit.write_string(NetlistFormat::ScalText);
        let back = Circuit::read(&text, NetlistFormat::ScalText).expect("parses");
        prop_assert_eq!(back.len(), circuit.len());
        if !circuit.inputs().is_empty() {
            prop_assert_eq!(back.output_tt(0), circuit.output_tt(0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomly generated small machines, converted by BOTH sequential SCAL
    /// designs, stay fault-secure over a driven sequence (the Chapter-4
    /// guarantee, fuzzed).
    #[test]
    fn random_machines_are_sequentially_fault_secure(
        transitions in prop::collection::vec((0usize..4, any::<bool>()), 8),
        drive in prop::collection::vec(0u32..2, 6)
    ) {
        use scal::seq::{Campaign, StateMachine};
        let mut m = StateMachine::new("fuzz", 4, 1, 1);
        for s in 0..4 {
            for i in 0..2 {
                let (next, out) = transitions[s * 2 + i];
                m.set(s, i as u32, next, &[out]);
            }
        }
        let words: Vec<Vec<bool>> = drive.iter().map(|&s| vec![s == 1]).collect();
        for machine in [
            scal::seq::dual_ff_machine(&m),
            scal::seq::code_conversion_machine(&m),
        ] {
            let campaign = Campaign::new(&machine, &words).run().unwrap();
            prop_assert!(
                campaign.fault_secure(),
                "{} not fault-secure: {:?}",
                machine.design,
                campaign
                    .outcomes
                    .iter()
                    .filter(|(_, o)| matches!(o, scal::seq::SeqOutcome::Violation { .. }))
                    .collect::<Vec<_>>()
            );
        }
    }
}
