//! The paper's running sequential example: Kohavi's 0101 detector in all
//! three styles (conventional, dual flip-flop SCAL, code-conversion SCAL),
//! with a live fault injection showing on-line detection.
//!
//! ```text
//! cargo run --example sequence_detector
//! ```

use scal::netlist::{Override, Site};
use scal::seq::dual_ff::AltSeqDriver;
use scal::seq::kohavi::{
    kohavi_0101, kohavi_circuit, reynolds_circuit, table_4_1, translator_circuit,
};

fn main() {
    let machine = kohavi_0101();
    let stream: Vec<u32> = vec![0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1];
    let golden = machine.run(&stream);
    let hits: Vec<usize> = golden
        .iter()
        .enumerate()
        .filter(|(_, o)| o[0])
        .map(|(i, _)| i)
        .collect();
    println!("input stream : {stream:?}");
    println!("0101 detected at positions {hits:?}");

    // Conventional circuit agrees.
    let base = kohavi_circuit();
    let mut sim = scal::netlist::Sim::new(&base);
    let base_hits: Vec<usize> = stream
        .iter()
        .enumerate()
        .filter(|(_, &s)| sim.step(&[s == 1])[0])
        .map(|(i, _)| i)
        .collect();
    assert_eq!(base_hits, hits);

    // Both SCAL designs agree, at twice the clock periods.
    for scal_machine in [reynolds_circuit(), translator_circuit()] {
        let mut drv = AltSeqDriver::new(&scal_machine);
        let mut scal_hits = Vec::new();
        for (i, &s) in stream.iter().enumerate() {
            let (o1, o2) = drv.apply(&[s == 1]);
            assert_ne!(o1[0], o2[0], "fault-free outputs alternate");
            if o1[0] {
                scal_hits.push(i);
            }
        }
        assert_eq!(scal_hits, hits);
        println!(
            "{:<34} {} flip-flops, {} gates — same detections",
            scal_machine.design,
            scal_machine.circuit.cost().flip_flops,
            scal_machine.circuit.cost().gates
        );
    }

    // Fault injection: stick an internal line of the translator design and
    // watch the alternation/code checks flag it on-line.
    let scal_machine = translator_circuit();
    let victim = scal_machine.circuit.dffs()[0];
    let mut drv = AltSeqDriver::new(&scal_machine);
    drv.attach(Override {
        site: Site::Stem(victim),
        value: false,
    });
    for (i, &s) in stream.iter().enumerate() {
        let (_, alternating, code_ok) = drv.apply_checked(&[s == 1]);
        if !alternating || !code_ok {
            println!(
                "injected stuck-at-0 on a state flip-flop: flagged at word {i} \
                 (alternation ok: {alternating}, code ok: {code_ok})"
            );
            break;
        }
    }

    println!("\nTable 4.1 (paper vs measured):");
    for row in table_4_1() {
        println!(
            "  {:<38} paper {}FF/{}g  measured {}FF/{}g",
            row.design,
            row.paper_flip_flops.unwrap_or(0),
            row.paper_gates.unwrap_or(0),
            row.measured_flip_flops,
            row.measured_gates
        );
    }
}
