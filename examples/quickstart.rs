//! Quickstart: take an ordinary combinational function, make it an
//! alternating network with one extra input, and *prove* it self-checking.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use scal::core::{dualize_synthesized, verify};
use scal::netlist::Circuit;

fn main() {
    // An ordinary 3-input function: f = (a AND b) OR c.
    let mut design = Circuit::new();
    let a = design.input("a");
    let b = design.input("b");
    let c = design.input("c");
    let g = design.and(&[a, b]);
    let f = design.or(&[g, c]);
    design.mark_output("f", f);
    println!("original design: {}", design.cost());

    // Not self-dual, so not an alternating network as-is.
    let tt = design.output_tt(0);
    println!("self-dual as-is? {}", tt.is_self_dual());

    // Add the period clock and re-synthesize two-level (the paper's
    // recommended route: two-level self-dual networks are automatically
    // self-checking).
    let alternating = dualize_synthesized(&design);
    println!("alternating version: {}", alternating.cost());

    // Drive an alternating pair: true inputs with phi = 0, complemented
    // inputs with phi = 1 — a fault-free network must answer with
    // complementary outputs.
    let p1 = alternating.eval(&[true, true, false, false]);
    let p2 = alternating.eval(&[false, false, true, true]);
    println!("output pair for (a,b,c) = (1,1,0): ({}, {})", p1[0], p2[0]);
    assert_ne!(p1[0], p2[0], "alternation");

    // Exhaustively verify the self-checking property: every single stuck-at
    // fault on every line, against every input pair.
    let verdict = verify(&alternating).expect("verifiable");
    println!(
        "verification: {} faults x {} pairs -> fault-secure: {}, self-testing: {}",
        verdict.fault_count, verdict.pair_count, verdict.fault_secure, verdict.self_testing
    );
    assert!(verdict.is_self_checking());
    println!("the network is a SCAL network: every fault is caught as a non-alternating output");
}
