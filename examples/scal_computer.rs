//! The Chapter-7 SCAL computer: run a program on the alternating-logic CPU,
//! inject a datapath fault, watch the machine halt at the first wrong
//! answer, and recover with the Fig. 7.5 redundant pair.
//!
//! ```text
//! cargo run --example scal_computer
//! ```

use scal::netlist::Override;
use scal::system::adr::{run_pair, sum_program, FaultyMember};
use scal::system::{CheckError, Cpu, CpuMode, Op, Program, ScalComputer};

fn main() {
    // A small workload: 13 * 11 by repeated addition.
    let program = Program(vec![
        Op::Ldi(13),
        Op::Sta(0x20), // addend
        Op::Ldi(11),
        Op::Sta(0x21), // counter
        Op::Ldi(1),
        Op::Sta(0x22), // constant one
        Op::Ldi(0),
        Op::Sta(0x10), // product
        // loop (pc 8):
        Op::Lda(0x21),
        Op::Jz(17),
        Op::Sub(0x22),
        Op::Sta(0x21),
        Op::Lda(0x10),
        Op::Add(0x20),
        Op::Sta(0x10),
        Op::Jmp(8),
        Op::Hlt, // 16 (unused)
        Op::Hlt, // 17
    ]);

    let mut computer = ScalComputer::new();
    let stats = computer.run(&program, 100_000).expect("clean run");
    println!(
        "13 x 11 = {} in {} instructions, {} datapath periods (2 per op: alternating mode)",
        computer.cpu.memory.read(0x10).unwrap(),
        stats.instructions,
        stats.periods
    );

    // Checked bus transfer through the real ALPT/PALT translator netlists.
    let echoed = computer.bus_round_trip(0xC3).unwrap();
    println!("bus round trip through ALPT/PALT: {echoed:#04x}");

    // Inject a stuck-at fault into the gate-level adder and re-run: the
    // machine halts at the first sensitized use and latches the fault.
    let mut faulty = ScalComputer::new();
    let s3 = faulty.cpu.datapath.adder.outputs()[3].node;
    faulty.cpu.datapath.fault_adder(Override::stem(s3, false));
    match faulty.run(&program, 100_000) {
        Err(CheckError::NonAlternating { unit, pc }) => {
            println!("injected adder fault: detected as non-alternating {unit} output at pc {pc}");
        }
        other => panic!("expected detection, got {other:?}"),
    }
    // The checker latches (Fig. 5.7): the machine refuses to run until
    // repaired.
    assert!(faulty.run(&program, 10).is_err());
    faulty.repair();
    println!(
        "after repair the machine runs again: {:?}",
        faulty.run(&program, 100_000).is_ok()
    );

    // Fault tolerance (Fig. 7.5): a normal CPU and a SCAL CPU in parallel
    // survive a faulty member.
    let outcome = run_pair(&sum_program(15), Some((FaultyMember::Normal, 0)));
    println!(
        "Fig 7.5 pair with a faulty normal member: removed {:?} after {} mismatch(es); run completed",
        outcome.removed, outcome.mismatches
    );

    // The cost of checking: compare periods against an unchecked CPU.
    let mut unchecked = Cpu::new(CpuMode::Normal);
    unchecked.run(&program, 100_000).unwrap();
    println!(
        "time redundancy: {} periods checked vs {} unchecked (factor {})",
        stats.periods,
        unchecked.stats().periods,
        stats.periods / unchecked.stats().periods.max(1)
    );
}
