//! Chapter 6 in action: convert a NAND network to an alternating
//! minority-module network and watch it self-check.
//!
//! ```text
//! cargo run --example minority_logic
//! ```

use scal::faults::Campaign;
use scal::minority::{convert_to_alternating, fig6_2_example};
use scal::netlist::Circuit;

fn main() {
    // An ordinary NAND-only design: f = NAND(NAND(a,b), NAND(NAND(a,b), c), a).
    let mut design = Circuit::new();
    let a = design.input("a");
    let b = design.input("b");
    let c = design.input("c");
    let g1 = design.nand(&[a, b]);
    let g2 = design.nand(&[g1, c]);
    let g3 = design.nand(&[g1, g2, a]);
    design.mark_output("f", g3);
    println!("NAND design: {}", design.cost());

    // One call converts it: each N-input NAND becomes a (2N-1)-input
    // minority module padded with N-1 copies of the period clock.
    let alternating = convert_to_alternating(&design).expect("pure NAND network");
    let cost = alternating.cost();
    println!(
        "minority version: {} modules, {} gate inputs (plus the phi input)",
        cost.threshold_modules, cost.gate_inputs
    );

    // Period 1 computes the original function; period 2 its complement.
    for m in 0..8u32 {
        let mut p1: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
        let original = design.eval(&p1)[0];
        p1.push(false);
        let p2: Vec<bool> = p1.iter().map(|&v| !v).collect();
        assert_eq!(alternating.eval(&p1)[0], original);
        assert_eq!(alternating.eval(&p2)[0], !original);
    }
    println!("functional equivalence in period 1, complement in period 2: verified");

    // Every line of the converted network alternates, so every single
    // stuck-at fault is caught as a non-alternating output (Theorem 3.6).
    let results = Campaign::new(&alternating)
        .run()
        .expect("alternating realization")
        .results;
    let secure = results.iter().all(|r| r.fault_secure());
    let tested = results.iter().all(|r| r.tested());
    println!(
        "exhaustive campaign over {} faults: fault-secure {secure}, all tested {tested}",
        results.len()
    );

    // The Fig 6.2 cost triangle.
    let fig = fig6_2_example();
    println!("\nFig 6.2 cost study (3-input minority function):");
    println!(
        "  NAND realization : {} gates, {} inputs",
        fig.nand_net.cost().gates,
        fig.nand_net.cost().gate_inputs
    );
    println!(
        "  direct conversion: {} modules, {} inputs",
        fig.direct.cost().threshold_modules,
        fig.direct.cost().gate_inputs
    );
    println!(
        "  minimal (one m3) : {} module, {} inputs — self-dual, SCAL for free",
        fig.minimal.cost().threshold_modules,
        fig.minimal.cost().gate_inputs
    );
}
