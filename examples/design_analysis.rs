//! The designer's workflow of Chapter 3: analyze a hand-built alternating
//! network with Algorithm 3.1, find the line that defeats self-checking,
//! derive stuck-at tests, and fix the network.
//!
//! ```text
//! cargo run --example design_analysis
//! ```

use scal::analysis::{analyze, derive_tests, make_self_checking};
use scal::core::paper::{fig3_4, fig3_7};
use scal::core::verify;

fn main() {
    // The paper's (reconstructed) Fig 3.4 network: three shared-logic
    // outputs F1 = MAJ(a',b,c), F2 = a^b^c, F3 = MAJ(a,b,c).
    let fig = fig3_4();
    let report = analyze(&fig.circuit).expect("analyzable");

    println!("Algorithm 3.1 on the Fig 3.4 network:");
    println!("  lines analysed : {}", report.lines.len());
    println!("  self-checking  : {}", report.self_checking);
    for site in &report.offending {
        let label = fig
            .labels
            .iter()
            .find(|(s, _)| s == site)
            .map_or("(internal line)", |(_, l)| *l);
        println!("  offending line : {site}  {label}");
    }

    // The shared "line 9" fails the single-output conditions on F2 but is
    // rescued by the multiple-output relaxation (Corollary 3.2).
    let l9 = report.line(fig.line9).expect("analysed");
    println!(
        "\nline 9 (shared NAND): needs Cor. 3.2: {}, rescued: {}",
        l9.needs_multi_output, l9.multi_output_ok
    );

    // Derive Theorem 3.2 tests for the offending line on output F2.
    let (t0, t1) = derive_tests(&fig.circuit, fig.line20, 1);
    println!(
        "line 20 stuck-at-0: E = 0? {} (tests exist only if true); stuck-at-1: {}",
        t0.e_zero, t1.e_zero
    );
    println!(
        "  -> the incorrect-alternating condition of Theorem 3.1 holds: the fault is UNtestable by \
         alternation checking, so the network is not self-checking"
    );

    // Fix it the Fig 3.7 way: duplicate the XOR subnetwork so line 20 no
    // longer fans out, then re-verify.
    let fixed = fig3_7();
    let report = analyze(&fixed.circuit).expect("analyzable");
    let verdict = verify(&fixed.circuit).expect("verifiable");
    println!(
        "\nafter the Fig 3.7 fix: Algorithm 3.1 self-checking: {}, exhaustive campaign fault-secure: {} \
         ({} faults)",
        report.self_checking, verdict.fault_secure, verdict.fault_count
    );
    assert!(report.self_checking && verdict.is_self_checking());
    println!(
        "fix cost: {} -> {} gates",
        fig.circuit.cost().gates,
        fixed.circuit.cost().gates
    );

    // Or let the library do it: the automatic fanout-splitting repair finds
    // the same fix.
    let (auto_fixed, repair) = make_self_checking(&fig.circuit).expect("analyzable");
    println!(
        "\nautomatic repair: {} split(s), {} gates, self-checking: {}",
        repair.splits,
        auto_fixed.cost().gates,
        repair.self_checking
    );
    assert!(repair.self_checking);
}
